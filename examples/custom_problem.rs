//! Classify a user-supplied problem: reads a problem description from the path
//! given as the first argument (or from a built-in example if none is given),
//! classifies it, prints the certificates, and — if a tree size is given as a
//! second argument — solves it on a random full tree of that size.
//!
//! ```text
//! cargo run --release --example custom_problem -- my_problem.txt 1000
//! ```

use rooted_tree_lcl::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let text = match args.get(1) {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            println!("no input file given; using the branch 2-coloring problem (5) as a demo\n");
            "1 : 1 2\n2 : 1 1\n".to_string()
        }
    };
    let problem: LclProblem = match text.parse() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    let report = classify(&problem);
    print!("{}", report.describe());

    if let Some(size) = args.get(2).and_then(|s| s.parse::<usize>().ok()) {
        if !report.complexity.is_solvable() {
            println!("problem is unsolvable; skipping the solve step");
            return;
        }
        let tree = generators::random_full(problem.delta(), size, 1);
        match solve(
            &problem,
            &report,
            &tree,
            IdAssignment::random_permutation(&tree, 2),
        ) {
            Ok(outcome) => {
                outcome
                    .labeling
                    .verify(&tree, &problem)
                    .expect("valid solution");
                println!(
                    "\nsolved on a {}-node random full {}-ary tree with `{}`",
                    tree.len(),
                    problem.delta(),
                    outcome.algorithm
                );
                println!("round accounting: {}", outcome.rounds.summary());
            }
            Err(e) => println!("\nsolver error: {e}"),
        }
    }
}
