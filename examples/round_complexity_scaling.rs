//! Experiments E8–E11: measured round counts of the four solvers as a function of
//! n, reproducing the *shape* of the paper's four complexity classes — flat for
//! O(1), barely growing for Θ(log* n), logarithmic for Θ(log n), and n^{1/k}-like
//! for the polynomial class.
//!
//! Run with `cargo run --release --example round_complexity_scaling`.

use rooted_tree_lcl::algorithms::{constant_solver, log_solver, log_star_solver, poly_solver};
use rooted_tree_lcl::core::classify;
use rooted_tree_lcl::prelude::*;
use rooted_tree_lcl::problems::{coloring, mis, pi_k};

fn main() {
    let sizes = [1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16];

    let mis_problem = mis::mis_binary();
    let mis_report = classify(&mis_problem);
    let mis_cert = mis_report.constant_certificate().unwrap().unwrap();

    let col_problem = coloring::three_coloring_binary();
    let col_report = classify(&col_problem);
    let col_cert = col_report.log_star_certificate().unwrap().unwrap();

    let branch_problem = coloring::branch_two_coloring();
    let branch_cert = classify(&branch_problem).log_certificate().unwrap().clone();

    let pi2_problem = pi_k::pi_k(2);

    println!(
        "{:>9} {:>12} {:>16} {:>16} {:>14} {:>12}",
        "n", "MIS O(1)", "3-col Θ(log*n)", "branch Θ(log n)", "Π₂ Θ(√n)", "2-col Θ(n)"
    );
    for &n in &sizes {
        let tree = generators::random_full(2, n + 1, n as u64);
        let ids = IdAssignment::random_permutation(&tree, 7);

        let r_const = constant_solver::solve_constant(&mis_problem, &mis_cert, &tree);
        r_const.labeling.verify(&tree, &mis_problem).unwrap();

        let r_logstar = log_star_solver::solve_log_star(&col_problem, &col_cert, &tree, ids);
        r_logstar.labeling.verify(&tree, &col_problem).unwrap();

        let r_log = log_solver::solve_log(&branch_problem, &branch_cert, &tree).unwrap();
        r_log.labeling.verify(&tree, &branch_problem).unwrap();

        let r_poly = poly_solver::solve_pi_k(&pi2_problem, 2, &tree);
        r_poly.labeling.verify(&tree, &pi2_problem).unwrap();

        let two_col = coloring::two_coloring_binary();
        let r_global = poly_solver::solve_by_depth_parity(&two_col, &tree);
        r_global.labeling.verify(&tree, &two_col).unwrap();

        println!(
            "{:>9} {:>12} {:>16} {:>16} {:>14} {:>12}",
            tree.len(),
            r_const.rounds.total(),
            r_logstar.rounds.total(),
            r_log.rounds.total(),
            r_poly.rounds.total(),
            r_global.rounds.total()
        );
    }
    println!("\nall outputs verified against the independent solution checker");
    println!("(columns: measured + charged rounds; see RoundReport::summary for the breakdown)");
}
