//! Experiment E1: classify every problem in the catalog and compare against the
//! complexity class the paper states (Table 1, rooted-regular-trees column, plus
//! the worked examples of Sections 1 and 8).
//!
//! Run with `cargo run --release --example classify_catalog`.

use std::time::Instant;

use rooted_tree_lcl::core::classify;
use rooted_tree_lcl::problems::catalog;

fn main() {
    println!(
        "{:<22} {:>4} {:>4} {:<14} {:<28} {:>10}  ref",
        "problem", "|Σ|", "|C|", "expected", "classified", "time"
    );
    println!("{}", "-".repeat(110));
    let mut mismatches = 0;
    for entry in catalog() {
        let start = Instant::now();
        let report = classify(&entry.problem);
        let elapsed = start.elapsed();
        let ok = entry.expected.matches(report.complexity);
        if !ok {
            mismatches += 1;
        }
        println!(
            "{:<22} {:>4} {:>4} {:<14} {:<28} {:>8.2?}  {}{}",
            entry.name,
            entry.problem.num_labels(),
            entry.problem.num_configurations(),
            entry.expected.describe(),
            report.complexity.to_string(),
            elapsed,
            entry.reference,
            if ok { "" } else { "   <-- MISMATCH" },
        );
    }
    println!("{}", "-".repeat(110));
    if mismatches == 0 {
        println!("all classifications match the paper");
    } else {
        println!("{mismatches} MISMATCHES — see rows above");
        std::process::exit(1);
    }
}
