//! The maximal-independent-set showcase of Section 1.3 / Figure 1 (experiments E5
//! and E6): the classifier discovers that MIS is constant-time solvable, and both
//! the explicit 4-round algorithm and the generic certificate-driven solver produce
//! valid solutions whose round count does not depend on n.
//!
//! Run with `cargo run --release --example mis_constant_time`.

use rooted_tree_lcl::algorithms::mis_four_rounds;
use rooted_tree_lcl::core::classify;
use rooted_tree_lcl::prelude::*;
use rooted_tree_lcl::problems::mis::mis_binary;

fn main() {
    let problem = mis_binary();
    let report = classify(&problem);
    println!("== classification of MIS (configurations (3) of the paper) ==");
    print!("{}", report.describe());
    assert_eq!(report.complexity, Complexity::Constant);

    // The certificate for O(1) solvability (Figure 8).
    let cert = report.constant_certificate().unwrap().unwrap();
    println!("\n== certificate for O(1) solvability (Definition 7.1) ==");
    println!(
        "certificate labels: {}, depth {}, special configuration: {}",
        problem.alphabet().format_set(cert.base.labels.iter()),
        cert.base.depth,
        cert.special.display(problem.alphabet()),
    );

    // The Figure 1 check: the 16-symbol table is consistent with every code.
    let violations = mis_four_rounds::verify_table_against(&problem);
    println!("\n== Figure 1 / string (4): exhaustive case check ==");
    println!(
        "table {:?}: {} of 16 codes valid",
        mis_four_rounds::MIS_TABLE.iter().collect::<String>(),
        16 - violations.len()
    );
    assert!(violations.is_empty());

    // Solve on growing trees with both constant-time algorithms.
    println!("\n== rounds vs n (flat = constant time) ==");
    println!(
        "{:>10} {:>18} {:>22}",
        "n", "4-round alg", "generic (Thm 7.2)"
    );
    for exponent in [10, 12, 14, 16, 18] {
        let tree = generators::random_full(2, (1usize << exponent) + 1, exponent as u64);
        let explicit = mis_four_rounds::solve_mis_four_rounds(&problem, &tree);
        explicit.labeling.verify(&tree, &problem).unwrap();
        let generic =
            rooted_tree_lcl::algorithms::constant_solver::solve_constant(&problem, &cert, &tree);
        generic.labeling.verify(&tree, &problem).unwrap();
        println!(
            "{:>10} {:>18} {:>22}",
            tree.len(),
            explicit.rounds.total(),
            generic.rounds.total()
        );
    }
    println!("\nboth algorithms verified on every instance");
}
