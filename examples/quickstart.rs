//! Quickstart: define a problem in the paper's notation, classify it, inspect the
//! certificates, and solve it on a generated tree.
//!
//! Run with `cargo run --example quickstart`.

use rooted_tree_lcl::prelude::*;

fn main() {
    // The 3-coloring problem of Section 1.2, written exactly as in the paper:
    // each line is `parent : children`, and the order of the children is irrelevant.
    let problem: LclProblem = "
        1 : 2 2
        1 : 2 3
        1 : 3 3
        2 : 1 1
        2 : 1 3
        2 : 3 3
        3 : 1 1
        3 : 1 2
        3 : 2 2
    "
    .parse()
    .expect("well-formed problem description");

    // Classify: the paper proves 3-coloring is Θ(log* n).
    let report = classify(&problem);
    println!("== classification ==");
    print!("{}", report.describe());
    assert_eq!(report.complexity, Complexity::LogStar);

    // Solve it on a random full binary tree with the certificate-driven algorithm.
    let tree = generators::random_full(2, 10_001, 42);
    let outcome = solve(
        &problem,
        &report,
        &tree,
        IdAssignment::random_permutation(&tree, 1),
    )
    .expect("solvable problem");
    outcome
        .labeling
        .verify(&tree, &problem)
        .expect("solver outputs are valid solutions");
    println!("\n== solving on a {}-node random tree ==", tree.len());
    println!("algorithm: {}", outcome.algorithm);
    println!("round accounting: {}", outcome.rounds.summary());

    // The certificate behind the algorithm (Figure 7 of the paper).
    let cert = report
        .log_star_certificate()
        .expect("Θ(log* n) problems have a uniform certificate")
        .expect("small certificate");
    println!("\n== uniform certificate (Definition 6.1) ==");
    println!(
        "labels: {}, depth: {}",
        problem.alphabet().format_set(cert.labels.iter()),
        cert.depth
    );
    for (label, tree) in &cert.trees {
        let names: Vec<&str> = tree
            .labels()
            .iter()
            .map(|&l| problem.label_name(l))
            .collect();
        println!(
            "tree rooted at {}: {}",
            problem.label_name(*label),
            names.join(" ")
        );
    }
}
