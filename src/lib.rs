//! `rooted-tree-lcl` — a reproduction of *Locally Checkable Problems in Rooted
//! Trees* (Balliu, Brandt, Chang, Olivetti, Studený, Suomela, Tereshchenko;
//! PODC 2021).
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`core`] (`lcl-core`) — the problem formalism, path-form automata,
//!   certificates, and the four-class complexity classifier;
//! * [`problems`] (`lcl-problems`) — the catalog of the paper's sample problems;
//! * [`trees`] (`lcl-trees`) — rooted-tree arenas, generators, lower-bound
//!   constructions, rake-and-compress;
//! * [`sim`] (`lcl-sim`) — the synchronous LOCAL/CONGEST simulator;
//! * [`algorithms`] (`lcl-algorithms`) — the certificate-driven solvers;
//! * [`verify`] (`lcl-verify`) — the parallel labeling validator and the
//!   classifier-vs-solver differential fuzzing oracle;
//! * [`serve`] (`lcl-serve`) — the fault-tolerant `rtlcl serve` HTTP/JSON
//!   daemon: one warm engine, bounded queues, deadlines, crash-safe snapshot
//!   flush.
//!
//! # Quickstart
//!
//! ```
//! use rooted_tree_lcl::prelude::*;
//!
//! // Classify the maximal independent set problem of Section 1.3 …
//! let problem = rooted_tree_lcl::problems::mis::mis_binary();
//! let report = classify(&problem);
//! assert_eq!(report.complexity, Complexity::Constant);
//!
//! // … and solve it on a random full binary tree with the optimal algorithm.
//! let tree = rooted_tree_lcl::trees::generators::random_full(2, 501, 7);
//! let outcome = solve(&problem, &report, &tree, IdAssignment::sequential(&tree)).unwrap();
//! outcome.labeling.verify(&tree, &problem).unwrap();
//! ```

#![forbid(unsafe_code)]

pub use lcl_algorithms as algorithms;
pub use lcl_core as core;
pub use lcl_problems as problems;
pub use lcl_serve as serve;
pub use lcl_sim as sim;
pub use lcl_trees as trees;
pub use lcl_verify as verify;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use lcl_algorithms::{solve, RoundReport, SolverOutcome};
    pub use lcl_core::{
        classify, ClassificationEngine, ClassificationReport, Complexity, Label, LabelSet,
        Labeling, LclProblem, LogStarCertificate,
    };
    pub use lcl_sim::IdAssignment;
    pub use lcl_trees::{generators, FlatTree, NodeId, RootedTree};
    pub use lcl_verify::{fuzz_classifier_vs_solvers, FuzzReport, LabelingValidator};
}
