//! Fault-injection integration tests for the `rtlcl serve` daemon.
//!
//! Each test boots a real daemon on a loopback port and attacks one leg of
//! the robustness contract: hostile bytes next to good traffic, slowloris
//! peers, queue overload, handler panics, expired deadlines, and the graceful
//! shutdown → snapshot flush → warm restart cycle. Everything runs in-process
//! (the daemon is a library; the binary is a thin wrapper), so the tests can
//! also assert on internal metrics.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rooted_tree_lcl::core::{
    ClassificationEngine, EngineKind, LaneWidth, SweepCheckpoint, SweepSnapshot,
};
use rooted_tree_lcl::problems::canonical::CanonicalFamily;
use rooted_tree_lcl::serve::client;
use rooted_tree_lcl::serve::{Json, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    }
}

fn classify_body(problem: &str) -> Json {
    Json::Obj(vec![("problem".into(), Json::str(problem))])
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "rtlcl-serve-test-{tag}-{}.snap",
        std::process::id()
    ))
}

#[test]
fn concurrent_good_and_malformed_traffic() {
    let server = Server::start(config()).expect("daemon starts");
    let addr = server.addr();

    let good = (0..4).map(|_| {
        std::thread::spawn(move || {
            for _ in 0..20 {
                let resp = client::post(addr, "/classify", &classify_body("3-coloring"), TIMEOUT)
                    .expect("good request answered");
                assert_eq!(resp.status, 200);
                assert_eq!(
                    resp.body.get("complexity_short").and_then(Json::as_str),
                    Some("log*")
                );
            }
        })
    });
    const EVIL: [&[u8]; 7] = [
        b"GARBAGE THAT IS NOT HTTP\r\n\r\n",
        b"POST /classify HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!",
        b"POST /classify HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
        b"POST /classify HTTP/9.9\r\n\r\n",
        b"GET /no/such/route HTTP/1.1\r\n\r\n",
        b"DELETE /classify HTTP/1.1\r\n\r\n",
        b"POST /classify HTTP/1.1\r\n\r\n",
    ];
    let bad = (0..4).map(|t: usize| {
        std::thread::spawn(move || {
            for i in 0..20 {
                let payload = EVIL[(t + i) % EVIL.len()];
                let mut conn = TcpStream::connect(addr).expect("connect");
                conn.set_read_timeout(Some(TIMEOUT)).unwrap();
                conn.write_all(payload).expect("write attack");
                let mut out = Vec::new();
                conn.read_to_end(&mut out).expect("read response");
                let head = String::from_utf8_lossy(&out);
                let status: u16 = head
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("daemon answered with an HTTP status line");
                assert!(
                    (400..=405).contains(&status) || status == 411,
                    "hostile bytes must get a 4xx, got {status} for {:?}",
                    String::from_utf8_lossy(payload)
                );
            }
        })
    });
    for h in good.chain(bad).collect::<Vec<_>>() {
        h.join().expect("traffic thread");
    }

    // The daemon survived with clean books: all good requests 200, all
    // attacks 4xx, zero panics, zero 5xx.
    let stats = client::get(addr, "/stats", TIMEOUT).expect("stats").body;
    // 80 good classifies; the /stats response itself is recorded only after
    // its body is rendered, so it is not in its own count.
    assert_eq!(stats.get("responses_ok").and_then(Json::as_u64), Some(80));
    assert_eq!(
        stats.get("responses_client_error").and_then(Json::as_u64),
        Some(80)
    );
    assert_eq!(
        stats.get("responses_server_error").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(stats.get("panics").and_then(Json::as_u64), Some(0));
    server.join();
}

#[test]
fn slowloris_read_times_out_with_408() {
    let server = Server::start(ServeConfig {
        read_timeout: Duration::from_millis(250),
        ..config()
    })
    .expect("daemon starts");
    let addr = server.addr();

    // Trickle half a request line, then stall forever.
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(TIMEOUT)).unwrap();
    conn.write_all(b"GET /hea").expect("partial write");
    let mut out = Vec::new();
    conn.read_to_end(&mut out).expect("read response");
    let text = String::from_utf8_lossy(&out);
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "a stalled read must answer 408, got: {text}"
    );

    // The worker is free again: a normal request goes straight through.
    let resp = client::get(addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(resp.status, 200);
    let stats = client::get(addr, "/stats", TIMEOUT).expect("stats").body;
    assert_eq!(stats.get("read_timeouts").and_then(Json::as_u64), Some(1));
    server.join();
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(3),
        ..config()
    })
    .expect("daemon starts");
    let addr = server.addr();

    // One silent connection pins the single worker (it blocks reading until
    // the 3 s read timeout), one more fills the queue…
    let pin = TcpStream::connect(addr).expect("pin connect");
    std::thread::sleep(Duration::from_millis(300));
    let queued = TcpStream::connect(addr).expect("queued connect");
    std::thread::sleep(Duration::from_millis(300));

    // …so everything else must be shed 503 + Retry-After without blocking.
    let mut sheds = 0;
    for _ in 0..5 {
        let resp = client::get(addr, "/healthz", Duration::from_secs(1)).expect("shed response");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(1));
        assert_eq!(
            resp.body.get("error").and_then(Json::as_str),
            Some("overloaded")
        );
        sheds += 1;
    }
    assert_eq!(sheds, 5);
    drop(pin);
    drop(queued);

    // Once the stalled connections clear, service resumes.
    std::thread::sleep(Duration::from_millis(200));
    let resp = client::get(addr, "/healthz", TIMEOUT).expect("healthz after overload");
    assert_eq!(resp.status, 200);
    let stats = client::get(addr, "/stats", TIMEOUT).expect("stats").body;
    assert!(stats.get("shed").and_then(Json::as_u64).unwrap() >= 5);
    server.join();
}

#[test]
fn panics_burn_one_request_not_the_daemon() {
    let server = Server::start(ServeConfig {
        debug_endpoints: true,
        ..config()
    })
    .expect("daemon starts");
    let addr = server.addr();

    let boom = client::post(addr, "/debug/panic", &Json::Obj(vec![]), TIMEOUT)
        .expect("panic answered as a response");
    assert_eq!(boom.status, 500);
    assert_eq!(
        boom.body.get("error").and_then(Json::as_str),
        Some("internal")
    );

    // The worker that caught the panic keeps serving.
    for _ in 0..8 {
        let resp = client::post(addr, "/classify", &classify_body("3-coloring"), TIMEOUT)
            .expect("request after panic");
        assert_eq!(resp.status, 200);
    }
    let stats = client::get(addr, "/stats", TIMEOUT).expect("stats").body;
    assert_eq!(stats.get("panics").and_then(Json::as_u64), Some(1));
    server.join();
}

#[test]
fn expired_deadline_sheds_compute_with_503() {
    let server = Server::start(ServeConfig {
        deadline: Duration::ZERO,
        ..config()
    })
    .expect("daemon starts");
    let addr = server.addr();

    let problems = Json::Arr((0..8).map(|_| Json::str("3-coloring")).collect::<Vec<_>>());
    let resp = client::post(
        addr,
        "/classify-batch",
        &Json::Obj(vec![("problems".into(), problems)]),
        TIMEOUT,
    )
    .expect("deadline response");
    assert_eq!(resp.status, 503);
    assert_eq!(
        resp.body.get("error").and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    assert_eq!(resp.retry_after, Some(1));
    let stats = client::get(addr, "/stats", TIMEOUT).expect("stats").body;
    assert_eq!(
        stats.get("deadline_exceeded").and_then(Json::as_u64),
        Some(1)
    );
    server.join();
}

#[test]
fn graceful_shutdown_drains_flushes_and_warm_restarts() {
    let snapshot = temp_path("graceful");
    let _ = std::fs::remove_file(&snapshot);

    let server = Server::start(ServeConfig {
        snapshot_path: Some(snapshot.clone()),
        ..config()
    })
    .expect("daemon starts");
    let addr = server.addr();

    // Warm the memo, then put a request in flight and shut down underneath it.
    let warm =
        client::post(addr, "/classify", &classify_body("3-coloring"), TIMEOUT).expect("classify");
    assert_eq!(warm.status, 200);
    let in_flight = std::thread::spawn(move || {
        client::post(
            addr,
            "/sweep",
            &Json::Obj(vec![
                ("delta".into(), Json::uint(2)),
                ("labels".into(), Json::uint(2)),
            ]),
            TIMEOUT,
        )
        .expect("in-flight sweep answered")
    });
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    // Drain contract: the in-flight request completes normally.
    let swept = in_flight.join().expect("in-flight thread");
    assert_eq!(swept.status, 200, "{:?}", swept.body);
    let report = server.join();
    let flushed = report
        .flushed_entries
        .expect("snapshot path was configured");
    assert!(flushed > 0, "the warm memo must have been flushed");
    assert!(report.flush_error.is_none());

    // The flushed file is a digest-valid snapshot…
    let on_disk = SweepSnapshot::load(&snapshot).expect("flushed snapshot is valid");
    assert_eq!(on_disk.memo.len(), flushed);

    // …and a restarted daemon warm-boots from it and answers from cache.
    let server = Server::start(ServeConfig {
        snapshot_path: Some(snapshot.clone()),
        ..config()
    })
    .expect("daemon restarts");
    assert_eq!(server.boot.warm_memo_entries, flushed);
    let addr = server.addr();
    let again = client::post(addr, "/classify", &classify_body("3-coloring"), TIMEOUT)
        .expect("classify after restart");
    assert_eq!(again.status, 200);
    let stats = client::get(addr, "/stats", TIMEOUT).expect("stats").body;
    assert!(stats.get("cache_hits").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(stats.get("cache_misses").and_then(Json::as_u64), Some(0));
    server.join();
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn sweep_campaign_interrupted_by_restart_converges_via_the_flushed_memo() {
    let snapshot = temp_path("campaign");
    let _ = std::fs::remove_file(&snapshot);

    // Reference: the uninterrupted (δ=2, 3-label) campaign, computed locally.
    let family = CanonicalFamily::new(2, 3);
    let engine = ClassificationEngine::new();
    let universe = family.sliced_universe();
    let (reference, completed) = engine
        .sweep_resumable_bitsliced(
            &universe,
            LaneWidth::W64,
            SweepSnapshot::fresh(2, 3, EngineKind::Bitsliced, family.ranges(2)),
            |r| family.blocks_in(r, 64),
            |mask| family.problem_at(mask),
            |mask| family.canonical_key_of(mask),
            &SweepCheckpoint::default(),
        )
        .expect("reference sweep");
    assert!(completed);

    // Daemon 1: run one bounded leg, then shut down mid-campaign. The
    // campaign cursor lives in daemon memory and dies here; the memo entries
    // the leg produced are flushed to the snapshot.
    let server = Server::start(ServeConfig {
        snapshot_path: Some(snapshot.clone()),
        ..config()
    })
    .expect("daemon starts");
    let leg = client::post(
        server.addr(),
        "/sweep",
        &Json::Obj(vec![
            ("delta".into(), Json::uint(2)),
            ("labels".into(), Json::uint(3)),
            ("max_orbits".into(), Json::uint(256)),
        ]),
        TIMEOUT,
    )
    .expect("bounded leg");
    assert_eq!(leg.status, 200, "{:?}", leg.body);
    assert_eq!(
        leg.body.get("completed").and_then(Json::as_bool),
        Some(false)
    );
    let report = server.join();
    let flushed = report.flushed_entries.expect("snapshot configured");
    assert!(flushed > 0);

    // Daemon 2: the campaign restarts from scratch, but the flushed memo
    // answers the already-decided orbits, and the final histograms match the
    // uninterrupted reference exactly.
    let server = Server::start(ServeConfig {
        snapshot_path: Some(snapshot.clone()),
        ..config()
    })
    .expect("daemon restarts");
    assert_eq!(server.boot.warm_memo_entries, flushed);
    let addr = server.addr();
    let mut last = None;
    for _ in 0..64 {
        let resp = client::post(
            addr,
            "/sweep",
            &Json::Obj(vec![
                ("delta".into(), Json::uint(2)),
                ("labels".into(), Json::uint(3)),
                ("max_orbits".into(), Json::uint(1 << 20)),
            ]),
            Duration::from_secs(60),
        )
        .expect("resumed leg");
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        if resp.body.get("completed").and_then(Json::as_bool) == Some(true) {
            last = Some(resp.body);
            break;
        }
    }
    let done = last.expect("campaign completed");
    assert_eq!(
        done.get("problems_accounted").and_then(Json::as_u64),
        Some(reference.outcome.problems.total())
    );
    assert_eq!(
        done.get("orbits_classified").and_then(Json::as_u64),
        Some(reference.outcome.orbits.total())
    );
    // Orbit histogram equality, class by class.
    let orbits = done.get("orbits").expect("orbits histogram");
    for &(name, count) in reference.outcome.orbits.entries().iter() {
        assert_eq!(
            orbits.get(name).and_then(Json::as_u64),
            Some(count),
            "orbit histogram class {name}"
        );
    }
    let stats = client::get(addr, "/stats", TIMEOUT).expect("stats").body;
    assert!(
        stats.get("cache_hits").and_then(Json::as_u64).unwrap() > 0,
        "the flushed memo must have answered the replayed orbits"
    );
    server.join();
    let _ = std::fs::remove_file(&snapshot);
}
