//! Differential acceptance tests for the bit-sliced sweep engine:
//!
//! * block verdicts must match `classify_complexity_with` lane-for-lane —
//!   exhaustively over the full (δ=2, 2-label) universe and over ≥512 seeded
//!   random 64-lane blocks of the (δ=2, 3-label) universe (verdict *and*
//!   exact polynomial exponent);
//! * every wide lane width (128/256/512) must match the `u64` kernels
//!   lane-for-lane on the same universes — exhaustively at 2 labels, on
//!   seeded random blocks at 3 labels;
//! * `sweep_sharded_bitsliced` must produce the same orbit and whole-universe
//!   histograms as the scalar `sweep_sharded`, for every tested universe,
//!   every lane width, and independent of the shard count;
//! * a bit-sliced sweep must leave the engine cache warm for the whole family
//!   (the mask-direct canonical keys must hit for every member).

use lcl_rand::SplitMix64;
use rooted_tree_lcl::core::bitslice::{
    classify_block_sliced, BitSliceScratch, LaneVerdict, LaneWidth, LaneWord,
};
use rooted_tree_lcl::core::scratch::poly_exponent_masked;
use rooted_tree_lcl::core::{
    classify_complexity_with, solvable_labels, ClassificationEngine, ClassifyScratch, Complexity,
    SweepOutcome,
};
use rooted_tree_lcl::problems::canonical::CanonicalFamily;
use rooted_tree_lcl::problems::random::enumerate_problems;

/// Resolves one lane's verdict to a full complexity, applying the scalar
/// polynomial-exponent fallback exactly as the sweep driver does.
fn resolve(
    family: &CanonicalFamily,
    mask: u64,
    verdict: LaneVerdict,
    scratch: &mut ClassifyScratch,
) -> Complexity {
    match verdict {
        LaneVerdict::Decided(c) => c,
        LaneVerdict::NeedsPolyExponent => {
            let problem = family.problem_at(mask);
            let sustaining = solvable_labels(&problem);
            Complexity::Polynomial {
                exponent: poly_exponent_masked(&problem, sustaining, scratch),
            }
        }
    }
}

#[test]
fn bitsliced_blocks_match_scalar_over_the_full_two_label_universe() {
    let family = CanonicalFamily::new(2, 2);
    let universe = family.sliced_universe();
    let masks: Vec<u64> = (0..family.family_size()).collect();
    let mut sliced = BitSliceScratch::<u64>::new();
    let mut verdicts = Vec::new();
    let mut scratch = ClassifyScratch::new();
    for chunk in masks.chunks(64) {
        classify_block_sliced(&universe, chunk, &mut sliced, &mut verdicts);
        for (j, &mask) in chunk.iter().enumerate() {
            let got = resolve(&family, mask, verdicts[j], &mut scratch);
            let expected = classify_complexity_with(&family.problem_at(mask), &mut scratch);
            assert_eq!(got, expected, "mask {mask}");
        }
    }
}

#[test]
fn bitsliced_blocks_match_scalar_on_seeded_random_three_label_blocks() {
    let family = CanonicalFamily::new(2, 3);
    let universe = family.sliced_universe();
    assert_eq!(universe.len(), 18);
    let mut rng = SplitMix64::seed_from_u64(0xB17_511CE);
    let mut sliced = BitSliceScratch::<u64>::new();
    let mut verdicts = Vec::new();
    let mut scratch = ClassifyScratch::new();
    for block_index in 0..512 {
        let masks: Vec<u64> = (0..64)
            .map(|_| rng.next_u64() & (family.family_size() - 1))
            .collect();
        classify_block_sliced(&universe, &masks, &mut sliced, &mut verdicts);
        for (j, &mask) in masks.iter().enumerate() {
            let got = resolve(&family, mask, verdicts[j], &mut scratch);
            let expected = classify_complexity_with(&family.problem_at(mask), &mut scratch);
            assert_eq!(got, expected, "block {block_index}, mask {mask}");
        }
    }
}

/// Classifies `masks` in `W`-sized blocks and returns one verdict per mask.
fn verdicts_at_width<W: LaneWord>(family: &CanonicalFamily, masks: &[u64]) -> Vec<LaneVerdict> {
    let universe = family.sliced_universe();
    let mut sliced = BitSliceScratch::<W>::new();
    let mut verdicts = Vec::new();
    let mut all = Vec::with_capacity(masks.len());
    for chunk in masks.chunks(W::LANES) {
        classify_block_sliced(&universe, chunk, &mut sliced, &mut verdicts);
        all.extend_from_slice(&verdicts);
    }
    all
}

#[test]
fn wide_lane_widths_match_u64_exhaustively_at_two_labels() {
    let family = CanonicalFamily::new(2, 2);
    let masks: Vec<u64> = (0..family.family_size()).collect();
    let baseline = verdicts_at_width::<u64>(&family, &masks);
    // Every lane's verdict also matches the scalar classifier.
    let mut scratch = ClassifyScratch::new();
    for (j, &mask) in masks.iter().enumerate() {
        let got = resolve(&family, mask, baseline[j], &mut scratch);
        let expected = classify_complexity_with(&family.problem_at(mask), &mut scratch);
        assert_eq!(got, expected, "u64 lanes, mask {mask}");
    }
    assert_eq!(
        baseline,
        verdicts_at_width::<[u64; 2]>(&family, &masks),
        "128 lanes"
    );
    assert_eq!(
        baseline,
        verdicts_at_width::<[u64; 4]>(&family, &masks),
        "256 lanes"
    );
    assert_eq!(
        baseline,
        verdicts_at_width::<[u64; 8]>(&family, &masks),
        "512 lanes"
    );
}

#[test]
fn wide_lane_widths_match_u64_on_seeded_random_three_label_masks() {
    let family = CanonicalFamily::new(2, 3);
    let mut rng = SplitMix64::seed_from_u64(0x51DE_57E9);
    let masks: Vec<u64> = (0..4096)
        .map(|_| rng.next_u64() & (family.family_size() - 1))
        .collect();
    let baseline = verdicts_at_width::<u64>(&family, &masks);
    let mut scratch = ClassifyScratch::new();
    for (j, &mask) in masks.iter().enumerate().step_by(64) {
        // Spot-check the baseline against the scalar classifier (the full
        // lane-for-lane scalar diff is the dedicated test above).
        let got = resolve(&family, mask, baseline[j], &mut scratch);
        let expected = classify_complexity_with(&family.problem_at(mask), &mut scratch);
        assert_eq!(got, expected, "u64 lanes, mask {mask}");
    }
    assert_eq!(
        baseline,
        verdicts_at_width::<[u64; 2]>(&family, &masks),
        "128 lanes"
    );
    assert_eq!(
        baseline,
        verdicts_at_width::<[u64; 4]>(&family, &masks),
        "256 lanes"
    );
    assert_eq!(
        baseline,
        verdicts_at_width::<[u64; 8]>(&family, &masks),
        "512 lanes"
    );
}

fn sweep_bitsliced(
    delta: usize,
    labels: usize,
    shards: usize,
    width: LaneWidth,
) -> (ClassificationEngine, SweepOutcome) {
    let family = CanonicalFamily::new(delta, labels);
    let universe = family.sliced_universe();
    let engine = ClassificationEngine::new();
    let outcome = engine.sweep_sharded_bitsliced(
        &universe,
        width,
        shards,
        |s| family.blocks(s, shards, width.lanes()),
        |mask| family.problem_at(mask),
        |mask| family.canonical_key_of(mask),
    );
    (engine, outcome)
}

#[test]
fn bitsliced_sweep_histograms_match_the_scalar_sweep_at_every_width() {
    for (delta, labels) in [(1, 2), (2, 2), (1, 3), (2, 3)] {
        let family = CanonicalFamily::new(delta, labels);
        let scalar = ClassificationEngine::new().sweep_sharded(3, |s| family.shard(s, 3));
        for width in LaneWidth::ALL {
            let (_, bitsliced) = sweep_bitsliced(delta, labels, 3, width);
            assert_eq!(
                bitsliced.orbits, scalar.orbits,
                "orbit histogram (δ={delta}, k={labels}, {width} lanes)"
            );
            assert_eq!(
                bitsliced.problems, scalar.problems,
                "universe histogram (δ={delta}, k={labels}, {width} lanes)"
            );
            assert_eq!(bitsliced.problems.total(), family.family_size());
            assert!(bitsliced.lanes.blocks > 0);
            assert!(bitsliced.lanes.avg_live_lanes() > 0.0);
        }
    }
}

#[test]
fn bitsliced_sweep_histograms_are_independent_of_shard_count_and_width() {
    let (_, one) = sweep_bitsliced(2, 3, 1, LaneWidth::W64);
    for width in LaneWidth::ALL {
        for shards in [1usize, 2, 4, 9] {
            if width == LaneWidth::W64 && shards == 1 {
                continue;
            }
            let (_, many) = sweep_bitsliced(2, 3, shards, width);
            // Lane statistics legitimately vary with block packing at shard
            // boundaries and lane widths; the histograms must not.
            assert_eq!(one.orbits, many.orbits, "{shards} shards, {width} lanes");
            assert_eq!(
                one.problems, many.problems,
                "{shards} shards, {width} lanes"
            );
        }
    }
}

#[test]
fn bitsliced_sweep_leaves_the_engine_cache_warm_for_the_whole_family() {
    let (engine, outcome) = sweep_bitsliced(2, 2, 2, LaneWidth::W256);
    let swept = engine.stats();
    assert_eq!(swept.cache_hits, 0);
    assert_eq!(swept.cache_misses as u64, outcome.orbits.total());

    // The mask-direct keys must make every member of the universe — canonical
    // or not — a cache hit.
    let problems: Vec<_> = enumerate_problems(2, 2).collect();
    for p in &problems {
        engine.classify(p);
    }
    let after = engine.stats();
    assert_eq!(
        after.cache_misses, swept.cache_misses,
        "no new decision runs"
    );
    assert_eq!(after.cache_hits, problems.len());
}
