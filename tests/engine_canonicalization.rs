//! Canonicalization soundness tests for `lcl_core::engine`: a problem and any
//! label-permuted copy of it must share a canonical form, hit the same memo
//! entry in the [`ClassificationEngine`] (asserted through the engine's
//! cache-hit statistics), and report the identical complexity class.

use lcl_rand::SplitMix64;
use rooted_tree_lcl::core::problem::ProblemBuilder;
use rooted_tree_lcl::core::{canonical_form, classify, ClassificationEngine, LclProblem};
use rooted_tree_lcl::problems::random::{random_problem, RandomProblemSpec};

/// Rebuilds `problem` with its label identities permuted by `perm` (index `i`
/// becomes index `perm[i]`) and fresh label names, so the copy shares nothing
/// with the original except its structure up to renaming.
fn permuted_copy(problem: &LclProblem, perm: &[usize]) -> LclProblem {
    let k = problem.alphabet().len();
    assert_eq!(perm.len(), k);
    let names: Vec<String> = (0..k).map(|i| format!("q{i}")).collect();
    let mut builder = ProblemBuilder::new(problem.delta());
    // Declare every label up front so orphan labels survive the rebuild and
    // the alphabet size matches.
    for name in &names {
        builder.label(name);
    }
    for c in problem.configurations() {
        let parent = names[perm[c.parent().index()]].as_str();
        let children: Vec<&str> = c
            .children()
            .iter()
            .map(|l| names[perm[l.index()]].as_str())
            .collect();
        builder.configuration(parent, &children);
    }
    builder.build()
}

/// A deterministic shuffle of `0..k`.
fn random_permutation(k: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..k).collect();
    for i in (1..k).rev() {
        perm.swap(i, rng.gen_index(i + 1));
    }
    perm
}

#[test]
fn permuted_problems_share_canonical_form_and_memo_entry() {
    let mut rng = SplitMix64::seed_from_u64(4242);
    let mut checked = 0usize;
    for round in 0..40 {
        let spec = RandomProblemSpec {
            delta: 1 + rng.gen_index(3),
            num_labels: 2 + rng.gen_index(3),
            density: 0.4,
        };
        let problem = random_problem(&spec, rng.next_u64());
        if problem.is_empty() {
            continue;
        }
        let perm = random_permutation(problem.alphabet().len(), &mut rng);
        let renamed = permuted_copy(&problem, &perm);
        assert_eq!(
            canonical_form(&problem),
            canonical_form(&renamed),
            "round {round}: permuting labels changed the canonical form"
        );

        // A fresh engine per pair: the second classification must be a pure
        // cache hit with the identical verdict.
        let engine = ClassificationEngine::new();
        let original = engine.classify(&problem);
        let permuted = engine.classify(&renamed);
        assert_eq!(original, permuted, "round {round}");
        let stats = engine.stats();
        assert_eq!(stats.cache_misses, 1, "round {round}: {stats:?}");
        assert_eq!(
            stats.cache_hits, 1,
            "round {round}: permuted copy missed the memo entry ({stats:?})"
        );
        // And both must agree with the unmemoized reference classifier.
        assert_eq!(original, classify(&problem).complexity, "round {round}");
        assert_eq!(permuted, classify(&renamed).complexity, "round {round}");
        checked += 1;
    }
    assert!(checked >= 30, "only {checked} non-empty problems generated");
}

#[test]
fn every_permutation_of_a_small_problem_hits_one_memo_entry() {
    // All 3! = 6 label permutations of a 3-label problem, classified through
    // one engine: exactly one miss, five hits, one verdict.
    let problem: LclProblem = "1:22\n1:23\n2:33\n3:11\n".parse().unwrap();
    let engine = ClassificationEngine::new();
    let baseline = engine.classify(&problem);
    let mut perms = vec![vec![0usize, 1, 2]];
    perms.extend([
        vec![0, 2, 1],
        vec![1, 0, 2],
        vec![1, 2, 0],
        vec![2, 0, 1],
        vec![2, 1, 0],
    ]);
    for perm in &perms {
        assert_eq!(engine.classify(&permuted_copy(&problem, perm)), baseline);
    }
    let stats = engine.stats();
    assert_eq!(stats.cache_misses, 1, "{stats:?}");
    assert_eq!(stats.cache_hits, perms.len(), "{stats:?}");
}

#[test]
fn permutation_memoization_never_changes_the_answer_without_memoization() {
    // Control experiment: with memoization off, the permuted copy runs the
    // full decision procedure and still produces the identical complexity —
    // i.e. the cache is an optimization, not the source of the agreement.
    let mut rng = SplitMix64::seed_from_u64(777);
    let mut engine = ClassificationEngine::new();
    engine.set_memoization(false);
    for _ in 0..15 {
        let spec = RandomProblemSpec {
            delta: 2,
            num_labels: 3,
            density: 0.35,
        };
        let problem = random_problem(&spec, rng.next_u64());
        let perm = random_permutation(problem.alphabet().len(), &mut rng);
        let renamed = permuted_copy(&problem, &perm);
        assert_eq!(engine.classify(&problem), engine.classify(&renamed));
    }
    assert_eq!(engine.stats().cache_hits, 0);
}
