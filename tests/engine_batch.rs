//! Engine integration tests: batch classification must agree exactly with
//! per-problem sequential `classify`, across the whole catalog and across a
//! large enumerated random family, through both the memoized and the parallel
//! paths. This is the acceptance gate for the batch classification engine.

use rooted_tree_lcl::core::{classify, ClassificationEngine, Complexity, LclProblem};
use rooted_tree_lcl::problems::catalog;
use rooted_tree_lcl::problems::random::{enumerate_problems, random_family, RandomProblemSpec};

fn expected_of(problems: &[LclProblem]) -> Vec<Complexity> {
    problems.iter().map(|p| classify(p).complexity).collect()
}

#[test]
fn batch_matches_sequential_on_the_catalog() {
    let problems: Vec<LclProblem> = catalog().into_iter().map(|e| e.problem).collect();
    let expected = expected_of(&problems);

    let engine = ClassificationEngine::new();
    assert_eq!(engine.classify_batch_sequential(&problems), expected);

    let engine = ClassificationEngine::new();
    assert_eq!(engine.classify_batch(&problems), expected);

    let mut engine = ClassificationEngine::new();
    engine.set_memoization(false);
    assert_eq!(engine.classify_batch(&problems), expected);
}

#[test]
fn batch_matches_sequential_on_a_500_problem_family() {
    // The acceptance workload: ≥ 500 random δ=2 problems over 3 labels.
    let spec = RandomProblemSpec {
        delta: 2,
        num_labels: 3,
        density: 0.3,
    };
    let problems = random_family(&spec, 7, 512);
    assert!(problems.len() >= 500);
    let expected = expected_of(&problems);

    // Parallel + memoized path.
    let engine = ClassificationEngine::new();
    let parallel = engine.classify_batch(&problems);
    assert_eq!(parallel, expected);
    let stats = engine.stats();
    assert_eq!(stats.total(), problems.len());
    // Random 3-label families repeat canonical forms heavily; the cache must
    // actually be doing work, otherwise the memoized path is untested.
    assert!(
        stats.cache_hits > 0,
        "expected cache hits over a 512-problem random family, got stats {stats:?}"
    );

    // Memoized sequential path on a fresh engine.
    let engine = ClassificationEngine::new();
    assert_eq!(engine.classify_batch_sequential(&problems), expected);
}

#[test]
fn batch_matches_sequential_on_an_enumerated_family_slice() {
    // A deterministic slice of the complete δ=2, 2-label family.
    let problems: Vec<LclProblem> = enumerate_problems(2, 2).take(64).collect();
    let expected = expected_of(&problems);
    let engine = ClassificationEngine::new();
    assert_eq!(engine.classify_batch(&problems), expected);
}

#[test]
fn engine_caches_across_renamings_without_changing_answers() {
    let spec = RandomProblemSpec {
        delta: 2,
        num_labels: 3,
        density: 0.4,
    };
    let problems = random_family(&spec, 99, 64);
    let engine = ClassificationEngine::new();
    // Classify everything twice: the second pass must be pure cache hits and
    // still agree with sequential classification.
    let first = engine.classify_batch(&problems);
    let before_second = engine.stats();
    let second = engine.classify_batch(&problems);
    assert_eq!(first, second);
    let after = engine.stats();
    assert_eq!(
        after.cache_hits - before_second.cache_hits,
        problems.len(),
        "second pass must be answered entirely from the cache"
    );
    assert_eq!(first, expected_of(&problems));
}
