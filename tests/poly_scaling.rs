//! Acceptance test for the generalized B/X-partition solver at scale: on a
//! 2^20-node tree the measured rounds must be sublinear — bounded by a small
//! constant times n^{1/k} — and the labeling must pass the parallel CSR
//! validator of `lcl-verify`.

use rooted_tree_lcl::algorithms::flat::{solve_poly_flat, SolveScratch};
use rooted_tree_lcl::algorithms::{ceil_nth_root, poly_partition, PolyPart};
use rooted_tree_lcl::core::find_poly_certificate;
use rooted_tree_lcl::problems::pi_k;
use rooted_tree_lcl::trees::FlatTree;
use rooted_tree_lcl::verify::LabelingValidator;

#[test]
fn million_node_rounds_are_sublinear_and_validated() {
    let n: usize = 1 << 20;
    let mut scratch = SolveScratch::new();
    for k in [2usize, 3] {
        let problem = pi_k::pi_k(k);
        let cert = find_poly_certificate(&problem).expect("Π_k is polynomial");
        assert_eq!(cert.exponent(), k);
        let tree = FlatTree::random_full(2, n, 42);
        let idx = tree.level_index();
        let outcome = solve_poly_flat(&problem, &cert, &tree, &idx, &mut scratch).unwrap();
        LabelingValidator::new(&problem)
            .validate_parallel(&tree, &outcome.labels)
            .unwrap_or_else(|e| panic!("Π_{k}: CSR validator rejected the labeling: {e}"));

        let total = outcome.rounds.total();
        let root = ceil_nth_root(tree.len(), k);
        // Budget: k explorations of ≤ n^{1/k} levels, a rake completion of
        // ≤ n^{1/k}, the charged ruling-set constants, and a core whose size
        // shrinks by ~n^{1/k} per iteration. A generous constant catches
        // regressions to linear behaviour while staying noise-free.
        let max_chain: usize = cert
            .levels
            .iter()
            .map(|level| level.chain_threshold)
            .max()
            .unwrap_or(0);
        let budget = (4 * k + 8) * (max_chain + 2) * root;
        assert!(
            total <= budget,
            "Π_{k}: {total} rounds exceed the O(n^(1/{k})) budget {budget}"
        );
        assert!(
            total * 8 < tree.len(),
            "Π_{k}: {total} rounds is not sublinear in n = {}",
            tree.len()
        );
    }
}

#[test]
fn partition_core_shrinks_with_the_threshold() {
    // The analysis behind the upper bound: each iteration keeps only
    // branching nodes, leaves, and short chains — O(n / n^{1/k}) many, up to
    // the chain-threshold constant.
    let problem = pi_k::pi_k(2);
    let cert = find_poly_certificate(&problem).unwrap();
    let tree = FlatTree::random_full(2, 1 << 16, 7).to_rooted();
    let partition = poly_partition(&tree, &cert);
    let core = partition
        .part
        .iter()
        .filter(|p| matches!(p, PolyPart::Core))
        .count();
    let root = ceil_nth_root(tree.len(), 2);
    let l1 = cert.levels[0].chain_threshold;
    let bound = 4 * (l1 + 2) * (tree.len() / partition.threshold + 1);
    assert!(
        core <= bound,
        "core of {core} nodes exceeds the shrinkage bound {bound} (n^(1/2) = {root})"
    );
}
