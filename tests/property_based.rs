//! Property-based tests over random problems and random trees.

use proptest::prelude::*;
use rooted_tree_lcl::core::{classify, Complexity};
use rooted_tree_lcl::prelude::*;
use rooted_tree_lcl::problems::random::{random_problem, RandomProblemSpec};
use rooted_tree_lcl::trees::{generators, rcp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random full trees really are full δ-ary trees of the requested size.
    #[test]
    fn random_full_trees_are_full(delta in 1usize..4, min_nodes in 1usize..300, seed in any::<u64>()) {
        let tree = generators::random_full(delta, min_nodes, seed);
        prop_assert!(tree.len() >= min_nodes);
        prop_assert!(tree.is_full_dary(delta));
        prop_assert!(tree.validate().is_ok());
    }

    /// RCP(p) partitions satisfy Definition 5.8 and have O(log n) layers.
    #[test]
    fn rcp_partitions_are_valid(p in 1usize..6, min_nodes in 2usize..500, seed in any::<u64>()) {
        let tree = generators::random_full(2, min_nodes, seed);
        let part = rcp::rcp_partition(&tree, p);
        prop_assert!(rcp::validate_partition(&tree, &part).is_ok());
        // Generous logarithmic bound (Lemma 5.9 gives shrinkage 1/(6p) per layer).
        let bound = 12 * p * ((tree.len() as f64).ln().ceil() as usize + 1) + 1;
        prop_assert!(part.num_layers() <= bound);
    }

    /// Classifier invariants on random problems: solvability agrees with the
    /// greatest-fixed-point test, the classes are internally consistent, and for
    /// solvable problems the unified solver produces verifiable solutions.
    #[test]
    fn classifier_and_solver_agree_on_random_problems(seed in 0u64..5000) {
        let spec = RandomProblemSpec { delta: 2, num_labels: 3, density: 0.30 };
        let problem = random_problem(&spec, seed);
        let report = classify(&problem);
        prop_assert_eq!(
            report.complexity == Complexity::Unsolvable,
            report.solvable_labels.is_empty()
        );
        match report.complexity {
            Complexity::Constant => prop_assert!(report.constant.is_some()),
            Complexity::LogStar => prop_assert!(report.log_star.is_some() && report.constant.is_none()),
            Complexity::Log => prop_assert!(report.log_certificate().is_some() && report.log_star.is_none()),
            Complexity::Polynomial { lower_bound_exponent } => {
                prop_assert!(lower_bound_exponent >= 1);
                prop_assert!(report.log_certificate().is_none());
            }
            Complexity::Unsolvable => {}
        }
        if report.complexity.is_solvable() {
            let tree = generators::random_full(2, 101, seed);
            let outcome = solve(&problem, &report, &tree, IdAssignment::sequential(&tree));
            let outcome = outcome.expect("solvable problems must be solved");
            prop_assert!(outcome.labeling.verify(&tree, &problem).is_ok());
        }
    }

    /// Restriction is monotone: restricting to the solvable labels never changes
    /// solvability, and path-forms of restrictions are restrictions of path-forms.
    #[test]
    fn restriction_invariants(seed in 0u64..3000) {
        let spec = RandomProblemSpec { delta: 2, num_labels: 4, density: 0.25 };
        let problem = random_problem(&spec, seed);
        let solvable = rooted_tree_lcl::core::solvable_labels(&problem);
        let restricted = problem.restrict_to(&solvable);
        prop_assert!(restricted.is_restriction_of(&problem));
        prop_assert_eq!(
            rooted_tree_lcl::core::solvable_labels(&restricted),
            solvable
        );
        let pf_restricted = restricted.path_form();
        let pf = problem.path_form();
        prop_assert!(pf_restricted.configurations().is_subset(pf.configurations()));
    }
}
