//! Property-based tests over random problems, random trees, and random label
//! sets, driven by the workspace's own seeded PRNG (`lcl-rand`). Each property
//! runs a fixed number of deterministic cases, so failures reproduce exactly.

use std::collections::BTreeSet;

use lcl_rand::SplitMix64;
use rooted_tree_lcl::core::{classify, solvable_labels, Complexity, Label, LabelSet};
use rooted_tree_lcl::prelude::*;
use rooted_tree_lcl::problems::random::{random_problem, RandomProblemSpec};
use rooted_tree_lcl::trees::{generators, rcp};

const CASES: u64 = 48;

/// The reference model: `LabelSet` must agree with `BTreeSet<Label>` on every
/// operation, on random inputs across the whole 0..128 index range.
#[test]
fn label_set_agrees_with_btreeset_model() {
    let mut rng = SplitMix64::seed_from_u64(0xface);
    for case in 0..500 {
        let size_a = rng.gen_index(20);
        let size_b = rng.gen_index(20);
        let a_model: BTreeSet<Label> = (0..size_a)
            .map(|_| Label(rng.gen_index(128) as u16))
            .collect();
        let b_model: BTreeSet<Label> = (0..size_b)
            .map(|_| Label(rng.gen_index(128) as u16))
            .collect();
        let a = LabelSet::from_btree(&a_model);
        let b = LabelSet::from_btree(&b_model);

        // Cardinality, membership, iteration order.
        assert_eq!(a.len(), a_model.len(), "case {case}: len");
        assert_eq!(a.is_empty(), a_model.is_empty());
        let probe = Label(rng.gen_index(128) as u16);
        assert_eq!(a.contains(probe), a_model.contains(&probe));
        let iterated: Vec<Label> = a.iter().collect();
        let model_order: Vec<Label> = a_model.iter().copied().collect();
        assert_eq!(iterated, model_order, "case {case}: ascending iteration");
        assert_eq!(a.first(), a_model.first().copied());

        // Set algebra.
        let union_model: BTreeSet<Label> = a_model.union(&b_model).copied().collect();
        let inter_model: BTreeSet<Label> = a_model.intersection(&b_model).copied().collect();
        let diff_model: BTreeSet<Label> = a_model.difference(&b_model).copied().collect();
        assert_eq!(a.union(b).to_btree(), union_model, "case {case}: union");
        assert_eq!(
            a.intersection(b).to_btree(),
            inter_model,
            "case {case}: intersection"
        );
        assert_eq!(
            a.difference(b).to_btree(),
            diff_model,
            "case {case}: difference"
        );
        assert_eq!(a.is_subset(b), a_model.is_subset(&b_model));
        assert_eq!(a.is_superset(b), a_model.is_superset(&b_model));
        assert_eq!(a.is_disjoint(b), a_model.is_disjoint(&b_model));

        // Mutation round trip.
        let mut grown = a;
        let mut grown_model = a_model.clone();
        assert_eq!(grown.insert(probe), grown_model.insert(probe));
        assert_eq!(grown.remove(probe), grown_model.remove(&probe));
        assert_eq!(grown.to_btree(), grown_model, "case {case}: insert/remove");

        // Rank agrees with the number of strictly smaller members.
        let r = a.rank(probe);
        assert_eq!(r, a_model.iter().filter(|l| **l < probe).count());
    }
}

/// Random full trees really are full δ-ary trees of the requested size.
#[test]
fn random_full_trees_are_full() {
    let mut rng = SplitMix64::seed_from_u64(1);
    for _ in 0..CASES {
        let delta = 1 + rng.gen_index(3);
        let min_nodes = 1 + rng.gen_index(299);
        let seed = rng.next_u64();
        let tree = generators::random_full(delta, min_nodes, seed);
        assert!(tree.len() >= min_nodes);
        assert!(tree.is_full_dary(delta));
        assert!(tree.validate().is_ok());
    }
}

/// RCP(p) partitions satisfy Definition 5.8 and have O(log n) layers.
#[test]
fn rcp_partitions_are_valid() {
    let mut rng = SplitMix64::seed_from_u64(2);
    for _ in 0..CASES {
        let p = 1 + rng.gen_index(5);
        let min_nodes = 2 + rng.gen_index(498);
        let seed = rng.next_u64();
        let tree = generators::random_full(2, min_nodes, seed);
        let part = rcp::rcp_partition(&tree, p);
        assert!(rcp::validate_partition(&tree, &part).is_ok());
        // Generous logarithmic bound (Lemma 5.9 gives shrinkage 1/(6p) per layer).
        let bound = 12 * p * ((tree.len() as f64).ln().ceil() as usize + 1) + 1;
        assert!(part.num_layers() <= bound);
    }
}

/// Classifier invariants on random problems: solvability agrees with the
/// greatest-fixed-point test, the classes are internally consistent, and for
/// solvable problems the unified solver produces verifiable solutions.
#[test]
fn classifier_and_solver_agree_on_random_problems() {
    for seed in 0..CASES {
        let spec = RandomProblemSpec {
            delta: 2,
            num_labels: 3,
            density: 0.30,
        };
        let problem = random_problem(&spec, seed);
        let report = classify(&problem);
        assert_eq!(
            report.complexity == Complexity::Unsolvable,
            report.solvable_labels.is_empty()
        );
        match report.complexity {
            Complexity::Constant => assert!(report.constant.is_some()),
            Complexity::LogStar => {
                assert!(report.log_star.is_some() && report.constant.is_none())
            }
            Complexity::Log => {
                assert!(report.log_certificate().is_some() && report.log_star.is_none())
            }
            Complexity::Polynomial { exponent } => {
                assert!(exponent >= 1);
                assert!(report.log_certificate().is_none());
                let cert = report.poly_certificate().expect("polynomial certificate");
                assert_eq!(cert.exponent(), exponent);
            }
            Complexity::Unsolvable => {}
        }
        if report.complexity.is_solvable() {
            let tree = generators::random_full(2, 101, seed);
            let outcome = solve(&problem, &report, &tree, IdAssignment::sequential(&tree));
            let outcome = outcome.expect("solvable problems must be solved");
            assert!(outcome.labeling.verify(&tree, &problem).is_ok());
        }
    }
}

/// Restriction is monotone: restricting to the solvable labels never changes
/// solvability, and path-forms of restrictions are restrictions of path-forms.
#[test]
fn restriction_invariants() {
    for seed in 0..CASES {
        let spec = RandomProblemSpec {
            delta: 2,
            num_labels: 4,
            density: 0.25,
        };
        let problem = random_problem(&spec, seed);
        let solvable = solvable_labels(&problem);
        let restricted = problem.restrict_to(solvable);
        assert!(restricted.is_restriction_of(&problem));
        assert_eq!(solvable_labels(&restricted), solvable);
        let pf_restricted = restricted.path_form();
        let pf = problem.path_form();
        assert!(pf_restricted.is_restriction_of(&pf));
    }
}

/// Restricting through the `LabelSet` API agrees with a `BTreeSet`-driven
/// reference restriction computed by hand.
#[test]
fn restriction_agrees_with_btreeset_model() {
    let mut rng = SplitMix64::seed_from_u64(3);
    for seed in 0..CASES {
        let spec = RandomProblemSpec {
            delta: 2,
            num_labels: 4,
            density: 0.35,
        };
        let problem = random_problem(&spec, seed);
        // Random subset of the labels, built as a BTreeSet model first.
        let subset_model: BTreeSet<Label> = problem
            .labels()
            .iter()
            .filter(|_| rng.gen_bool(0.5))
            .collect();
        let subset = LabelSet::from_btree(&subset_model);
        let restricted = problem.restrict_to(subset);
        assert_eq!(restricted.labels_btree(), subset_model);
        // Reference: a configuration survives iff all its labels are in the model.
        let expected: Vec<_> = problem
            .configurations()
            .iter()
            .filter(|c| c.labels().all(|l| subset_model.contains(&l)))
            .cloned()
            .collect();
        assert_eq!(restricted.configurations(), expected.as_slice());
    }
}
