//! Differential acceptance tests for the canonical-first sweep subsystem:
//!
//! * orbit counts and orbit sizes of `CanonicalFamily` must match brute-force
//!   `canonical_form` dedup of the fully enumerated universe;
//! * sweep histograms (orbit-weighted) must match `classify_batch` over the
//!   full universe, and the orbit histogram must match dedup-then-classify;
//! * the sweep leaves the engine cache warm for every member of the family.

use std::collections::HashMap;

use rooted_tree_lcl::core::engine::{ComplexityHistogram, SweepOutcome};
use rooted_tree_lcl::core::{canonical_form, classify, CanonicalKey, ClassificationEngine};
use rooted_tree_lcl::problems::canonical::CanonicalFamily;
use rooted_tree_lcl::problems::random::enumerate_problems;

/// Universes small enough to brute-force in a debug test run.
const TINY_UNIVERSES: [(usize, usize); 3] = [(1, 2), (2, 2), (1, 3)];

/// Brute force: enumerate the whole family, key every member by its canonical
/// form, count members per orbit.
fn brute_force_orbits(delta: usize, labels: usize) -> HashMap<CanonicalKey, u64> {
    let mut orbits: HashMap<CanonicalKey, u64> = HashMap::new();
    for p in enumerate_problems(delta, labels) {
        *orbits.entry(canonical_form(&p)).or_insert(0) += 1;
    }
    orbits
}

#[test]
fn canonical_enumeration_matches_brute_force_dedup() {
    for (delta, labels) in TINY_UNIVERSES {
        let family = CanonicalFamily::new(delta, labels);
        let brute = brute_force_orbits(delta, labels);

        let mut seen_keys: HashMap<CanonicalKey, u64> = HashMap::new();
        let mut total = 0u64;
        for orbit in family.enumerate() {
            let key = canonical_form(&orbit.problem);
            let previous = seen_keys.insert(key, orbit.orbit_size);
            assert!(
                previous.is_none(),
                "two representatives share a canonical form (δ={delta}, k={labels})"
            );
            total += orbit.orbit_size;
        }
        assert_eq!(
            seen_keys.len(),
            brute.len(),
            "orbit count mismatch (δ={delta}, k={labels})"
        );
        assert_eq!(
            total,
            family.family_size(),
            "orbit sizes must cover the universe (δ={delta}, k={labels})"
        );
        for (key, size) in &seen_keys {
            assert_eq!(
                brute.get(key),
                Some(size),
                "orbit size mismatch (δ={delta}, k={labels})"
            );
        }
    }
}

#[test]
fn delta2_three_label_orbit_count_matches_brute_force() {
    // The full (δ=2, 3-label) universe of 2^18 problems — the sweep benchmark's
    // workload. Counting-only here; the per-orbit histogram equality is covered
    // by the sweep tests below and by `benches/sweep.rs` on the full universe.
    let family = CanonicalFamily::new(2, 3);
    let brute = brute_force_orbits(2, 3);
    let mut reps = 0usize;
    let mut covered = 0u64;
    for mask in family.canonical_masks() {
        reps += 1;
        covered += family.orbit_size(mask);
    }
    assert_eq!(reps, brute.len());
    assert_eq!(covered, family.family_size());
    assert_eq!(brute.values().sum::<u64>(), family.family_size());
}

fn baseline_histogram(delta: usize, labels: usize) -> ComplexityHistogram {
    let problems: Vec<_> = enumerate_problems(delta, labels).collect();
    let engine = ClassificationEngine::new();
    let mut histogram = ComplexityHistogram::default();
    for c in engine.classify_batch(&problems) {
        histogram.add(c, 1);
    }
    histogram
}

fn sweep(delta: usize, labels: usize, shards: usize) -> (ClassificationEngine, SweepOutcome) {
    let family = CanonicalFamily::new(delta, labels);
    let engine = ClassificationEngine::new();
    let outcome = engine.sweep_sharded(shards, |s| family.shard(s, shards));
    (engine, outcome)
}

#[test]
fn sweep_histograms_match_classify_batch_over_the_full_universe() {
    for (delta, labels) in TINY_UNIVERSES {
        let baseline = baseline_histogram(delta, labels);
        let (_, outcome) = sweep(delta, labels, 3);
        assert_eq!(
            outcome.problems, baseline,
            "universe histogram mismatch (δ={delta}, k={labels})"
        );
        assert_eq!(
            outcome.problems.total(),
            1u64 << rooted_tree_lcl::problems::random::universe_size(delta, labels)
        );

        // Orbit histogram: classify one member per canonical form.
        let mut dedup: HashMap<CanonicalKey, rooted_tree_lcl::core::Complexity> = HashMap::new();
        for p in enumerate_problems(delta, labels) {
            dedup
                .entry(canonical_form(&p))
                .or_insert_with(|| classify(&p).complexity);
        }
        let mut orbit_histogram = ComplexityHistogram::default();
        for &c in dedup.values() {
            orbit_histogram.add(c, 1);
        }
        assert_eq!(
            outcome.orbits, orbit_histogram,
            "orbit histogram mismatch (δ={delta}, k={labels})"
        );
    }
}

#[test]
fn sweep_outcome_is_independent_of_shard_count() {
    let (_, one) = sweep(2, 2, 1);
    for shards in [2usize, 4, 9] {
        let (_, many) = sweep(2, 2, shards);
        assert_eq!(one, many, "{shards} shards");
    }
}

#[test]
fn sweep_leaves_the_engine_cache_warm_for_the_whole_family() {
    let (engine, outcome) = sweep(2, 2, 2);
    let swept = engine.stats();
    assert_eq!(
        swept.cache_hits, 0,
        "a canonical stream never repeats an orbit"
    );
    assert_eq!(swept.cache_misses as u64, outcome.orbits.total());

    // Every member of the full universe — canonical or not — now hits.
    let problems: Vec<_> = enumerate_problems(2, 2).collect();
    for p in &problems {
        engine.classify(p);
    }
    let after = engine.stats();
    assert_eq!(
        after.cache_misses, swept.cache_misses,
        "no new decision runs"
    );
    assert_eq!(after.cache_hits, problems.len());
}
