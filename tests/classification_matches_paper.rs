//! Cross-crate integration test: the classifier reproduces the complexity classes
//! the paper states for every catalog problem (experiment E1), and the certificates
//! it returns verify against their definitions.

use rooted_tree_lcl::core::{classify, Complexity};
use rooted_tree_lcl::problems::{catalog, pi_k};

#[test]
fn catalog_classifications_match_the_paper() {
    for entry in catalog() {
        let report = classify(&entry.problem);
        assert!(
            entry.expected.matches(report.complexity),
            "{}: expected {}, got {}",
            entry.name,
            entry.expected.describe(),
            report.complexity
        );
    }
}

#[test]
fn certificates_in_reports_verify_against_their_definitions() {
    for entry in catalog() {
        let report = classify(&entry.problem);
        if let Some(cert) = report.log_certificate() {
            cert.verify(&entry.problem)
                .unwrap_or_else(|e| panic!("{}: O(log n) certificate invalid: {e}", entry.name));
        }
        if let Some(cert) = report.log_star_certificate() {
            cert.unwrap()
                .verify(&entry.problem)
                .unwrap_or_else(|e| panic!("{}: O(log* n) certificate invalid: {e}", entry.name));
        }
        if let Some(cert) = report.constant_certificate() {
            cert.unwrap()
                .verify(&entry.problem)
                .unwrap_or_else(|e| panic!("{}: O(1) certificate invalid: {e}", entry.name));
        }
    }
}

#[test]
fn class_nesting_is_respected() {
    // Constant ⇒ log* certificate exists ⇒ log certificate exists.
    for entry in catalog() {
        let report = classify(&entry.problem);
        match report.complexity {
            Complexity::Constant => {
                assert!(report.constant.is_some());
                assert!(report.log_star.is_some());
                assert!(report.log_certificate().is_some());
            }
            Complexity::LogStar => {
                assert!(report.constant.is_none());
                assert!(report.log_star.is_some());
                assert!(report.log_certificate().is_some());
            }
            Complexity::Log => {
                assert!(report.log_star.is_none());
                assert!(report.log_certificate().is_some());
            }
            Complexity::Polynomial { .. } => {
                assert!(report.log_certificate().is_none());
            }
            Complexity::Unsolvable => {
                assert!(report.solvable_labels.is_empty());
            }
        }
    }
}

#[test]
fn pi_k_exact_exponent_matches_k() {
    // Theorem 8.3: Π_k has complexity exactly Θ(n^{1/k}) — the built-in
    // differential oracle of the exponent decision procedure.
    for k in 1..=5 {
        let problem = pi_k::pi_k(k);
        let report = classify(&problem);
        assert_eq!(
            report.complexity,
            Complexity::Polynomial { exponent: k },
            "Π_{k}"
        );
        let cert = report.poly_certificate().expect("polynomial certificate");
        assert_eq!(cert.exponent(), k);
        cert.verify(&problem).unwrap();
        // The exponent never exceeds the pruning iteration count (the
        // Ω(n^{1/iterations}) side of Theorem 5.2); on Π_k they coincide.
        assert_eq!(report.log_analysis.iterations(), k);
    }
}

// ---------------------------------------------------------------------------
// Brute-force reference for the exact exponent: the same trim/flexible-SCC
// recursion, but over *materialized* restrictions (`restrict_to` +
// `solvable_labels` + `Automaton::components`) instead of the masked kernels.
// ---------------------------------------------------------------------------

use rooted_tree_lcl::core::automaton::Automaton;
use rooted_tree_lcl::core::{solvable_labels, LabelSet, LclProblem};

fn reference_depth(problem: &LclProblem, s: LabelSet) -> usize {
    // `s` is trimmed and non-empty.
    let restricted = problem.restrict_to(s);
    let automaton = Automaton::of(&restricted);
    let mut best = 1;
    for comp in automaton.components() {
        if !comp.has_cycle || comp.period != 1 || comp.states == s {
            continue;
        }
        let trimmed = solvable_labels(&problem.restrict_to(comp.states));
        if !trimmed.is_empty() {
            best = best.max(1 + reference_depth(problem, trimmed));
        }
    }
    best
}

/// `Some(k)` iff the problem is in the polynomial region, decided and
/// recursed entirely through materialized restrictions.
fn reference_exponent(problem: &LclProblem) -> Option<usize> {
    let sustaining = solvable_labels(problem);
    if sustaining.is_empty() {
        return None;
    }
    // Algorithm 2 via materialized restrictions.
    let mut current = problem.clone();
    loop {
        let flexible = Automaton::of(&current).flexible_states();
        if flexible == current.labels() {
            break;
        }
        current = current.restrict_to(flexible);
    }
    if !current.labels().is_empty() {
        return None; // a log certificate exists
    }
    Some(reference_depth(problem, sustaining))
}

fn assert_exponent_matches_reference(problem: &LclProblem, context: &str) {
    let complexity = classify(problem).complexity;
    match (reference_exponent(problem), complexity) {
        (Some(k), Complexity::Polynomial { exponent }) => {
            assert_eq!(exponent, k, "{context}: {}", problem.to_text());
        }
        (None, Complexity::Polynomial { .. }) => {
            panic!(
                "{context}: classifier says polynomial, reference disagrees: {}",
                problem.to_text()
            );
        }
        (Some(k), other) => {
            panic!(
                "{context}: reference says Θ(n^(1/{k})), classifier says {other}: {}",
                problem.to_text()
            );
        }
        (None, _) => {}
    }
}

#[test]
fn exponent_procedure_matches_brute_force_reference_exhaustively() {
    // Every problem over δ = 2 and two labels: 2 × 3 = 6 possible
    // configurations, 64 problems — the full universe the sweep golden covers.
    let names = ["a", "b"];
    let universe: Vec<(usize, [usize; 2])> = (0..2)
        .flat_map(|p| [(p, [0, 0]), (p, [0, 1]), (p, [1, 1])])
        .collect();
    for mask in 0u32..1 << universe.len() {
        let mut b = LclProblem::builder(2);
        b.label("a");
        b.label("b");
        for (i, (p, cs)) in universe.iter().enumerate() {
            if mask & (1 << i) != 0 {
                b.configuration(names[*p], &[names[cs[0]], names[cs[1]]]);
            }
        }
        let problem = b.build();
        assert_exponent_matches_reference(&problem, "exhaustive δ=2 2-label");
    }
}

#[test]
fn exponent_procedure_matches_reference_on_deep_and_random_problems() {
    use rooted_tree_lcl::problems::random::{random_problem, RandomProblemSpec};
    // Deep chains: Π_1..Π_4 plus the Section 8 k = 2 construction.
    for k in 1..=4 {
        assert_exponent_matches_reference(&pi_k::pi_k(k), "pi_k");
    }
    let section8 = rooted_tree_lcl::problems::extras::section_8_depth_two();
    assert_exponent_matches_reference(&section8, "section 8 (k = 2)");
    // Random 3- and 4-label problems, and sparse δ=1 path problems.
    for seed in 0..120 {
        for (delta, labels, density) in [(2, 3, 0.25), (2, 4, 0.2), (1, 3, 0.3)] {
            let spec = RandomProblemSpec {
                delta,
                num_labels: labels,
                density,
            };
            let problem = random_problem(&spec, seed);
            assert_exponent_matches_reference(&problem, "random");
        }
    }
}

#[test]
fn exponent_is_bounded_by_pruning_iterations() {
    use rooted_tree_lcl::problems::random::{random_problem, RandomProblemSpec};
    for seed in 0..200 {
        let spec = RandomProblemSpec {
            delta: 2,
            num_labels: 3,
            density: 0.3,
        };
        let problem = random_problem(&spec, seed);
        let report = classify(&problem);
        if let Complexity::Polynomial { exponent } = report.complexity {
            assert!(exponent >= 1);
            assert!(
                exponent <= report.log_analysis.iterations().max(1),
                "exponent {exponent} exceeds pruning iterations {} on {}",
                report.log_analysis.iterations(),
                problem.to_text()
            );
            report
                .poly_certificate()
                .expect("polynomial certificate")
                .verify(&problem)
                .unwrap();
        }
    }
}
