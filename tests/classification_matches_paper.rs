//! Cross-crate integration test: the classifier reproduces the complexity classes
//! the paper states for every catalog problem (experiment E1), and the certificates
//! it returns verify against their definitions.

use rooted_tree_lcl::core::{classify, Complexity};
use rooted_tree_lcl::problems::{catalog, pi_k};

#[test]
fn catalog_classifications_match_the_paper() {
    for entry in catalog() {
        let report = classify(&entry.problem);
        assert!(
            entry.expected.matches(report.complexity),
            "{}: expected {}, got {}",
            entry.name,
            entry.expected.describe(),
            report.complexity
        );
    }
}

#[test]
fn certificates_in_reports_verify_against_their_definitions() {
    for entry in catalog() {
        let report = classify(&entry.problem);
        if let Some(cert) = report.log_certificate() {
            cert.verify(&entry.problem)
                .unwrap_or_else(|e| panic!("{}: O(log n) certificate invalid: {e}", entry.name));
        }
        if let Some(cert) = report.log_star_certificate() {
            cert.unwrap()
                .verify(&entry.problem)
                .unwrap_or_else(|e| panic!("{}: O(log* n) certificate invalid: {e}", entry.name));
        }
        if let Some(cert) = report.constant_certificate() {
            cert.unwrap()
                .verify(&entry.problem)
                .unwrap_or_else(|e| panic!("{}: O(1) certificate invalid: {e}", entry.name));
        }
    }
}

#[test]
fn class_nesting_is_respected() {
    // Constant ⇒ log* certificate exists ⇒ log certificate exists.
    for entry in catalog() {
        let report = classify(&entry.problem);
        match report.complexity {
            Complexity::Constant => {
                assert!(report.constant.is_some());
                assert!(report.log_star.is_some());
                assert!(report.log_certificate().is_some());
            }
            Complexity::LogStar => {
                assert!(report.constant.is_none());
                assert!(report.log_star.is_some());
                assert!(report.log_certificate().is_some());
            }
            Complexity::Log => {
                assert!(report.log_star.is_none());
                assert!(report.log_certificate().is_some());
            }
            Complexity::Polynomial { .. } => {
                assert!(report.log_certificate().is_none());
            }
            Complexity::Unsolvable => {
                assert!(report.solvable_labels.is_empty());
            }
        }
    }
}

#[test]
fn pi_k_lower_bound_exponent_matches_k() {
    for k in 1..=5 {
        let problem = pi_k::pi_k(k);
        let report = classify(&problem);
        assert_eq!(
            report.complexity,
            Complexity::Polynomial {
                lower_bound_exponent: k
            },
            "Π_{k}"
        );
    }
}
