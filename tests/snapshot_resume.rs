//! Resume-equivalence of checkpointed sweep campaigns.
//!
//! The contract under test: a campaign that is interrupted at any commit
//! boundary and resumed from its snapshot — any number of times, under any
//! worker count — produces exactly the same final state as an uninterrupted
//! run. "Exactly" means the orbit and whole-universe histograms, the lane
//! statistics (block formation depends only on the cursor, so the resumed
//! campaign classifies the identical block sequence), and the canonical-form
//! memo (distinct orbits have distinct canonical keys, so the memo is one
//! entry per orbit regardless of where the campaign was cut).

use rooted_tree_lcl::core::{
    load_or_quarantine, CanonicalKey, ClassificationEngine, Complexity, EngineKind, LaneWidth,
    LoadOutcome, SnapshotError, SweepCheckpoint, SweepSnapshot,
};
use rooted_tree_lcl::problems::canonical::CanonicalFamily;

fn fresh(family: &CanonicalFamily, engine: EngineKind, shards: usize) -> SweepSnapshot {
    SweepSnapshot::fresh(
        family.delta() as u16,
        family.num_labels() as u16,
        engine,
        family.ranges(shards),
    )
}

fn step(
    family: &CanonicalFamily,
    state: SweepSnapshot,
    limit: Option<u64>,
) -> (SweepSnapshot, bool) {
    step_at_width(family, state, limit, LaneWidth::W64)
}

fn step_at_width(
    family: &CanonicalFamily,
    state: SweepSnapshot,
    limit: Option<u64>,
    width: LaneWidth,
) -> (SweepSnapshot, bool) {
    let ckpt = SweepCheckpoint {
        path: None,
        every_orbits: 4096,
        orbit_limit: limit,
    };
    let engine = ClassificationEngine::new();
    match state.cursor.engine {
        EngineKind::Scalar => engine
            .sweep_resumable(state, |r| family.orbits_in(r), &ckpt)
            .expect("in-memory sweep cannot hit snapshot I/O"),
        EngineKind::Bitsliced => {
            let universe = family.sliced_universe();
            engine
                .sweep_resumable_bitsliced(
                    &universe,
                    width,
                    state,
                    |r| family.blocks_in(r, width.lanes()),
                    |mask| family.problem_at(mask),
                    |mask| family.canonical_key_of(mask),
                    &ckpt,
                )
                .expect("in-memory sweep cannot hit snapshot I/O")
        }
    }
}

fn sorted_memo(snap: &SweepSnapshot) -> Vec<(CanonicalKey, Complexity)> {
    let mut memo = snap.memo.clone();
    memo.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    memo
}

/// Asserts complete state equality between a finished interrupted campaign and
/// the uninterrupted reference: histograms, lane statistics, and memo.
fn assert_equivalent(interrupted: &SweepSnapshot, reference: &SweepSnapshot) {
    assert_eq!(
        interrupted.outcome, reference.outcome,
        "histograms and lane statistics must match the uninterrupted run"
    );
    assert_eq!(
        interrupted.memo.len(),
        reference.memo.len(),
        "memo sizes must match the uninterrupted run"
    );
    assert_eq!(
        sorted_memo(interrupted),
        sorted_memo(reference),
        "memo contents must match the uninterrupted run"
    );
    assert!(interrupted.cursor.is_complete());
}

/// Interrupts the campaign after (at most) `limit` orbits per leg, resuming
/// until complete. The leg bound guards against a cursor that stops advancing.
fn run_interrupted(
    family: &CanonicalFamily,
    engine: EngineKind,
    shards: usize,
    limit: u64,
) -> (SweepSnapshot, usize) {
    let mut state = fresh(family, engine, shards);
    let max_legs = (family.family_size() + 2) as usize;
    let mut legs = 0;
    loop {
        let (next, completed) = step(family, state, Some(limit));
        state = next;
        legs += 1;
        if completed {
            return (state, legs);
        }
        assert!(
            legs < max_legs,
            "cursor stopped advancing after {legs} legs: {:?}",
            state.cursor
        );
    }
}

fn resume_matches_uninterrupted(
    delta: usize,
    labels: usize,
    engine: EngineKind,
    shards: usize,
    limit: u64,
) {
    let family = CanonicalFamily::new(delta, labels);
    let (reference, completed) = step(&family, fresh(&family, engine, shards), None);
    assert!(completed, "an unlimited campaign runs to completion");
    let (interrupted, legs) = run_interrupted(&family, engine, shards, limit);
    assert!(
        legs > 1,
        "the limit {limit} must actually interrupt the (δ={delta}, {labels}-label) campaign"
    );
    assert_equivalent(&interrupted, &reference);
}

#[test]
fn scalar_resume_at_every_orbit_boundary_small_family() {
    // (δ=2, 2 labels): 64 problems; limit 1 stops after every single orbit.
    resume_matches_uninterrupted(2, 2, EngineKind::Scalar, 2, 1);
}

#[test]
fn scalar_resume_at_every_orbit_boundary_d3_family() {
    // (δ=3, 2 labels): 256 problems, 136 orbits, one restart per orbit.
    resume_matches_uninterrupted(3, 2, EngineKind::Scalar, 4, 1);
}

#[test]
fn bitsliced_resume_at_every_block_boundary_d3_family() {
    // limit 1 stops after every committed block (each up to 64 lanes).
    resume_matches_uninterrupted(3, 2, EngineKind::Bitsliced, 2, 1);
}

#[test]
fn bitsliced_resume_sampled_on_the_full_three_label_universe() {
    // (δ=2, 3 labels): 2^18 problems, 44224 orbits; interrupt roughly every
    // 5000 orbits (~9 restarts) to keep debug-mode wall clock bounded.
    resume_matches_uninterrupted(2, 3, EngineKind::Bitsliced, 4, 5000);
}

#[test]
fn scalar_resume_with_single_orbit_legs_on_three_shards() {
    // Shards = 3 exercises watermark bookkeeping across multiple ranges.
    resume_matches_uninterrupted(1, 3, EngineKind::Scalar, 3, 1);
}

#[test]
fn resume_is_insensitive_to_the_original_shard_split() {
    // The stored cursor is authoritative, so a campaign started with one
    // split and resumed later must agree with an uninterrupted campaign over
    // a *different* split on everything split-independent: histograms and
    // memo. (Scalar lane stats are zero either way, so they match too.)
    let family = CanonicalFamily::new(3, 2);
    let (reference, _) = step(&family, fresh(&family, EngineKind::Scalar, 1), None);
    let (interrupted, legs) = run_interrupted(&family, EngineKind::Scalar, 5, 7);
    assert!(legs > 1);
    assert_eq!(interrupted.outcome.orbits, reference.outcome.orbits);
    assert_eq!(interrupted.outcome.problems, reference.outcome.problems);
    assert_eq!(interrupted.outcome.lanes, reference.outcome.lanes);
    assert_eq!(sorted_memo(&interrupted), sorted_memo(&reference));
}

#[test]
fn checkpoint_file_round_trips_mid_campaign() {
    let dir = std::env::temp_dir().join(format!("rtlcl-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("campaign.bin");

    let family = CanonicalFamily::new(2, 3);
    let (reference, _) = step(&family, fresh(&family, EngineKind::Bitsliced, 2), None);

    // First leg: run with a checkpoint file attached and an orbit budget, so
    // the campaign stops mid-universe with the snapshot persisted.
    let engine = ClassificationEngine::new();
    let universe = family.sliced_universe();
    let ckpt = SweepCheckpoint {
        path: Some(&path),
        every_orbits: 512,
        orbit_limit: Some(9000),
    };
    let (in_memory, completed) = engine
        .sweep_resumable_bitsliced(
            &universe,
            LaneWidth::W64,
            fresh(&family, EngineKind::Bitsliced, 2),
            |r| family.blocks_in(r, 64),
            |mask| family.problem_at(mask),
            |mask| family.canonical_key_of(mask),
            &ckpt,
        )
        .expect("checkpointed sweep");
    assert!(!completed, "the orbit budget must interrupt the campaign");

    // The file holds exactly the state the engine returned.
    let loaded = SweepSnapshot::load(&path).expect("mid-campaign snapshot loads");
    assert_eq!(loaded.cursor, in_memory.cursor);
    assert_eq!(loaded.outcome, in_memory.outcome);
    assert_eq!(sorted_memo(&loaded), sorted_memo(&in_memory));

    // Second leg: resume from the *disk* state to completion and compare
    // against the uninterrupted reference.
    let (finished, completed) = step(&family, loaded, None);
    assert!(completed);
    assert_equivalent(&finished, &reference);

    // The final write left a loadable, complete snapshot behind as well.
    let final_ckpt = SweepCheckpoint {
        path: Some(&path),
        every_orbits: 512,
        orbit_limit: None,
    };
    let engine = ClassificationEngine::new();
    let (from_disk_leg, completed) = engine
        .sweep_resumable_bitsliced(
            &universe,
            LaneWidth::W64,
            SweepSnapshot::load(&path).expect("snapshot still loads"),
            |r| family.blocks_in(r, 64),
            |mask| family.problem_at(mask),
            |mask| family.canonical_key_of(mask),
            &final_ckpt,
        )
        .expect("resumed sweep");
    assert!(completed);
    assert_equivalent(&from_disk_leg, &reference);
    let final_on_disk = SweepSnapshot::load(&path).expect("final snapshot loads");
    assert!(final_on_disk.cursor.is_complete());
    assert_eq!(final_on_disk.outcome, reference.outcome);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn u64_checkpoints_resume_at_any_lane_width() {
    // Backward compatibility with PR 7-format snapshots: the snapshot records
    // only the engine kind and a mask cursor — never a lane width — so a
    // campaign checkpointed by a 64-lane build must resume under any wide
    // width. Lane statistics legitimately differ (block packing changes with
    // the width), but the orbit and whole-universe histograms and the memo
    // must converge to the uninterrupted run's exactly.
    let family = CanonicalFamily::new(2, 3);
    let (reference, completed) = step(&family, fresh(&family, EngineKind::Bitsliced, 2), None);
    assert!(completed);

    for width in [LaneWidth::W128, LaneWidth::W256, LaneWidth::W512] {
        // First leg at 64 lanes, interrupted mid-universe.
        let (checkpoint, completed) = step(
            &family,
            fresh(&family, EngineKind::Bitsliced, 2),
            Some(9000),
        );
        assert!(!completed, "the orbit budget must interrupt the campaign");

        // Round-trip the checkpoint through the on-disk format, exactly as a
        // restarted process would see it.
        let dir = std::env::temp_dir().join(format!(
            "rtlcl-widen-{}-{}",
            std::process::id(),
            width.lanes()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("u64-leg.bin");
        checkpoint.save(&path).expect("snapshot saved");
        let loaded = SweepSnapshot::load(&path).expect("PR 7-format snapshot loads");
        std::fs::remove_dir_all(&dir).ok();

        // Remaining legs at the wide width.
        let (finished, completed) = step_at_width(&family, loaded, None, width);
        assert!(completed);
        assert_eq!(
            finished.outcome.orbits,
            reference.outcome.orbits,
            "orbit histogram after widening to {} lanes",
            width.lanes()
        );
        assert_eq!(
            finished.outcome.problems,
            reference.outcome.problems,
            "universe histogram after widening to {} lanes",
            width.lanes()
        );
        assert_eq!(sorted_memo(&finished), sorted_memo(&reference));
        assert!(finished.cursor.is_complete());
    }
}

#[test]
fn warm_boot_reproduces_the_histogram_with_zero_new_decisions() {
    let family = CanonicalFamily::new(3, 2);
    let (reference, _) = step(&family, fresh(&family, EngineKind::Bitsliced, 2), None);

    // Re-sweep from scratch, but booted with the finished campaign's memo.
    let mut warm_state = fresh(&family, EngineKind::Bitsliced, 2);
    warm_state.memo = reference.memo.clone();
    let engine = ClassificationEngine::new();
    let universe = family.sliced_universe();
    let (warm, completed) = engine
        .sweep_resumable_bitsliced(
            &universe,
            LaneWidth::W64,
            warm_state,
            |r| family.blocks_in(r, 64),
            |mask| family.problem_at(mask),
            |mask| family.canonical_key_of(mask),
            &SweepCheckpoint::default(),
        )
        .expect("warm sweep");
    assert!(completed);
    assert_eq!(warm.outcome.orbits, reference.outcome.orbits);
    assert_eq!(warm.outcome.problems, reference.outcome.problems);
    // Every orbit was answered from the imported memo.
    assert_eq!(engine.stats().cache_misses, 0);
    assert_eq!(
        engine.stats().cache_hits as u64,
        reference.outcome.orbits.total()
    );
    assert_eq!(sorted_memo(&warm), sorted_memo(&reference));
}

/// Satellite of the daemon's crash-safety story: a snapshot cut off at ANY
/// byte boundary — the disk state a SIGKILL mid-write could leave behind if
/// the atomic rename ever regressed — must come back as a clean
/// [`SnapshotError`], never a panic and never a misparsed `Ok`.
#[test]
fn loading_a_snapshot_truncated_at_every_byte_is_a_clean_error() {
    let dir = std::env::temp_dir().join(format!("rtlcl-truncate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("truncated.bin");

    // A real mid-campaign snapshot with a non-trivial memo and histograms.
    let family = CanonicalFamily::new(2, 2);
    let (snap, _) = step(&family, fresh(&family, EngineKind::Bitsliced, 2), None);
    assert!(!snap.memo.is_empty());
    snap.save(&path).expect("snapshot saved");
    let bytes = std::fs::read(&path).expect("snapshot read");
    assert!(SweepSnapshot::load(&path).is_ok(), "untruncated file loads");

    for len in 0..bytes.len() {
        std::fs::write(&path, &bytes[..len]).expect("truncated snapshot written");
        // A panic inside load() fails the test through the unwind itself; the
        // match nails the contract that no prefix parses as a valid snapshot.
        match SweepSnapshot::load(&path) {
            Ok(_) => panic!(
                "a {len}-byte prefix of a {}-byte snapshot parsed as valid",
                bytes.len()
            ),
            Err(
                SnapshotError::Truncated
                | SnapshotError::ChecksumMismatch
                | SnapshotError::BadMagic
                | SnapshotError::Malformed(_),
            ) => {}
            Err(other) => panic!("truncation at byte {len} surfaced as {other:?}"),
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// The `--resume` / daemon-boot quarantine contract: damage that the digest
/// catches moves the file to `<path>.corrupt` and reports it; a file that was
/// never one of our snapshots is left exactly where it is.
#[test]
fn quarantine_moves_damaged_snapshots_and_refuses_foreign_files() {
    let dir = std::env::temp_dir().join(format!("rtlcl-quarantine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("ck.bin");
    let quarantined_path = dir.join("ck.bin.corrupt");

    let family = CanonicalFamily::new(2, 2);
    let (snap, _) = step(&family, fresh(&family, EngineKind::Scalar, 2), None);
    snap.save(&path).expect("snapshot saved");
    let good = std::fs::read(&path).expect("snapshot read");

    // Flip a byte past the header: digest mismatch → quarantined.
    let mut damaged = good.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x01;
    std::fs::write(&path, &damaged).expect("damaged snapshot written");
    match load_or_quarantine(&path).expect("quarantine path succeeds") {
        LoadOutcome::Quarantined { to, error } => {
            assert_eq!(to, quarantined_path);
            assert!(matches!(error, SnapshotError::ChecksumMismatch));
        }
        LoadOutcome::Loaded(_) => panic!("damaged snapshot must not load"),
    }
    assert!(
        !path.exists(),
        "the damaged file must have been moved aside"
    );
    assert_eq!(
        std::fs::read(&quarantined_path).expect("quarantined bytes readable"),
        damaged,
        "quarantine preserves the damaged bytes for post-mortem"
    );

    // A foreign file at the path: hard error, file untouched.
    std::fs::write(&path, b"this was never a snapshot").expect("foreign file written");
    assert!(matches!(
        load_or_quarantine(&path),
        Err(SnapshotError::BadMagic)
    ));
    assert!(path.exists(), "a foreign file must not be renamed");

    // An intact snapshot at the path: loads, nothing moves.
    std::fs::write(&path, &good).expect("good snapshot restored");
    match load_or_quarantine(&path).expect("good snapshot loads") {
        LoadOutcome::Loaded(loaded) => assert_eq!(loaded.outcome, snap.outcome),
        LoadOutcome::Quarantined { .. } => panic!("an intact snapshot must not be quarantined"),
    }
    assert!(path.exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_checkpoint_is_rejected_not_resumed() {
    let dir = std::env::temp_dir().join(format!("rtlcl-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("ck.bin");

    let family = CanonicalFamily::new(2, 2);
    let (snap, _) = step(&family, fresh(&family, EngineKind::Scalar, 2), None);
    snap.save(&path).expect("snapshot saved");

    let mut bytes = std::fs::read(&path).expect("snapshot read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("corrupted snapshot written");
    match SweepSnapshot::load(&path) {
        Err(SnapshotError::ChecksumMismatch) => {}
        other => panic!("corrupted snapshot must fail the digest, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir).ok();
}
