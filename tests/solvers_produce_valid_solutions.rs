//! Cross-crate integration test: for every solvable catalog problem, the unified
//! solver produces a labeling that the independent checker accepts, on several tree
//! shapes and identifier assignments (the paper's robustness claims: the same
//! complexity in LOCAL/CONGEST, deterministic/randomized).

use rooted_tree_lcl::core::classify;
use rooted_tree_lcl::prelude::*;
use rooted_tree_lcl::problems::catalog;
use rooted_tree_lcl::trees::generators;

#[test]
fn every_solvable_catalog_problem_is_solved_on_random_trees() {
    for entry in catalog() {
        let report = classify(&entry.problem);
        if !report.complexity.is_solvable() {
            continue;
        }
        let delta = entry.problem.delta();
        let tree = generators::random_full(delta, 301, 13);
        let outcome = solve(
            &entry.problem,
            &report,
            &tree,
            IdAssignment::random_permutation(&tree, 3),
        )
        .unwrap_or_else(|e| panic!("{}: solver failed: {e}", entry.name));
        outcome
            .labeling
            .verify(&tree, &entry.problem)
            .unwrap_or_else(|e| panic!("{}: invalid solution: {e}", entry.name));
    }
}

#[test]
fn solutions_are_valid_for_different_id_assignments() {
    // Randomness / identifier robustness: sequential, permuted, and sparse random
    // identifiers all lead to valid solutions with the same round accounting shape.
    let problem = rooted_tree_lcl::problems::coloring::three_coloring_binary();
    let report = classify(&problem);
    let tree = generators::random_full(2, 501, 5);
    let mut totals = Vec::new();
    for ids in [
        IdAssignment::sequential(&tree),
        IdAssignment::random_permutation(&tree, 1),
        IdAssignment::random_sparse(&tree, 2),
    ] {
        let outcome = solve(&problem, &report, &tree, ids).unwrap();
        outcome.labeling.verify(&tree, &problem).unwrap();
        totals.push(outcome.rounds.total());
    }
    let min = totals.iter().min().unwrap();
    let max = totals.iter().max().unwrap();
    assert!(
        max - min <= 3,
        "round counts {totals:?} diverge across id assignments"
    );
}

#[test]
fn solvers_handle_extreme_tree_shapes() {
    let problem = rooted_tree_lcl::problems::coloring::branch_two_coloring();
    let report = classify(&problem);
    for tree in [
        generators::balanced(2, 11),
        generators::hairy_path(2, 500),
        generators::random_skewed(2, 1001, 0.95, 9),
        RootedTree::singleton(),
    ] {
        let ids = IdAssignment::sequential(&tree);
        let outcome = solve(&problem, &report, &tree, ids).unwrap();
        outcome.labeling.verify(&tree, &problem).unwrap();
    }
}

#[test]
fn lower_bound_trees_are_also_valid_inputs() {
    // The Section 5.4 trees are ordinary rooted trees (not full δ-ary everywhere);
    // solvers must still label them correctly since irregular nodes are
    // unconstrained.
    use rooted_tree_lcl::trees::lower_bound;
    let problem = rooted_tree_lcl::problems::coloring::three_coloring_binary();
    let report = classify(&problem);
    let bipolar = lower_bound::t_x_k(2, 8, 2);
    let tree = bipolar.tree;
    let outcome = solve(&problem, &report, &tree, IdAssignment::sequential(&tree)).unwrap();
    outcome.labeling.verify(&tree, &problem).unwrap();
}
