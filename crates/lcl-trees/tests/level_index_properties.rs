//! Seeded property tests for the [`LevelIndex`]: across the random /
//! balanced / hairy-path generators, the level slices must partition `0..n`
//! in depth order, and the BFS order, depths, and subtree aggregates must
//! match the arena traversals bit-for-bit per seed.

use lcl_trees::{generators, FlatTree, LevelIndex, RootedTree};

/// One full property check of `flat`'s level index against its arena twin.
fn check_index(arena: &RootedTree, flat: &FlatTree, context: &str) {
    let idx = flat.level_index();
    let n = flat.len();
    assert_eq!(idx.len(), n, "{context}");

    // Bit-for-bit agreement with the arena traversals.
    let bfs: Vec<u32> = arena.bfs_order().iter().map(|v| v.0).collect();
    assert_eq!(idx.bfs_order(), bfs.as_slice(), "{context}: bfs order");
    let depths: Vec<u32> = arena.depths().iter().map(|&d| d as u32).collect();
    assert_eq!(idx.depths(), depths.as_slice(), "{context}: depths");
    let sizes: Vec<u32> = arena.subtree_sizes().iter().map(|&s| s as u32).collect();
    assert_eq!(idx.subtree_sizes(), sizes.as_slice(), "{context}: sizes");
    let heights: Vec<u32> = arena.subtree_heights().iter().map(|&h| h as u32).collect();
    assert_eq!(
        idx.subtree_heights(),
        heights.as_slice(),
        "{context}: heights"
    );
    assert_eq!(idx.height(), arena.height(), "{context}: height");
    assert_eq!(idx.num_levels(), arena.height() + 1, "{context}");

    // The level slices partition 0..n: every position appears exactly once,
    // in depth order, and every node of depth d sits in slice d.
    let mut covered = 0usize;
    let mut seen = vec![false; n];
    for d in 0..idx.num_levels() {
        let range = idx.level_range(d);
        assert_eq!(range.start, covered, "{context}: level {d} not contiguous");
        assert!(!range.is_empty(), "{context}: level {d} empty");
        for &v in idx.level(d) {
            assert!(!seen[v as usize], "{context}: node {v} in two levels");
            seen[v as usize] = true;
            assert_eq!(idx.depths()[v as usize] as usize, d, "{context}");
        }
        covered = range.end;
    }
    assert_eq!(covered, n, "{context}: levels must cover every position");
    assert!(seen.into_iter().all(|s| s), "{context}: node missing");

    // The BFS-view CSR invariant: monotone child offsets whose ranges list
    // exactly the CSR children, with consistent parent positions.
    let order = idx.bfs_order();
    for pos in 0..n {
        let children: Vec<u32> = idx.children_pos(pos).map(|q| order[q]).collect();
        assert_eq!(
            children.as_slice(),
            flat.children(order[pos]),
            "{context}: children of position {pos}"
        );
        for q in idx.children_pos(pos) {
            assert_eq!(idx.parent_positions()[q] as usize, pos, "{context}");
        }
    }
    assert_eq!(idx.parent_positions()[0], LevelIndex::NO_POS, "{context}");
}

#[test]
fn random_full_trees_index_correctly_per_seed() {
    for delta in [1usize, 2, 3] {
        for seed in 0..6 {
            let arena = generators::random_full(delta, 301, seed);
            let flat = FlatTree::from_tree(&arena);
            // The streaming generator builds the identical tree, so its index
            // is the same object.
            assert_eq!(flat, FlatTree::random_full(delta, 301, seed));
            check_index(&arena, &flat, &format!("random δ={delta} seed={seed}"));
        }
    }
}

#[test]
fn balanced_trees_index_correctly() {
    for (delta, depth) in [(1usize, 7usize), (2, 6), (3, 4)] {
        let arena = generators::balanced(delta, depth);
        let flat = FlatTree::balanced(delta, depth);
        check_index(&arena, &flat, &format!("balanced δ={delta} depth={depth}"));
        // A balanced tree's level d holds exactly delta^d nodes.
        let idx = flat.level_index();
        let mut expected = 1usize;
        for d in 0..=depth {
            assert_eq!(idx.level(d).len(), expected);
            expected *= delta;
        }
    }
}

#[test]
fn hairy_paths_index_correctly() {
    for (delta, spine) in [(1usize, 9usize), (2, 40), (3, 25)] {
        let arena = generators::hairy_path(delta, spine);
        let flat = FlatTree::hairy_path(delta, spine);
        check_index(&arena, &flat, &format!("hairy δ={delta} spine={spine}"));
        // Every spine level below the root holds δ nodes (one spine
        // continuation plus δ−1 leaves), except the deepest.
        let idx = flat.level_index();
        assert_eq!(idx.height(), spine);
        for d in 1..spine {
            assert_eq!(idx.level(d).len(), delta);
        }
    }
}

#[test]
fn skewed_trees_index_correctly_per_seed() {
    for seed in 0..4 {
        let arena = generators::random_skewed(2, 401, 0.8, seed);
        let flat = FlatTree::from_tree(&arena);
        check_index(&arena, &flat, &format!("skewed seed={seed}"));
    }
}
