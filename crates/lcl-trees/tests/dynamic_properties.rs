//! Property tests for the mutable [`DynamicTree`] layer: edit scripts are
//! replayed against a naive grow-only arena model and the two trees must stay
//! ordered-isomorphic after every batch; the incrementally repaired
//! [`LevelIndex`] must satisfy the BFS invariants a fresh build guarantees;
//! and detaching a complete subtree then re-attaching one of the same depth
//! is a shape identity.

use lcl_trees::{DynamicTree, EditScriptGen, FlatTree, JournalOp, TreeEdit};

/// A deliberately naive ordered-tree model with stable, never-reused ids:
/// correctness baseline for the compacting dynamic tree.
struct Model {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl Model {
    fn from_flat(tree: &FlatTree) -> Self {
        let n = tree.len();
        let mut model = Model {
            parent: vec![None; n],
            children: vec![Vec::new(); n],
        };
        for v in 0..n as u32 {
            for &c in tree.children(v) {
                model.parent[c as usize] = Some(v as usize);
                model.children[v as usize].push(c as usize);
            }
        }
        model
    }

    fn add(&mut self, parent: usize) -> usize {
        let id = self.parent.len();
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent].push(id);
        id
    }

    /// Applies the edit to the model, mirroring the dynamic tree's id-growth
    /// order (level by level, parents in frontier order) so the journal's
    /// `Grown` ranges line up with `map` extensions.
    fn apply(&mut self, edit: TreeEdit, map: &[usize], delta: usize) {
        match edit {
            TreeEdit::Attach { leaf, depth } => {
                let mut frontier = vec![map[leaf as usize]];
                for _ in 0..depth {
                    let mut next = Vec::new();
                    for &p in &frontier {
                        for _ in 0..delta {
                            next.push(self.add(p));
                        }
                    }
                    frontier = next;
                }
            }
            TreeEdit::Detach { node } => {
                // Stable ids: just cut the child lists; orphaned descendants
                // become unreachable.
                let mut stack = std::mem::take(&mut self.children[map[node as usize]]);
                while let Some(v) = stack.pop() {
                    self.parent[v] = None;
                    stack.append(&mut self.children[v]);
                }
            }
            TreeEdit::Relabel { .. } => {}
        }
    }
}

/// Replays the journal suffix onto the dyn-id → model-id map. `Grown` entries
/// map to the model ids created by the matching `Model::apply` call, which
/// appends in the same order.
fn replay_journal(map: &mut Vec<usize>, journal: &[JournalOp], model_len_before: usize) {
    let mut next_model = model_len_before;
    for &op in journal {
        match op {
            JournalOp::Grown { first, count } => {
                assert_eq!(first as usize, map.len(), "growth is append-only");
                for _ in 0..count {
                    map.push(next_model);
                    next_model += 1;
                }
            }
            JournalOp::Remapped { from, to } => map[to as usize] = map[from as usize],
            JournalOp::Truncated { new_len } => map.truncate(new_len as usize),
        }
    }
}

/// Walks both trees top-down in lockstep and asserts ordered isomorphism,
/// including that the id map agrees with the pairing.
fn assert_ordered_isomorphic(dt: &DynamicTree, model: &Model, map: &[usize]) {
    assert_eq!(map.len(), dt.len());
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((0u32, map[0]));
    let mut visited = 0usize;
    while let Some((d, m)) = queue.pop_front() {
        visited += 1;
        assert_eq!(map[d as usize], m, "id map disagrees with the structure");
        let dc = dt.children(d);
        let mc = &model.children[m];
        assert_eq!(dc.len(), mc.len(), "child counts differ at node {d}");
        for (&a, &b) in dc.iter().zip(mc) {
            queue.push_back((a, b));
        }
    }
    assert_eq!(visited, dt.len(), "dynamic tree has unreachable nodes");
}

/// Checks the BFS invariants of the (incrementally repaired) level index.
fn assert_index_invariants(dt: &DynamicTree) {
    let idx = dt.index();
    let n = dt.len();
    assert_eq!(idx.len(), n);
    assert_eq!(
        idx.subtree_sizes()[0] as usize,
        n,
        "root subtree is the tree"
    );
    // BFS contiguity: depths are non-decreasing along the order, and each
    // level slice contains exactly the nodes of that depth.
    let order = idx.bfs_order();
    let depths = idx.depths();
    for w in order.windows(2) {
        assert!(depths[w[0] as usize] <= depths[w[1] as usize]);
    }
    for d in 0..idx.num_levels() {
        for &v in idx.level(d) {
            assert_eq!(depths[v as usize] as usize, d);
        }
    }
    // Aggregates agree with direct recomputation over children.
    for v in 0..n as u32 {
        let size: u32 = 1 + dt
            .children(v)
            .iter()
            .map(|&c| idx.subtree_sizes()[c as usize])
            .sum::<u32>();
        assert_eq!(idx.subtree_sizes()[v as usize], size);
        let height = dt
            .children(v)
            .iter()
            .map(|&c| idx.subtree_heights()[c as usize] + 1)
            .max()
            .unwrap_or(0);
        assert_eq!(idx.subtree_heights()[v as usize], height);
    }
}

#[test]
fn edit_scripts_stay_isomorphic_to_the_arena_model() {
    for (delta, seed) in [(2usize, 11u64), (2, 12), (3, 13)] {
        let flat = FlatTree::random_full(delta, 301, seed);
        let mut model = Model::from_flat(&flat);
        let mut map: Vec<usize> = (0..flat.len()).collect();
        let mut dt = DynamicTree::new(flat, delta);
        let mut gen = EditScriptGen::new(seed ^ 0x9e37, 301);
        for _ in 0..8 {
            let mut edits = Vec::new();
            for _ in 0..16 {
                let edit = gen.next_edit(&dt);
                let model_len = model.parent.len();
                let journal_len = dt.journal().len();
                dt.apply_edit(edit);
                model.apply(edit, &map, delta);
                replay_journal(&mut map, &dt.journal()[journal_len..], model_len);
                edits.push(edit);
            }
            dt.sync();
            dt.validate().unwrap();
            dt.clear_journal();
            assert_ordered_isomorphic(&dt, &model, &map);
            assert_index_invariants(&dt);
        }
    }
}

#[test]
fn detach_then_attach_same_depth_is_a_shape_identity() {
    let flat = FlatTree::random_full(2, 255, 21);
    let mut dt = DynamicTree::new(flat, 2);
    let reference = dt.to_rooted();
    // Pick a node heading a complete subtree (detach + attach restores it).
    let v = (0..dt.len() as u32)
        .find(|&v| {
            let h = dt.subtree_height(v);
            (1..=4).contains(&h)
                && dt.subtree_size(v) as usize
                    == lcl_trees::generators::complete_tree_size(2, h as usize)
        })
        .expect("random full trees contain small complete subtrees");
    let depth = dt.subtree_height(v) as usize;
    dt.detach_subtree(v);
    // The site may have been renamed by compaction.
    let v_now = *dt.detach_sites().last().unwrap();
    dt.attach_subtree(v_now, depth);
    dt.sync();
    dt.validate().unwrap();

    let a = reference;
    let b = dt.to_rooted();
    assert_eq!(a.len(), b.len());
    let fa = FlatTree::from_tree(&a);
    let fb = FlatTree::from_tree(&b);
    let da: Vec<usize> = fa
        .level_index()
        .bfs_order()
        .iter()
        .map(|&v| fa.children(v).len())
        .collect();
    let db: Vec<usize> = fb
        .level_index()
        .bfs_order()
        .iter()
        .map(|&v| fb.children(v).len())
        .collect();
    assert_eq!(da, db, "detach-then-attach must restore the BFS shape");
}

#[test]
fn scripts_with_heavy_churn_cross_the_full_rebuild_threshold() {
    // Small tree + large batches: cumulative churn regularly exceeds n/2,
    // exercising the full-rebuild path of sync() alongside the incremental
    // one; validate() compares against a fresh index either way.
    let flat = FlatTree::random_full(2, 63, 31);
    let mut dt = DynamicTree::new(flat, 2);
    let mut gen = EditScriptGen::new(77, 63);
    let mut edits = Vec::new();
    for _ in 0..12 {
        gen.apply_batch(&mut dt, 24, &mut edits);
        dt.sync();
        dt.validate().unwrap();
        dt.clear_journal();
        assert_index_invariants(&dt);
    }
}
