//! Allocation-counter pin for the memoized [`FlatTree::depths`]: the first
//! call computes and caches the depth array; every later call must return the
//! cached slice without touching the allocator. The same pin covers warmed
//! [`DynamicTree`] edits: once the slack rows and scratch buffers reached
//! their high-water capacity, steady-state attach/detach/sync cycles that
//! shrink back below that mark allocate nothing.
//!
//! The file contains exactly one test so no sibling test thread can allocate
//! concurrently and pollute the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use lcl_trees::{DynamicTree, FlatTree};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn memoized_depths_and_warm_edits_perform_zero_allocations() {
    let tree = FlatTree::random_full(2, 4_001, 9);
    let first = tree.depths().as_ptr();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let depths = tree.depths();
    let height = tree.height();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "a repeated FlatTree::depths()/height() call must hit the cache"
    );
    assert_eq!(depths.as_ptr(), first, "the cached slice must be stable");
    assert_eq!(height, depths.iter().copied().max().unwrap() as usize);

    // Warm a dynamic tree: one attach/detach/sync cycle grows every buffer
    // (slack rows, DFS stack, removed list, journal) to its high-water mark.
    let mut dt = DynamicTree::new(tree, 2);
    let leaf = (0..dt.len() as u32).find(|&v| dt.is_leaf(v)).unwrap();
    dt.attach_subtree(leaf, 2);
    dt.sync();
    dt.detach_subtree(leaf);
    dt.sync();
    dt.clear_journal();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    dt.attach_subtree(leaf, 2);
    dt.sync();
    dt.detach_subtree(leaf);
    dt.sync();
    dt.clear_journal();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "a warmed attach/detach/sync cycle must not touch the allocator"
    );
}
