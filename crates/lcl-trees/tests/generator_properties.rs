//! Seeded property tests for the tree generators: the balanced size formula,
//! the hairy-path shape of Definition 4.11, degree bounds of random full
//! δ-ary trees, minimality of `balanced_with_at_least`, and agreement between
//! the arena generators and their streaming `FlatTree` counterparts.
//!
//! These are loop-based property tests in the workspace's dependency-free
//! style: a `SplitMix64` seed drives every randomized case, so failures
//! reproduce exactly.

use lcl_rand::SplitMix64;
use lcl_trees::generators::{
    balanced, balanced_with_at_least, complete_tree_size, hairy_path, path, random_full,
    random_skewed,
};
use lcl_trees::FlatTree;

/// Closed form of the complete δ-ary tree size: `(δ^(d+1) − 1)/(δ − 1)` for
/// δ ≥ 2, and `d + 1` on the path.
fn closed_form_size(delta: usize, depth: usize) -> usize {
    if delta == 1 {
        depth + 1
    } else {
        (delta.pow(depth as u32 + 1) - 1) / (delta - 1)
    }
}

#[test]
fn balanced_size_formula_over_the_grid() {
    for delta in 1..=4 {
        for depth in 0..=5 {
            let t = balanced(delta, depth);
            let expected = closed_form_size(delta, depth);
            assert_eq!(t.len(), expected, "delta {delta} depth {depth}");
            assert_eq!(
                complete_tree_size(delta, depth),
                expected,
                "delta {delta} depth {depth}"
            );
            assert!(t.is_full_dary(delta));
            assert_eq!(t.leaf_count(), delta.pow(depth as u32));
            assert_eq!(t.internal_count(), expected - delta.pow(depth as u32));
            // Every leaf sits at exactly `depth`.
            let depths = t.depths();
            for leaf in t.leaves() {
                assert_eq!(depths[leaf.index()], depth);
            }
            t.validate().unwrap();
        }
    }
}

#[test]
fn hairy_path_shape_matches_definition_4_11() {
    // Definition 4.11: a directed path of spine nodes, each with exactly δ
    // children — one continuing the spine (except the last), the rest leaves.
    let mut rng = SplitMix64::seed_from_u64(411);
    for _ in 0..40 {
        let delta = 1 + rng.gen_index(4);
        let spine = 1 + rng.gen_index(20);
        let t = hairy_path(delta, spine);
        assert_eq!(t.len(), 1 + spine * delta, "delta {delta} spine {spine}");
        assert_eq!(t.internal_count(), spine);
        assert_eq!(t.leaf_count(), spine * (delta - 1) + 1);
        assert_eq!(t.height(), spine);
        assert!(t.is_full_dary(delta));
        // Walk the spine: each internal node has exactly one internal child,
        // except the deepest, whose children are all leaves.
        let mut cur = t.root();
        for step in 0..spine {
            assert_eq!(t.num_children(cur), delta, "spine step {step}");
            let internal_children: Vec<_> = t
                .children(cur)
                .iter()
                .copied()
                .filter(|&c| t.num_children(c) > 0)
                .collect();
            if step + 1 < spine {
                assert_eq!(
                    internal_children.len(),
                    1,
                    "spine must continue through exactly one child at step {step}"
                );
                cur = internal_children[0];
            } else {
                assert!(
                    internal_children.is_empty(),
                    "the last spine node must carry only leaves"
                );
            }
        }
        t.validate().unwrap();
    }
    // δ = 1 degenerates to the directed path.
    assert_eq!(
        FlatTree::from_tree(&hairy_path(1, 7)),
        FlatTree::from_tree(&path(8))
    );
}

#[test]
fn random_full_degree_bounds_over_seeds() {
    let mut rng = SplitMix64::seed_from_u64(2026);
    for _ in 0..60 {
        let delta = 1 + rng.gen_index(4);
        let min_nodes = 1 + rng.gen_index(300);
        let seed = rng.next_u64();
        let t = random_full(delta, min_nodes, seed);
        // Degree bound: every node has 0 or exactly δ children.
        for v in t.nodes() {
            let c = t.num_children(v);
            assert!(
                c == 0 || c == delta,
                "node degree {c} violates full δ-ary with delta {delta}"
            );
        }
        // Size bound: each expansion adds δ nodes, so n ≡ 1 (mod δ) and the
        // generator stops at the first size ≥ min_nodes.
        assert!(t.len() >= min_nodes);
        assert!(t.len() < min_nodes + delta.max(2));
        assert_eq!((t.len() - 1) % delta, 0);
        t.validate().unwrap();
        // Determinism: the same seed regrows the identical tree.
        assert_eq!(
            FlatTree::from_tree(&random_full(delta, min_nodes, seed)),
            FlatTree::from_tree(&t)
        );
    }
}

#[test]
fn random_full_seeds_actually_vary() {
    let trees: Vec<FlatTree> = (0..6)
        .map(|seed| FlatTree::from_tree(&random_full(2, 101, seed)))
        .collect();
    assert!(
        trees.windows(2).any(|w| w[0] != w[1]),
        "six seeds produced six identical 101-node trees"
    );
}

#[test]
fn balanced_with_at_least_is_minimal() {
    let mut rng = SplitMix64::seed_from_u64(64);
    for _ in 0..60 {
        let delta = 1 + rng.gen_index(4);
        let min_nodes = 1 + rng.gen_index(500);
        let t = balanced_with_at_least(delta, min_nodes);
        let height = t.height();
        // It is the complete tree of its height, it meets the bound, and the
        // next-smaller complete tree does not.
        assert_eq!(t.len(), complete_tree_size(delta, height));
        assert!(t.len() >= min_nodes, "delta {delta} min {min_nodes}");
        if height > 0 {
            assert!(
                complete_tree_size(delta, height - 1) < min_nodes,
                "delta {delta} min {min_nodes}: depth {height} is not minimal"
            );
        }
    }
}

#[test]
fn random_skewed_respects_degree_and_size_bounds() {
    let mut rng = SplitMix64::seed_from_u64(7);
    for _ in 0..20 {
        let delta = 1 + rng.gen_index(3);
        let min_nodes = 10 + rng.gen_index(100);
        let skew = [0.0, 0.25, 0.5, 0.75, 1.0][rng.gen_index(5)];
        let t = random_skewed(delta, min_nodes, skew, rng.next_u64());
        assert!(t.is_full_dary(delta));
        assert!(t.len() >= min_nodes);
        t.validate().unwrap();
    }
}

#[test]
fn streaming_generators_agree_with_arena_generators_over_seeds() {
    let mut rng = SplitMix64::seed_from_u64(99);
    for _ in 0..25 {
        let delta = 1 + rng.gen_index(3);
        let min_nodes = 1 + rng.gen_index(200);
        let seed = rng.next_u64();
        assert_eq!(
            FlatTree::random_full(delta, min_nodes, seed),
            FlatTree::from_tree(&random_full(delta, min_nodes, seed)),
            "delta {delta} min {min_nodes} seed {seed}"
        );
        let depth = rng.gen_index(5);
        assert_eq!(
            FlatTree::balanced(delta, depth),
            FlatTree::from_tree(&balanced(delta, depth))
        );
        let spine = 1 + rng.gen_index(12);
        assert_eq!(
            FlatTree::hairy_path(delta, spine),
            FlatTree::from_tree(&hairy_path(delta, spine))
        );
    }
}
