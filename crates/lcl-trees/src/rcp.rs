//! The rake-and-compress partition `RCP(p)` of Definition 5.8.
//!
//! `RCP(p)` iteratively partitions the node set into layers `V₁, V₂, …, V_L`:
//! at each step the removed nodes are the current leaves (indegree 0, "rake") plus
//! the nodes of indegree 1 that lie in connected components of indegree-1 nodes of
//! size at least `p` ("compress", Definition 5.7). Lemma 5.9 guarantees that a
//! constant fraction of the remaining nodes is removed in every step, hence
//! `L = O(log n)`; Lemma 5.10 shows the layers can be computed in `O(log n)`
//! CONGEST rounds. The distributed version lives in `lcl-algorithms`; this module
//! provides the sequential reference implementation used by tests, the classifier's
//! solvers, and the experiment harness.

use crate::flat::FlatTree;
use crate::tree::{NodeId, RootedTree};

/// How a node was removed by `RCP(p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalKind {
    /// Removed as a leaf of the remaining graph (`leaves(G_i)`, Definition 5.6).
    Rake,
    /// Removed as part of a long path of indegree-1 nodes
    /// (`long-path-nodes(G_i, p)`, Definition 5.7).
    Compress,
}

/// The result of running `RCP(p)` on a rooted tree.
#[derive(Debug, Clone)]
pub struct RcpPartition {
    /// The parameter `p` the partition was computed with.
    pub p: usize,
    /// Layer of each node (1-based, indexed by node id).
    pub layer: Vec<usize>,
    /// How each node was removed.
    pub kind: Vec<RemovalKind>,
    /// Nodes of each layer; `layers[i]` is `V_{i+1}` of Definition 5.8.
    pub layers: Vec<Vec<NodeId>>,
}

impl RcpPartition {
    /// Number of layers `L`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer of a node (1-based).
    pub fn layer_of(&self, v: NodeId) -> usize {
        self.layer[v.index()]
    }

    /// The maximal vertical runs of compress nodes inside one layer.
    ///
    /// Each run is returned top-down (closest to the root first). During the
    /// `O(log n)` algorithm of Theorem 5.1 these are the "long paths" whose inner
    /// labels are completed with the help of a ruling set.
    pub fn compress_runs(&self, tree: &RootedTree) -> Vec<Vec<NodeId>> {
        let mut runs = Vec::new();
        for (layer_idx, nodes) in self.layers.iter().enumerate() {
            let layer_no = layer_idx + 1;
            for &v in nodes {
                if self.kind[v.index()] != RemovalKind::Compress {
                    continue;
                }
                // v starts a run iff its parent is not a compress node of the same layer.
                let parent_in_same_run = tree.parent(v).is_some_and(|p| {
                    self.layer[p.index()] == layer_no
                        && self.kind[p.index()] == RemovalKind::Compress
                });
                if parent_in_same_run {
                    continue;
                }
                let mut run = vec![v];
                let mut cur = v;
                loop {
                    let next = tree.children(cur).iter().copied().find(|&c| {
                        self.layer[c.index()] == layer_no
                            && self.kind[c.index()] == RemovalKind::Compress
                    });
                    match next {
                        Some(c) => {
                            run.push(c);
                            cur = c;
                        }
                        None => break,
                    }
                }
                runs.push(run);
            }
        }
        runs
    }
}

/// Runs `RCP(p)` (Definition 5.8) on `tree` and returns the layer partition.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn rcp_partition(tree: &RootedTree, p: usize) -> RcpPartition {
    assert!(p >= 1, "RCP parameter p must be at least 1");
    let n = tree.len();
    let mut removed = vec![false; n];
    let mut layer = vec![0usize; n];
    let mut kind = vec![RemovalKind::Rake; n];
    let mut layers = Vec::new();
    // Remaining indegree = number of children not yet removed.
    let mut indegree: Vec<usize> = tree.nodes().map(|v| tree.num_children(v)).collect();
    let mut remaining = n;
    let mut current_layer = 0usize;

    while remaining > 0 {
        current_layer += 1;
        let mut this_layer = Vec::new();

        // Rake: current leaves.
        for v in tree.nodes() {
            if !removed[v.index()] && indegree[v.index()] == 0 {
                this_layer.push(v);
                kind[v.index()] = RemovalKind::Rake;
            }
        }

        // Compress: indegree-1 nodes in components of size >= p.
        let degree_one: Vec<NodeId> = tree
            .nodes()
            .filter(|&v| !removed[v.index()] && indegree[v.index()] == 1)
            .collect();
        let in_x = {
            let mut flags = vec![false; n];
            for &v in &degree_one {
                flags[v.index()] = true;
            }
            flags
        };
        let mut visited = vec![false; n];
        for &v in &degree_one {
            if visited[v.index()] {
                continue;
            }
            // Walk to the top of this component of indegree-1 nodes.
            let mut top = v;
            while let Some(pnode) = tree.parent(top) {
                if in_x[pnode.index()] && !removed[pnode.index()] {
                    top = pnode;
                } else {
                    break;
                }
            }
            // Walk downwards collecting the component (each member has exactly one
            // remaining child, and the component is a vertical path).
            let mut component = vec![top];
            visited[top.index()] = true;
            let mut cur = top;
            loop {
                let next = tree
                    .children(cur)
                    .iter()
                    .copied()
                    .find(|&c| !removed[c.index()] && in_x[c.index()]);
                match next {
                    Some(c) if !visited[c.index()] => {
                        visited[c.index()] = true;
                        component.push(c);
                        cur = c;
                    }
                    _ => break,
                }
            }
            if component.len() >= p {
                for &u in &component {
                    this_layer.push(u);
                    kind[u.index()] = RemovalKind::Compress;
                }
            }
        }

        assert!(
            !this_layer.is_empty(),
            "RCP must remove at least one node per step on a non-empty tree"
        );

        for &v in &this_layer {
            removed[v.index()] = true;
            layer[v.index()] = current_layer;
            remaining -= 1;
        }
        for &v in &this_layer {
            if let Some(pnode) = tree.parent(v) {
                if !removed[pnode.index()] {
                    indegree[pnode.index()] -= 1;
                }
            }
        }
        layers.push(this_layer);
    }

    RcpPartition {
        p,
        layer,
        kind,
        layers,
    }
}

/// The result of running `RCP(p)` on a [`FlatTree`]: the same partition as
/// [`rcp_partition`], stored in flat CSR arrays with the compress runs recorded
/// during construction (so the O(log n) solver never re-walks the tree to find
/// them).
///
/// Unlike the arena version — which rescans *all* nodes on every layer,
/// O(n log n) total — the flat version keeps a compacted worklist of the alive
/// nodes; because each `RCP(p)` step removes at least a `1/(6p)` fraction
/// (Lemma 5.9) the total work is O(p·n) with no per-layer allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRcp {
    /// The parameter `p` the partition was computed with.
    pub p: usize,
    /// Layer of each node (1-based, indexed by node id).
    pub layer: Vec<u32>,
    /// How each node was removed, indexed by node id.
    pub kind: Vec<RemovalKind>,
    /// CSR offsets over [`Self::layer_nodes`]: layer `i` (1-based) holds the
    /// nodes `layer_nodes[layer_start[i - 1] .. layer_start[i]]`.
    layer_start: Vec<u32>,
    layer_nodes: Vec<u32>,
    /// CSR offsets over [`Self::run_nodes`], one run per entry pair.
    run_start: Vec<u32>,
    /// The compress runs, each top-down, grouped by layer.
    run_nodes: Vec<u32>,
    /// CSR offsets over runs: layer `i` owns the runs
    /// `runs_by_layer_start[i - 1] .. runs_by_layer_start[i]`.
    runs_by_layer_start: Vec<u32>,
}

impl FlatRcp {
    /// Number of layers `L`.
    pub fn num_layers(&self) -> usize {
        self.layer_start.len() - 1
    }

    /// Layer of a node (1-based).
    pub fn layer_of(&self, v: u32) -> usize {
        self.layer[v as usize] as usize
    }

    /// The nodes of layer `i` (1-based), rakes first (ascending id), then the
    /// compress components in discovery order, each top-down — the same order
    /// as the arena partition's `layers[i - 1]`.
    pub fn nodes_of_layer(&self, i: usize) -> &[u32] {
        let lo = self.layer_start[i - 1] as usize;
        let hi = self.layer_start[i] as usize;
        &self.layer_nodes[lo..hi]
    }

    /// The maximal vertical compress runs of layer `i` (1-based), each
    /// top-down.
    pub fn runs_of_layer(&self, i: usize) -> impl Iterator<Item = &[u32]> {
        let lo = self.runs_by_layer_start[i - 1] as usize;
        let hi = self.runs_by_layer_start[i] as usize;
        (lo..hi).map(move |r| {
            &self.run_nodes[self.run_start[r] as usize..self.run_start[r + 1] as usize]
        })
    }

    /// All compress runs across all layers, in layer order.
    pub fn runs(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.run_start.len() - 1).map(move |r| {
            &self.run_nodes[self.run_start[r] as usize..self.run_start[r + 1] as usize]
        })
    }
}

/// Runs `RCP(p)` (Definition 5.8) on a [`FlatTree`] — the CSR counterpart of
/// [`rcp_partition`], producing the identical partition (same layer and kind
/// per node, same per-layer node order). See [`FlatRcp`] for the complexity
/// difference.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn rcp_partition_flat(tree: &FlatTree, p: usize) -> FlatRcp {
    assert!(p >= 1, "RCP parameter p must be at least 1");
    let n = tree.len();
    let mut removed = vec![false; n];
    let mut layer = vec![0u32; n];
    let mut kind = vec![RemovalKind::Rake; n];
    let mut indegree: Vec<u32> = (0..n as u32).map(|v| tree.num_children(v) as u32).collect();
    // Per-layer visit stamps for component walks (epoch = layer number, so the
    // array is never cleared).
    let mut visited = vec![0u32; n];
    let mut alive: Vec<u32> = (0..n as u32).collect();
    let mut component: Vec<u32> = Vec::new();

    let mut layer_nodes: Vec<u32> = Vec::with_capacity(n);
    let mut layer_start: Vec<u32> = vec![0];
    let mut run_nodes: Vec<u32> = Vec::new();
    let mut run_start: Vec<u32> = vec![0];
    let mut runs_by_layer_start: Vec<u32> = vec![0];

    let mut current_layer = 0u32;
    while !alive.is_empty() {
        current_layer += 1;
        let layer_begin = layer_nodes.len();

        // Rake: current leaves, in ascending id order (`alive` stays sorted).
        for &v in &alive {
            if indegree[v as usize] == 0 {
                layer_nodes.push(v);
                kind[v as usize] = RemovalKind::Rake;
                layer[v as usize] = current_layer;
            }
        }

        // Compress: indegree-1 components (vertical paths) of size >= p.
        for &v in &alive {
            if indegree[v as usize] != 1 || visited[v as usize] == current_layer {
                continue;
            }
            // Walk to the top of the component.
            let mut top = v;
            while let Some(pp) = tree.parent(top) {
                if !removed[pp as usize] && indegree[pp as usize] == 1 {
                    top = pp;
                } else {
                    break;
                }
            }
            // Walk down, stamping and collecting the component.
            component.clear();
            let mut cur = top;
            loop {
                visited[cur as usize] = current_layer;
                component.push(cur);
                let next = tree
                    .children(cur)
                    .iter()
                    .copied()
                    .find(|&c| !removed[c as usize] && indegree[c as usize] == 1);
                match next {
                    Some(c) if visited[c as usize] != current_layer => cur = c,
                    _ => break,
                }
            }
            if component.len() >= p {
                for &u in &component {
                    layer_nodes.push(u);
                    kind[u as usize] = RemovalKind::Compress;
                    layer[u as usize] = current_layer;
                }
                run_nodes.extend_from_slice(&component);
                run_start.push(run_nodes.len() as u32);
            }
        }

        assert!(
            layer_nodes.len() > layer_begin,
            "RCP must remove at least one node per step on a non-empty tree"
        );

        for &v in &layer_nodes[layer_begin..] {
            removed[v as usize] = true;
        }
        for &v in &layer_nodes[layer_begin..] {
            if let Some(pp) = tree.parent(v) {
                if !removed[pp as usize] {
                    indegree[pp as usize] -= 1;
                }
            }
        }
        alive.retain(|&v| !removed[v as usize]);
        layer_start.push(layer_nodes.len() as u32);
        runs_by_layer_start.push(run_start.len() as u32 - 1);
    }

    FlatRcp {
        p,
        layer,
        kind,
        layer_start,
        layer_nodes,
        run_start,
        run_nodes,
        runs_by_layer_start,
    }
}

/// Checks the defining properties of an `RCP(p)` partition. Used by tests and by
/// the property-based suite; returns a description of the first violation found.
pub fn validate_partition(tree: &RootedTree, part: &RcpPartition) -> Result<(), String> {
    let n = tree.len();
    if part.layer.len() != n || part.kind.len() != n {
        return Err("partition arrays have wrong length".into());
    }
    // Every node appears in exactly one layer, consistent with `layer`.
    let mut seen = vec![false; n];
    for (i, nodes) in part.layers.iter().enumerate() {
        for &v in nodes {
            if seen[v.index()] {
                return Err(format!("{v} appears in two layers"));
            }
            seen[v.index()] = true;
            if part.layer[v.index()] != i + 1 {
                return Err(format!("{v} has inconsistent layer number"));
            }
        }
    }
    if seen.iter().any(|&s| !s) {
        return Err("some node is missing from the partition".into());
    }
    // Replay the process and check each layer matches the definition.
    let mut removed = vec![false; n];
    for (i, nodes) in part.layers.iter().enumerate() {
        let layer_no = i + 1;
        let indegree = |v: NodeId, removed: &Vec<bool>| {
            tree.children(v)
                .iter()
                .filter(|c| !removed[c.index()])
                .count()
        };
        for v in tree.nodes() {
            if removed[v.index()] {
                continue;
            }
            let deg = indegree(v, &removed);
            let in_layer = part.layer[v.index()] == layer_no;
            if deg == 0 && !in_layer {
                return Err(format!("leaf {v} of G_{i} not removed in layer {layer_no}"));
            }
            if in_layer && deg >= 2 {
                return Err(format!("{v} removed with indegree {deg} >= 2"));
            }
            if in_layer && deg == 1 && part.kind[v.index()] != RemovalKind::Compress {
                return Err(format!("{v} with indegree 1 should be a compress node"));
            }
        }
        for &v in nodes {
            removed[v.index()] = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn singleton_has_one_layer() {
        let t = RootedTree::singleton();
        let part = rcp_partition(&t, 3);
        assert_eq!(part.num_layers(), 1);
        assert_eq!(part.layer_of(t.root()), 1);
        validate_partition(&t, &part).unwrap();
    }

    #[test]
    fn balanced_tree_layers_grow_logarithmically() {
        // A perfectly balanced tree rakes one level per step, so the number of
        // layers is exactly depth + 1.
        let t = generators::balanced(2, 6);
        let part = rcp_partition(&t, 4);
        assert_eq!(part.num_layers(), 7);
        validate_partition(&t, &part).unwrap();
    }

    #[test]
    fn path_is_compressed() {
        let t = generators::path(64);
        let part = rcp_partition(&t, 2);
        // A long path must be mostly compressed; with only rakes it would take 64
        // layers, with compression it takes O(log n).
        assert!(part.num_layers() <= 10, "layers = {}", part.num_layers());
        assert!(part.kind.contains(&RemovalKind::Compress));
        validate_partition(&t, &part).unwrap();
    }

    #[test]
    fn hairy_path_uses_both_rake_and_compress() {
        let t = generators::hairy_path(2, 100);
        let part = rcp_partition(&t, 3);
        assert!(part.num_layers() <= 20);
        assert!(part.kind.contains(&RemovalKind::Rake));
        assert!(part.kind.contains(&RemovalKind::Compress));
        validate_partition(&t, &part).unwrap();
    }

    #[test]
    fn lemma_5_9_logarithmic_layer_count() {
        // Lemma 5.9: each step removes at least a 1/(6p) fraction, so
        // L <= log_{1/(1-1/(6p))}(n) + 1. Check the bound for several shapes.
        let p = 3usize;
        let bound = |n: usize| {
            let shrink = 1.0 - 1.0 / (6.0 * p as f64);
            ((n as f64).ln() / (1.0 / shrink).ln()).ceil() as usize + 2
        };
        for seed in 0..3 {
            let t = generators::random_full(2, 2000, seed);
            let part = rcp_partition(&t, p);
            assert!(
                part.num_layers() <= bound(t.len()),
                "layers {} exceeds bound {}",
                part.num_layers(),
                bound(t.len())
            );
            validate_partition(&t, &part).unwrap();
        }
        let skinny = generators::random_skewed(2, 2000, 0.95, 7);
        let part = rcp_partition(&skinny, p);
        assert!(part.num_layers() <= bound(skinny.len()));
    }

    #[test]
    fn compress_runs_are_vertical_and_long() {
        let t = generators::hairy_path(2, 50);
        let p = 4;
        let part = rcp_partition(&t, p);
        let runs = part.compress_runs(&t);
        assert!(!runs.is_empty());
        for run in &runs {
            assert!(run.len() >= p, "run shorter than p");
            for w in run.windows(2) {
                assert_eq!(t.parent(w[1]), Some(w[0]), "run must be a vertical path");
            }
        }
        validate_partition(&t, &part).unwrap();
    }

    #[test]
    fn short_paths_are_not_compressed() {
        // With p larger than the path length, no node is ever compressed.
        let t = generators::path(5);
        let part = rcp_partition(&t, 10);
        assert!(part.kind.iter().all(|&k| k == RemovalKind::Rake));
        assert_eq!(part.num_layers(), 5);
    }

    /// Asserts that the flat partition matches the arena partition exactly:
    /// same layer/kind per node, same per-layer node order, same runs.
    fn assert_flat_matches_arena(t: &RootedTree, p: usize) {
        let arena = rcp_partition(t, p);
        let flat = rcp_partition_flat(&FlatTree::from_tree(t), p);
        assert_eq!(flat.p, arena.p);
        assert_eq!(flat.num_layers(), arena.num_layers());
        let arena_layer: Vec<u32> = arena.layer.iter().map(|&l| l as u32).collect();
        assert_eq!(flat.layer, arena_layer);
        assert_eq!(flat.kind, arena.kind);
        for (i, nodes) in arena.layers.iter().enumerate() {
            let expected: Vec<u32> = nodes.iter().map(|v| v.0).collect();
            assert_eq!(flat.nodes_of_layer(i + 1), expected.as_slice(), "layer {i}");
        }
        let arena_runs: Vec<Vec<u32>> = arena
            .compress_runs(t)
            .into_iter()
            .map(|run| run.into_iter().map(|v| v.0).collect())
            .collect();
        let flat_runs: Vec<Vec<u32>> = flat.runs().map(|r| r.to_vec()).collect();
        assert_eq!(flat_runs, arena_runs);
        // Per-layer run grouping is consistent with the global run list.
        let regrouped: Vec<Vec<u32>> = (1..=flat.num_layers())
            .flat_map(|i| flat.runs_of_layer(i).map(|r| r.to_vec()))
            .collect();
        assert_eq!(regrouped, flat_runs);
    }

    #[test]
    fn flat_partition_matches_arena_on_all_shapes() {
        for seed in 0..3 {
            assert_flat_matches_arena(&generators::random_full(2, 501, seed), 3);
        }
        assert_flat_matches_arena(&generators::balanced(2, 6), 4);
        assert_flat_matches_arena(&generators::hairy_path(2, 100), 3);
        assert_flat_matches_arena(&generators::path(64), 2);
        assert_flat_matches_arena(&generators::random_skewed(2, 801, 0.9, 5), 4);
        assert_flat_matches_arena(&generators::random_full(3, 301, 7), 5);
        assert_flat_matches_arena(&RootedTree::singleton(), 3);
    }
}
