//! The rake-and-compress partition `RCP(p)` of Definition 5.8.
//!
//! `RCP(p)` iteratively partitions the node set into layers `V₁, V₂, …, V_L`:
//! at each step the removed nodes are the current leaves (indegree 0, "rake") plus
//! the nodes of indegree 1 that lie in connected components of indegree-1 nodes of
//! size at least `p` ("compress", Definition 5.7). Lemma 5.9 guarantees that a
//! constant fraction of the remaining nodes is removed in every step, hence
//! `L = O(log n)`; Lemma 5.10 shows the layers can be computed in `O(log n)`
//! CONGEST rounds. The distributed version lives in `lcl-algorithms`; this module
//! provides the sequential reference implementation used by tests, the classifier's
//! solvers, and the experiment harness.

use crate::tree::{NodeId, RootedTree};

/// How a node was removed by `RCP(p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalKind {
    /// Removed as a leaf of the remaining graph (`leaves(G_i)`, Definition 5.6).
    Rake,
    /// Removed as part of a long path of indegree-1 nodes
    /// (`long-path-nodes(G_i, p)`, Definition 5.7).
    Compress,
}

/// The result of running `RCP(p)` on a rooted tree.
#[derive(Debug, Clone)]
pub struct RcpPartition {
    /// The parameter `p` the partition was computed with.
    pub p: usize,
    /// Layer of each node (1-based, indexed by node id).
    pub layer: Vec<usize>,
    /// How each node was removed.
    pub kind: Vec<RemovalKind>,
    /// Nodes of each layer; `layers[i]` is `V_{i+1}` of Definition 5.8.
    pub layers: Vec<Vec<NodeId>>,
}

impl RcpPartition {
    /// Number of layers `L`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer of a node (1-based).
    pub fn layer_of(&self, v: NodeId) -> usize {
        self.layer[v.index()]
    }

    /// The maximal vertical runs of compress nodes inside one layer.
    ///
    /// Each run is returned top-down (closest to the root first). During the
    /// `O(log n)` algorithm of Theorem 5.1 these are the "long paths" whose inner
    /// labels are completed with the help of a ruling set.
    pub fn compress_runs(&self, tree: &RootedTree) -> Vec<Vec<NodeId>> {
        let mut runs = Vec::new();
        for (layer_idx, nodes) in self.layers.iter().enumerate() {
            let layer_no = layer_idx + 1;
            for &v in nodes {
                if self.kind[v.index()] != RemovalKind::Compress {
                    continue;
                }
                // v starts a run iff its parent is not a compress node of the same layer.
                let parent_in_same_run = tree.parent(v).is_some_and(|p| {
                    self.layer[p.index()] == layer_no
                        && self.kind[p.index()] == RemovalKind::Compress
                });
                if parent_in_same_run {
                    continue;
                }
                let mut run = vec![v];
                let mut cur = v;
                loop {
                    let next = tree.children(cur).iter().copied().find(|&c| {
                        self.layer[c.index()] == layer_no
                            && self.kind[c.index()] == RemovalKind::Compress
                    });
                    match next {
                        Some(c) => {
                            run.push(c);
                            cur = c;
                        }
                        None => break,
                    }
                }
                runs.push(run);
            }
        }
        runs
    }
}

/// Runs `RCP(p)` (Definition 5.8) on `tree` and returns the layer partition.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn rcp_partition(tree: &RootedTree, p: usize) -> RcpPartition {
    assert!(p >= 1, "RCP parameter p must be at least 1");
    let n = tree.len();
    let mut removed = vec![false; n];
    let mut layer = vec![0usize; n];
    let mut kind = vec![RemovalKind::Rake; n];
    let mut layers = Vec::new();
    // Remaining indegree = number of children not yet removed.
    let mut indegree: Vec<usize> = tree.nodes().map(|v| tree.num_children(v)).collect();
    let mut remaining = n;
    let mut current_layer = 0usize;

    while remaining > 0 {
        current_layer += 1;
        let mut this_layer = Vec::new();

        // Rake: current leaves.
        for v in tree.nodes() {
            if !removed[v.index()] && indegree[v.index()] == 0 {
                this_layer.push(v);
                kind[v.index()] = RemovalKind::Rake;
            }
        }

        // Compress: indegree-1 nodes in components of size >= p.
        let degree_one: Vec<NodeId> = tree
            .nodes()
            .filter(|&v| !removed[v.index()] && indegree[v.index()] == 1)
            .collect();
        let in_x = {
            let mut flags = vec![false; n];
            for &v in &degree_one {
                flags[v.index()] = true;
            }
            flags
        };
        let mut visited = vec![false; n];
        for &v in &degree_one {
            if visited[v.index()] {
                continue;
            }
            // Walk to the top of this component of indegree-1 nodes.
            let mut top = v;
            while let Some(pnode) = tree.parent(top) {
                if in_x[pnode.index()] && !removed[pnode.index()] {
                    top = pnode;
                } else {
                    break;
                }
            }
            // Walk downwards collecting the component (each member has exactly one
            // remaining child, and the component is a vertical path).
            let mut component = vec![top];
            visited[top.index()] = true;
            let mut cur = top;
            loop {
                let next = tree
                    .children(cur)
                    .iter()
                    .copied()
                    .find(|&c| !removed[c.index()] && in_x[c.index()]);
                match next {
                    Some(c) if !visited[c.index()] => {
                        visited[c.index()] = true;
                        component.push(c);
                        cur = c;
                    }
                    _ => break,
                }
            }
            if component.len() >= p {
                for &u in &component {
                    this_layer.push(u);
                    kind[u.index()] = RemovalKind::Compress;
                }
            }
        }

        assert!(
            !this_layer.is_empty(),
            "RCP must remove at least one node per step on a non-empty tree"
        );

        for &v in &this_layer {
            removed[v.index()] = true;
            layer[v.index()] = current_layer;
            remaining -= 1;
        }
        for &v in &this_layer {
            if let Some(pnode) = tree.parent(v) {
                if !removed[pnode.index()] {
                    indegree[pnode.index()] -= 1;
                }
            }
        }
        layers.push(this_layer);
    }

    RcpPartition {
        p,
        layer,
        kind,
        layers,
    }
}

/// Checks the defining properties of an `RCP(p)` partition. Used by tests and by
/// the property-based suite; returns a description of the first violation found.
pub fn validate_partition(tree: &RootedTree, part: &RcpPartition) -> Result<(), String> {
    let n = tree.len();
    if part.layer.len() != n || part.kind.len() != n {
        return Err("partition arrays have wrong length".into());
    }
    // Every node appears in exactly one layer, consistent with `layer`.
    let mut seen = vec![false; n];
    for (i, nodes) in part.layers.iter().enumerate() {
        for &v in nodes {
            if seen[v.index()] {
                return Err(format!("{v} appears in two layers"));
            }
            seen[v.index()] = true;
            if part.layer[v.index()] != i + 1 {
                return Err(format!("{v} has inconsistent layer number"));
            }
        }
    }
    if seen.iter().any(|&s| !s) {
        return Err("some node is missing from the partition".into());
    }
    // Replay the process and check each layer matches the definition.
    let mut removed = vec![false; n];
    for (i, nodes) in part.layers.iter().enumerate() {
        let layer_no = i + 1;
        let indegree = |v: NodeId, removed: &Vec<bool>| {
            tree.children(v)
                .iter()
                .filter(|c| !removed[c.index()])
                .count()
        };
        for v in tree.nodes() {
            if removed[v.index()] {
                continue;
            }
            let deg = indegree(v, &removed);
            let in_layer = part.layer[v.index()] == layer_no;
            if deg == 0 && !in_layer {
                return Err(format!("leaf {v} of G_{i} not removed in layer {layer_no}"));
            }
            if in_layer && deg >= 2 {
                return Err(format!("{v} removed with indegree {deg} >= 2"));
            }
            if in_layer && deg == 1 && part.kind[v.index()] != RemovalKind::Compress {
                return Err(format!("{v} with indegree 1 should be a compress node"));
            }
        }
        for &v in nodes {
            removed[v.index()] = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn singleton_has_one_layer() {
        let t = RootedTree::singleton();
        let part = rcp_partition(&t, 3);
        assert_eq!(part.num_layers(), 1);
        assert_eq!(part.layer_of(t.root()), 1);
        validate_partition(&t, &part).unwrap();
    }

    #[test]
    fn balanced_tree_layers_grow_logarithmically() {
        // A perfectly balanced tree rakes one level per step, so the number of
        // layers is exactly depth + 1.
        let t = generators::balanced(2, 6);
        let part = rcp_partition(&t, 4);
        assert_eq!(part.num_layers(), 7);
        validate_partition(&t, &part).unwrap();
    }

    #[test]
    fn path_is_compressed() {
        let t = generators::path(64);
        let part = rcp_partition(&t, 2);
        // A long path must be mostly compressed; with only rakes it would take 64
        // layers, with compression it takes O(log n).
        assert!(part.num_layers() <= 10, "layers = {}", part.num_layers());
        assert!(part.kind.contains(&RemovalKind::Compress));
        validate_partition(&t, &part).unwrap();
    }

    #[test]
    fn hairy_path_uses_both_rake_and_compress() {
        let t = generators::hairy_path(2, 100);
        let part = rcp_partition(&t, 3);
        assert!(part.num_layers() <= 20);
        assert!(part.kind.contains(&RemovalKind::Rake));
        assert!(part.kind.contains(&RemovalKind::Compress));
        validate_partition(&t, &part).unwrap();
    }

    #[test]
    fn lemma_5_9_logarithmic_layer_count() {
        // Lemma 5.9: each step removes at least a 1/(6p) fraction, so
        // L <= log_{1/(1-1/(6p))}(n) + 1. Check the bound for several shapes.
        let p = 3usize;
        let bound = |n: usize| {
            let shrink = 1.0 - 1.0 / (6.0 * p as f64);
            ((n as f64).ln() / (1.0 / shrink).ln()).ceil() as usize + 2
        };
        for seed in 0..3 {
            let t = generators::random_full(2, 2000, seed);
            let part = rcp_partition(&t, p);
            assert!(
                part.num_layers() <= bound(t.len()),
                "layers {} exceeds bound {}",
                part.num_layers(),
                bound(t.len())
            );
            validate_partition(&t, &part).unwrap();
        }
        let skinny = generators::random_skewed(2, 2000, 0.95, 7);
        let part = rcp_partition(&skinny, p);
        assert!(part.num_layers() <= bound(skinny.len()));
    }

    #[test]
    fn compress_runs_are_vertical_and_long() {
        let t = generators::hairy_path(2, 50);
        let p = 4;
        let part = rcp_partition(&t, p);
        let runs = part.compress_runs(&t);
        assert!(!runs.is_empty());
        for run in &runs {
            assert!(run.len() >= p, "run shorter than p");
            for w in run.windows(2) {
                assert_eq!(t.parent(w[1]), Some(w[0]), "run must be a vertical path");
            }
        }
        validate_partition(&t, &part).unwrap();
    }

    #[test]
    fn short_paths_are_not_compressed() {
        // With p larger than the path length, no node is ever compressed.
        let t = generators::path(5);
        let part = rcp_partition(&t, 10);
        assert!(part.kind.iter().all(|&k| k == RemovalKind::Rake));
        assert_eq!(part.num_layers(), 5);
    }
}
