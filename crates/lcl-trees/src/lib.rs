//! Rooted-tree substrate for the `rooted-tree-lcl` reproduction of
//! *Locally Checkable Problems in Rooted Trees* (PODC 2021).
//!
//! This crate is purely structural: it knows nothing about LCL problems or labels.
//! It provides
//!
//! * an arena-based rooted tree type ([`RootedTree`], [`NodeId`]),
//! * a flat compressed-sparse-row view with streaming million-node generators
//!   and a precomputed level index for level-synchronous passes
//!   ([`flat`]: [`FlatTree`], [`LevelIndex`]),
//! * traversal and measurement helpers ([`traversal`]),
//! * generators for the tree families used throughout the paper
//!   ([`generators`]: balanced and random full δ-ary trees, hairy paths),
//! * the lower-bound constructions of Section 5.4 ([`lower_bound`]:
//!   the bipolar trees `T^x_k` and their concatenations `T^x_{i←j}`),
//! * the rake-and-compress partition `RCP(p)` of Definition 5.8 ([`rcp`]).
//!
//! # Example
//!
//! ```
//! use lcl_trees::{generators, RootedTree};
//!
//! // A full binary tree of depth 3: 15 nodes, 7 internal.
//! let tree: RootedTree = generators::balanced(2, 3);
//! assert_eq!(tree.len(), 15);
//! assert!(tree.is_full_dary(2));
//! assert_eq!(tree.height(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod flat;
pub mod generators;
pub mod lower_bound;
pub mod rcp;
pub mod traversal;
pub mod tree;

pub use dynamic::{DynamicTree, EditScriptGen, JournalOp, TreeEdit};
pub use flat::{FlatTree, LevelIndex};
pub use rcp::{rcp_partition, rcp_partition_flat, FlatRcp, RcpPartition};
pub use tree::{NodeId, RootedTree, TreeBuilder};
