//! Mutable dynamic layer over [`FlatTree`] + [`LevelIndex`]: subtree
//! attach/detach edits with incremental index repair.
//!
//! A packed CSR tree cannot absorb edits in place — inserting a child shifts
//! every offset after it. [`DynamicTree`] therefore keeps *two* adjacency
//! views of the same node set:
//!
//! * a **slack adjacency**: one stride-δ row of child slots per node
//!   (`slack[v·δ ..]`, `child_count[v]`), giving O(1) child insertion and
//!   removal during a batch of edits, and
//! * the retained packed [`FlatTree`] CSR arrays, rebuilt from the slack rows
//!   into their existing capacity at [`DynamicTree::sync`] time, so the
//!   solvers and the validator keep their contiguous, shardable view.
//!
//! Node ids stay **dense**: a detach compacts the id space by swapping live
//! tail nodes into the holes and records every move in the edit journal
//! ([`JournalOp::Remapped`]), so a caller holding per-node state (labels!) can
//! replay the journal and stay aligned. The root keeps id 0 forever.
//!
//! Per-node aggregates (`depth`, `subtree_size`, `subtree_height`) are
//! maintained *eagerly* per edit along the affected ancestor chain — O(depth)
//! per edit. The positional BFS arrays of the [`LevelIndex`] (`order`,
//! `level_start`, `parent_pos`, `first_child_pos`) are repaired at sync time
//! by truncating to the lowest dirty level and re-running the BFS from there,
//! which costs O(nodes at depth ≥ dirty − 1) instead of O(n); past a churn
//! threshold (half the tree) the repair degenerates to a full rebuild into
//! the retained buffers.
//!
//! Both edit operations preserve full-δ-arity: [`DynamicTree::attach_subtree`]
//! grafts a *complete* δ-ary subtree of a given depth under a leaf, and
//! [`DynamicTree::detach_subtree`] prunes *all* strict descendants of a node,
//! turning it back into a leaf. The certificate-driven solvers (and their
//! incremental repair in `lcl-algorithms`) therefore never leave their
//! regular-tree fast path.

use lcl_rand::SplitMix64;

use crate::flat::{FlatTree, LevelIndex};
use crate::tree::{NodeId, RootedTree};

/// One structural (or labeling) edit of a [`DynamicTree`]. Produced by
/// [`EditScriptGen`], consumed by [`DynamicTree::apply_edit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeEdit {
    /// Graft a complete δ-ary subtree of `depth` levels under the leaf.
    Attach {
        /// The leaf to expand (must have no children).
        leaf: u32,
        /// Depth of the grafted complete subtree (≥ 1).
        depth: u32,
    },
    /// Remove every strict descendant of `node`, making it a leaf again.
    Detach {
        /// The subtree root to prune (kept; its descendants go).
        node: u32,
    },
    /// Overwrite the node's label. A structural no-op: the tree does not know
    /// about labels; `lcl_algorithms::repair` turns this into a
    /// label perturbation to repair.
    Relabel {
        /// The node whose label is perturbed.
        node: u32,
    },
}

/// One label-array maintenance record. Replaying the journal in order keeps
/// any id-indexed side array (a labeling) aligned with the edited id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOp {
    /// Ids `first .. first + count` were appended by an attach; side arrays
    /// must grow to `first + count` entries (fresh entries are unlabeled).
    Grown {
        /// First new id.
        first: u32,
        /// Number of appended ids.
        count: u32,
    },
    /// A live node moved from id `from` to id `to` during detach compaction;
    /// side arrays must copy entry `from` into entry `to`.
    Remapped {
        /// The old (tail) id.
        from: u32,
        /// The new (hole) id.
        to: u32,
    },
    /// The id space shrank to `new_len`; side arrays must truncate.
    Truncated {
        /// Number of live nodes after the detach.
        new_len: u32,
    },
}

/// A mutable rooted tree: the packed CSR view plus the slack adjacency and
/// the incrementally repaired level index. See the module documentation.
#[derive(Debug, Clone)]
pub struct DynamicTree {
    flat: FlatTree,
    idx: LevelIndex,
    delta: usize,
    /// Stride-δ child slots: children of `v` are `slack[v·δ .. v·δ + count]`.
    slack: Vec<u32>,
    /// Number of occupied child slots per node (0 or δ on full-δ-ary trees).
    child_count: Vec<u32>,
    journal: Vec<JournalOp>,
    /// Attach sites (post-batch ids): former leaves whose fresh descendants
    /// need labels.
    dirty_fill: Vec<u32>,
    /// Detach sites (post-batch ids): nodes that became leaves.
    dirty_check: Vec<u32>,
    /// Relabel sites (post-batch ids): nodes whose labels were perturbed.
    dirty_relabel: Vec<u32>,
    /// Lowest tree level whose BFS-positional arrays are stale
    /// (`usize::MAX` = clean).
    dirty_level: usize,
    /// Nodes attached + removed since the last sync.
    churn: usize,
    /// The packed CSR arrays mirror the slack adjacency.
    csr_synced: bool,
    /// The BFS-positional level-index arrays are current. Kept separate from
    /// `csr_synced` so steady-state incremental repair (which only reads the
    /// packed CSR) never pays the O(n) positional BFS; the index is rebuilt
    /// lazily when a full solve actually asks for it.
    index_synced: bool,
    /// Packed rows whose content or size changed since the last CSR sync
    /// (attach/detach sites, compaction holes, parents of moved nodes) —
    /// position-based, so compaction never has to rename entries. Everything
    /// else is block-copied at [`Self::sync_csr`] time.
    csr_dirty_rows: Vec<u32>,
    /// Minimum node count since the last CSR sync: positions at or above it
    /// were truncated at some point (shrink-then-grow reuses them for fresh
    /// nodes), so the merge trusts no packed row there.
    min_len: usize,
    // Reusable scratch (all high-water retained, so steady-state edits
    // allocate nothing).
    mark: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
    removed: Vec<u32>,
    remap: Vec<(u32, u32)>,
    scratch_start: Vec<u32>,
    scratch_children: Vec<u32>,
}

impl DynamicTree {
    /// Wraps `flat` (which must be full δ-ary with the root at id 0, as every
    /// constructor in this crate produces) for editing.
    pub fn new(flat: FlatTree, delta: usize) -> Self {
        assert!(delta >= 1, "delta must be at least 1");
        assert_eq!(flat.root(), 0, "dynamic trees keep the root at id 0");
        let n = flat.len();
        let mut slack = vec![0u32; n * delta];
        let mut child_count = vec![0u32; n];
        for v in 0..n {
            let row = flat.children(v as u32);
            assert!(
                row.is_empty() || row.len() == delta,
                "node {v} has {} children; dynamic trees must be full {delta}-ary",
                row.len()
            );
            slack[v * delta..v * delta + row.len()].copy_from_slice(row);
            child_count[v] = row.len() as u32;
        }
        let idx = flat.level_index();
        DynamicTree {
            flat,
            idx,
            delta,
            slack,
            child_count,
            journal: Vec::new(),
            dirty_fill: Vec::new(),
            dirty_check: Vec::new(),
            dirty_relabel: Vec::new(),
            dirty_level: usize::MAX,
            churn: 0,
            csr_synced: true,
            index_synced: true,
            csr_dirty_rows: Vec::new(),
            min_len: n,
            mark: Vec::new(),
            epoch: 0,
            stack: Vec::new(),
            removed: Vec::new(),
            remap: Vec::new(),
            scratch_start: Vec::new(),
            scratch_children: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.flat.parent.len()
    }

    /// `true` when the tree has no nodes (never true: the root persists).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The arity δ of the tree.
    #[inline]
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The parent of `v`, or `None` at the root. Always current.
    #[inline]
    pub fn parent(&self, v: u32) -> Option<u32> {
        match self.flat.parent[v as usize] {
            FlatTree::NO_PARENT => None,
            p => Some(p),
        }
    }

    /// The children of `v` in port order (slack view). Always current.
    #[inline]
    pub fn children(&self, v: u32) -> &[u32] {
        let base = v as usize * self.delta;
        &self.slack[base..base + self.child_count[v as usize] as usize]
    }

    /// `true` if `v` currently has no children.
    #[inline]
    pub fn is_leaf(&self, v: u32) -> bool {
        self.child_count[v as usize] == 0
    }

    /// The port of `child` at `parent` (its position among the parent's
    /// children), or `None` if it is not a child. O(δ).
    #[inline]
    pub fn port_of(&self, parent: u32, child: u32) -> Option<usize> {
        self.children(parent).iter().position(|&c| c == child)
    }

    /// Depth of `v`. Maintained eagerly; always current.
    #[inline]
    pub fn depth(&self, v: u32) -> u32 {
        self.idx.depth[v as usize]
    }

    /// Subtree size of `v` (1 for leaves). Maintained eagerly; always current.
    #[inline]
    pub fn subtree_size(&self, v: u32) -> u32 {
        self.idx.subtree_size[v as usize]
    }

    /// Subtree height of `v` (0 for leaves). Maintained eagerly; always
    /// current.
    #[inline]
    pub fn subtree_height(&self, v: u32) -> u32 {
        self.idx.subtree_height[v as usize]
    }

    /// The packed CSR view. Only valid after [`Self::sync_csr`] (or the full
    /// [`Self::sync`]).
    #[inline]
    pub fn tree(&self) -> &FlatTree {
        assert!(
            self.csr_synced,
            "call sync_csr() before reading the packed view"
        );
        &self.flat
    }

    /// The level index. Only valid after [`Self::sync`].
    #[inline]
    pub fn index(&self) -> &LevelIndex {
        assert!(
            self.index_synced,
            "call sync() before reading the level index"
        );
        &self.idx
    }

    /// The label-maintenance journal since the last [`Self::clear_journal`].
    #[inline]
    pub fn journal(&self) -> &[JournalOp] {
        &self.journal
    }

    /// Attach sites of the pending batch (post-batch ids, chronological).
    #[inline]
    pub fn attach_sites(&self) -> &[u32] {
        &self.dirty_fill
    }

    /// Detach sites of the pending batch (post-batch ids, chronological).
    #[inline]
    pub fn detach_sites(&self) -> &[u32] {
        &self.dirty_check
    }

    /// Relabel sites of the pending batch (post-batch ids, chronological;
    /// sites whose nodes a later detach removed are dropped).
    #[inline]
    pub fn relabel_sites(&self) -> &[u32] {
        &self.dirty_relabel
    }

    /// Forgets the journal and the dirty-site lists (after a repair consumed
    /// them). Retains capacity.
    pub fn clear_journal(&mut self) {
        self.journal.clear();
        self.dirty_fill.clear();
        self.dirty_check.clear();
        self.dirty_relabel.clear();
    }

    /// Applies one edit. [`TreeEdit::Relabel`] is a structural no-op.
    pub fn apply_edit(&mut self, edit: TreeEdit) {
        match edit {
            TreeEdit::Attach { leaf, depth } => {
                self.attach_subtree(leaf, depth as usize);
            }
            TreeEdit::Detach { node } => {
                self.detach_subtree(node);
            }
            TreeEdit::Relabel { node } => {
                assert!((node as usize) < self.len(), "relabel node out of bounds");
                self.dirty_relabel.push(node);
            }
        }
    }

    /// Grafts a complete δ-ary subtree of `depth` levels under the leaf.
    /// New nodes get the ids `old_len ..`, level by level (so `parent[v] < v`
    /// holds for every new node). Returns the range of new ids.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not a leaf or `depth == 0`.
    pub fn attach_subtree(&mut self, leaf: u32, depth: usize) -> std::ops::Range<u32> {
        assert!((leaf as usize) < self.len(), "attach leaf out of bounds");
        assert!(self.is_leaf(leaf), "attach target must be a leaf");
        assert!(depth >= 1, "attach depth must be at least 1");
        let added = crate::generators::complete_tree_size(self.delta, depth) - 1;
        let first = self.len() as u32;
        assert!(
            self.len() + added < FlatTree::NO_PARENT as usize,
            "tree too large for u32 ids"
        );
        let leaf_depth = self.idx.depth[leaf as usize];

        // Create the new rows level by level. A node at relative depth r
        // (1 ..= depth) heads a complete subtree of height depth − r.
        let mut frontier_start = leaf as usize;
        let mut frontier_end = leaf as usize + 1;
        for r in 1..=depth {
            let level_first = self.len();
            let height = (depth - r) as u32;
            let size = crate::generators::complete_tree_size(self.delta, depth - r) as u32;
            for p in frontier_start..frontier_end {
                for _ in 0..self.delta {
                    let id = self.len() as u32;
                    self.flat.parent.push(p as u32);
                    self.slack.extend(std::iter::repeat_n(0, self.delta));
                    let slot = p * self.delta + self.child_count[p] as usize;
                    self.slack[slot] = id;
                    self.child_count[p] += 1;
                    self.child_count.push(0);
                    self.idx.depth.push(leaf_depth + r as u32);
                    self.idx.subtree_size.push(size);
                    self.idx.subtree_height.push(height);
                }
            }
            frontier_start = level_first;
            frontier_end = self.len();
        }

        // Ancestor aggregates: every node on the root chain (including the
        // former leaf) grew by `added`; heights climb while they increase.
        let mut a = leaf;
        loop {
            self.idx.subtree_size[a as usize] += added as u32;
            match self.parent(a) {
                Some(p) => a = p,
                None => break,
            }
        }
        self.idx.subtree_height[leaf as usize] = depth as u32;
        let mut child_h = depth as u32;
        let mut a = leaf;
        while let Some(p) = self.parent(a) {
            if self.idx.subtree_height[p as usize] > child_h {
                break;
            }
            self.idx.subtree_height[p as usize] = child_h + 1;
            child_h += 1;
            a = p;
        }

        self.journal.push(JournalOp::Grown {
            first,
            count: added as u32,
        });
        self.dirty_fill.push(leaf);
        self.csr_dirty_rows.push(leaf);
        self.dirty_level = self.dirty_level.min(leaf_depth as usize + 1);
        self.churn += added;
        self.csr_synced = false;
        self.index_synced = false;
        first..self.len() as u32
    }

    /// Removes every strict descendant of `node`, making it a leaf, and
    /// compacts the id space (journaling every move). Returns the number of
    /// removed nodes (0 if `node` already is a leaf — a no-op that journals
    /// nothing).
    pub fn detach_subtree(&mut self, node: u32) -> usize {
        assert!((node as usize) < self.len(), "detach node out of bounds");
        if self.is_leaf(node) {
            return 0;
        }
        let n = self.len();
        let delta = self.delta;

        // Collect and mark the strict descendants.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale marks could alias. Reset the stamp array.
            self.mark.clear();
            self.epoch = 1;
        }
        self.mark.resize(n, 0);
        self.removed.clear();
        self.stack.clear();
        let base = node as usize * delta;
        let cc = self.child_count[node as usize] as usize;
        self.stack.extend_from_slice(&self.slack[base..base + cc]);
        while let Some(v) = self.stack.pop() {
            self.mark[v as usize] = self.epoch;
            self.removed.push(v);
            let base = v as usize * delta;
            let cc = self.child_count[v as usize] as usize;
            self.stack.extend_from_slice(&self.slack[base..base + cc]);
        }
        let r_count = self.removed.len();
        debug_assert_eq!(r_count as u32, self.idx.subtree_size[node as usize] - 1);

        // Aggregates along the ancestor chain.
        self.idx.subtree_size[node as usize] = 1;
        self.idx.subtree_height[node as usize] = 0;
        self.child_count[node as usize] = 0;
        let mut a = node;
        while let Some(p) = self.parent(a) {
            self.idx.subtree_size[p as usize] -= r_count as u32;
            a = p;
        }
        let mut a = node;
        while let Some(p) = self.parent(a) {
            let new_h = self
                .children(p)
                .iter()
                .map(|&c| self.idx.subtree_height[c as usize] + 1)
                .max()
                .expect("p has at least the child a");
            if self.idx.subtree_height[p as usize] == new_h {
                break;
            }
            self.idx.subtree_height[p as usize] = new_h;
            a = p;
        }
        self.dirty_level = self
            .dirty_level
            .min(self.idx.depth[node as usize] as usize + 1);
        self.csr_dirty_rows.push(node);

        // Compact: fill each hole below the new length with the highest live
        // tail node. References stay current at every step: moving a node
        // updates its parent's child slot and its children's parent entries.
        self.removed.sort_unstable();
        let new_len = n - r_count;
        self.remap.clear();
        let mut src = n;
        for i in 0..self.removed.len() {
            let hole = self.removed[i] as usize;
            if hole >= new_len {
                break;
            }
            loop {
                src -= 1;
                if self.mark[src] != self.epoch {
                    break;
                }
            }
            debug_assert!(src >= new_len);
            self.move_row(src, hole);
            self.remap.push((src as u32, hole as u32));
            self.journal.push(JournalOp::Remapped {
                from: src as u32,
                to: hole as u32,
            });
            // The moved node's BFS position entry still holds its old id.
            self.dirty_level = self.dirty_level.min(self.idx.depth[hole] as usize);
        }
        self.flat.parent.truncate(new_len);
        self.slack.truncate(new_len * delta);
        self.child_count.truncate(new_len);
        self.idx.depth.truncate(new_len);
        self.idx.subtree_size.truncate(new_len);
        self.idx.subtree_height.truncate(new_len);
        self.journal.push(JournalOp::Truncated {
            new_len: new_len as u32,
        });
        self.min_len = self.min_len.min(new_len);

        // Keep the dirty-site lists aligned: drop removed sites, rename moved
        // ones, then record this detach site under its current id.
        let (mark, epoch, remap) = (&self.mark, self.epoch, &self.remap);
        let rename = |v: u32| -> Option<u32> {
            if mark[v as usize] == epoch {
                return None;
            }
            Some(
                remap
                    .iter()
                    .find(|&&(from, _)| from == v)
                    .map(|&(_, to)| to)
                    .unwrap_or(v),
            )
        };
        retain_map(&mut self.dirty_fill, rename);
        retain_map(&mut self.dirty_check, rename);
        retain_map(&mut self.dirty_relabel, rename);
        let node_now = rename(node).expect("the detach site itself stays live");
        self.dirty_check.push(node_now);

        self.churn += r_count;
        self.csr_synced = false;
        self.index_synced = false;
        r_count
    }

    /// Moves the live row `src` into the hole `hole` (both old-id space).
    fn move_row(&mut self, src: usize, hole: usize) {
        let delta = self.delta;
        let p = self.flat.parent[src] as usize;
        self.flat.parent[hole] = p as u32;
        // The hole takes the moved row's content and the parent's row renames
        // a child entry; both packed rows are stale now.
        self.csr_dirty_rows.push(hole as u32);
        self.csr_dirty_rows.push(p as u32);
        debug_assert_ne!(
            self.flat.parent[src],
            FlatTree::NO_PARENT,
            "root never moves"
        );
        let row = &mut self.slack[p * delta..p * delta + self.child_count[p] as usize];
        let slot = row
            .iter()
            .position(|&c| c as usize == src)
            .expect("parent row contains the moved child");
        row[slot] = hole as u32;
        let cc = self.child_count[src] as usize;
        for i in 0..cc {
            let c = self.slack[src * delta + i] as usize;
            self.flat.parent[c] = hole as u32;
        }
        self.slack
            .copy_within(src * delta..src * delta + delta, hole * delta);
        self.child_count[hole] = self.child_count[src];
        self.idx.depth[hole] = self.idx.depth[src];
        self.idx.subtree_size[hole] = self.idx.subtree_size[src];
        self.idx.subtree_height[hole] = self.idx.subtree_height[src];
    }

    /// Repacks the CSR arrays from the slack rows and repairs the positional
    /// level-index arrays from the lowest dirty level (full rebuild past the
    /// churn threshold of half the tree). Idempotent; allocation-free once
    /// the buffers reached their high-water capacity.
    ///
    /// Steady-state incremental repair only needs the packed CSR — call
    /// [`Self::sync_csr`] there and leave the positional BFS to whoever
    /// actually reads [`Self::index`].
    pub fn sync(&mut self) {
        self.sync_csr();
        self.sync_index();
    }

    /// Repacks only the packed CSR arrays (`parent`, `child_start`,
    /// `children`) from the slack rows into their retained buffers — the
    /// cheap, memcpy-bound half of [`Self::sync`] that [`Self::tree`] needs.
    /// The BFS-positional level-index arrays stay stale until
    /// [`Self::sync_index`] runs.
    pub fn sync_csr(&mut self) {
        if self.csr_synced {
            return;
        }
        let n = self.len();
        // Edit-aware maintenance: rewrite only the rows the edits touched and
        // block-copy the clean segments between them. Past heavy churn the
        // segment bookkeeping stops paying for itself; fall back to the tight
        // full repack.
        if 2 * self.churn < n && 8 * self.csr_dirty_rows.len() < n {
            self.csr_dirty_rows.sort_unstable();
            self.csr_dirty_rows.dedup();
            self.merge_csr(n);
        } else {
            self.repack_csr(n);
        }
        self.csr_dirty_rows.clear();
        self.min_len = n;
        self.flat.depth_cache.take();
        self.csr_synced = true;
    }

    /// Full CSR repack from the slack rows into the retained buffers: counts
    /// are 0 or δ on a full-δ-ary tree, so offsets are a running sum and each
    /// occupied row is one short copy.
    fn repack_csr(&mut self, n: usize) {
        let delta = self.delta;
        self.flat.child_start.resize(n + 1, 0);
        self.flat.children.resize(n.saturating_sub(1), 0);
        let mut w = 0usize;
        for v in 0..n {
            self.flat.child_start[v] = w as u32;
            let cc = self.child_count[v] as usize;
            if cc != 0 {
                let base = v * delta;
                self.flat.children[w..w + cc].copy_from_slice(&self.slack[base..base + cc]);
                w += cc;
            }
        }
        self.flat.child_start[n] = w as u32;
        debug_assert_eq!(w, n - 1);
    }

    /// Edit-aware CSR rebuild: walks the sorted dirty rows, block-copies each
    /// clean segment from the current packed arrays (offsets shifted by the
    /// running size delta — a vectorizable add), rewrites exactly the dirty
    /// rows and the appended tail from the slack rows, then swaps the scratch
    /// buffers in. Memcpy-bound where the full repack is per-row-loop-bound.
    fn merge_csr(&mut self, n: usize) {
        let delta = self.delta;
        let n_old = self.flat.child_start.len() - 1;
        // Rows past `common` cannot be trusted: they no longer exist, are
        // new, or sat above a truncation point at some moment since the last
        // sync (shrink-then-grow reuses their positions for fresh nodes).
        // That whole tail is rewritten from slack wholesale, so only dirty
        // rows below it matter.
        let common = n.min(n_old).min(self.min_len);
        let mut ns = std::mem::take(&mut self.scratch_start);
        let mut nc = std::mem::take(&mut self.scratch_children);
        ns.resize(n + 1, 0);
        nc.resize(n.saturating_sub(1), 0);
        let old_start = &self.flat.child_start;
        let old_children = &self.flat.children;
        let mut w = 0usize;
        // Offset shift of clean rows, mod 2³²: new_start − old_start.
        let mut shift = 0u32;
        let mut prev = 0usize;
        let copy_clean =
            |ns: &mut [u32], nc: &mut [u32], from: usize, to: usize, w: &mut usize, shift: u32| {
                if shift == 0 {
                    ns[from..to].copy_from_slice(&old_start[from..to]);
                } else {
                    for i in from..to {
                        ns[i] = old_start[i].wrapping_add(shift);
                    }
                }
                let lo = old_start[from] as usize;
                let hi = old_start[to] as usize;
                nc[*w..*w + (hi - lo)].copy_from_slice(&old_children[lo..hi]);
                *w += hi - lo;
            };
        for &dirty in &self.csr_dirty_rows {
            let v = dirty as usize;
            if v >= common {
                break; // sorted: the rest lies in the rewritten tail
            }
            copy_clean(&mut ns, &mut nc, prev, v, &mut w, shift);
            ns[v] = w as u32;
            let cc = self.child_count[v] as usize;
            if cc != 0 {
                nc[w..w + cc].copy_from_slice(&self.slack[v * delta..v * delta + cc]);
                w += cc;
            }
            shift = (w as u32).wrapping_sub(old_start[v + 1]);
            prev = v + 1;
        }
        copy_clean(&mut ns, &mut nc, prev, common, &mut w, shift);
        for (v, start) in ns.iter_mut().enumerate().take(n).skip(common) {
            *start = w as u32;
            let cc = self.child_count[v] as usize;
            if cc != 0 {
                nc[w..w + cc].copy_from_slice(&self.slack[v * delta..v * delta + cc]);
                w += cc;
            }
        }
        ns[n] = w as u32;
        debug_assert_eq!(w, n - 1);
        self.scratch_start = std::mem::replace(&mut self.flat.child_start, ns);
        self.scratch_children = std::mem::replace(&mut self.flat.children, nc);
    }

    /// Repairs the BFS-positional level-index arrays (`order`, `level_start`,
    /// `parent_pos`, `first_child_pos`) from the lowest dirty level — the
    /// O(nodes at depth ≥ dirty − 1) half of [`Self::sync`] that only full
    /// solves consume via [`Self::index`].
    pub fn sync_index(&mut self) {
        if self.index_synced {
            return;
        }
        self.sync_csr();
        let n = self.len();

        // Positional repair: truncate to the dirty level and re-run the BFS.
        let dirty = if 2 * self.churn >= n {
            1
        } else {
            self.dirty_level.max(1)
        };
        let dirty = dirty.min(self.idx.level_start.len() - 1);
        let pos_d = self.idx.level_start[dirty] as usize;
        let pos_dm1 = self.idx.level_start[dirty - 1] as usize;
        self.idx.order.truncate(pos_d);
        self.idx.parent_pos.truncate(pos_d);
        self.idx.first_child_pos.truncate(pos_dm1);
        self.idx.level_start.truncate(dirty);
        let mut head = pos_dm1;
        let mut current_level = (dirty - 1) as u32;
        while head < self.idx.order.len() {
            let v = self.idx.order[head] as usize;
            let dv = self.idx.depth[v];
            if dv > current_level {
                current_level = dv;
                self.idx.level_start.push(head as u32);
            }
            self.idx.first_child_pos.push(self.idx.order.len() as u32);
            let lo = self.flat.child_start[v] as usize;
            let hi = self.flat.child_start[v + 1] as usize;
            for &c in &self.flat.children[lo..hi] {
                debug_assert_eq!(self.idx.depth[c as usize], dv + 1);
                self.idx.parent_pos.push(head as u32);
                self.idx.order.push(c);
            }
            head += 1;
        }
        self.idx.level_start.push(n as u32);
        self.idx.first_child_pos.push(n as u32);
        debug_assert_eq!(self.idx.order.len(), n);

        self.dirty_level = usize::MAX;
        self.churn = 0;
        self.index_synced = true;
    }

    /// Expands into an arena [`RootedTree`] by BFS renumbering (compaction
    /// can leave `parent[v] > v`, so the creation-order expansion of
    /// [`FlatTree::to_rooted`] does not apply). Test-grade: allocates freely.
    pub fn to_rooted(&self) -> RootedTree {
        let n = self.len();
        let mut tree = RootedTree::singleton();
        let mut map = vec![u32::MAX; n];
        map[0] = 0;
        let mut queue = std::collections::VecDeque::with_capacity(n);
        queue.push_back(0u32);
        while let Some(v) = queue.pop_front() {
            for &c in self.children(v) {
                let id = tree.add_child(NodeId(map[v as usize]));
                map[c as usize] = id.0;
                queue.push_back(c);
            }
        }
        tree
    }

    /// Checks every internal invariant: slack/parent symmetry, full-δ-arity,
    /// connectivity, dense ids, and (always-current) per-node aggregates.
    /// After [`Self::sync`], additionally checks the packed CSR and the
    /// positional index arrays against a fresh [`LevelIndex`]. Test-grade:
    /// O(n) and allocates.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        if n == 0 {
            return Err("tree has no nodes".into());
        }
        if self.flat.parent[0] != FlatTree::NO_PARENT {
            return Err("root must sit at id 0".into());
        }
        let mut reached = 0usize;
        let mut stack = vec![0u32];
        while let Some(v) = stack.pop() {
            reached += 1;
            let cc = self.child_count[v as usize] as usize;
            if cc != 0 && cc != self.delta {
                return Err(format!("node {v} has {cc} children (not 0 or δ)"));
            }
            for &c in self.children(v) {
                if c as usize >= n {
                    return Err(format!("child {c} of {v} out of bounds"));
                }
                if self.flat.parent[c as usize] != v {
                    return Err(format!("child {c} of {v} has wrong parent"));
                }
                if self.idx.depth[c as usize] != self.idx.depth[v as usize] + 1 {
                    return Err(format!("child {c} of {v} has wrong depth"));
                }
                stack.push(c);
            }
            let size: u32 = 1 + self
                .children(v)
                .iter()
                .map(|&c| self.idx.subtree_size[c as usize])
                .sum::<u32>();
            if self.idx.subtree_size[v as usize] != size {
                return Err(format!(
                    "node {v} subtree size {} != {size}",
                    self.idx.subtree_size[v as usize]
                ));
            }
            let height = self
                .children(v)
                .iter()
                .map(|&c| self.idx.subtree_height[c as usize] + 1)
                .max()
                .unwrap_or(0);
            if self.idx.subtree_height[v as usize] != height {
                return Err(format!(
                    "node {v} subtree height {} != {height}",
                    self.idx.subtree_height[v as usize]
                ));
            }
        }
        if reached != n {
            return Err(format!("only {reached} of {n} nodes reachable"));
        }
        if self.csr_synced {
            self.flat.validate()?;
            if self.index_synced {
                let fresh = self.flat.level_index();
                if fresh != self.idx {
                    return Err("repaired level index differs from a fresh rebuild".into());
                }
            }
        }
        Ok(())
    }
}

/// Retains the elements `f` maps to `Some`, applying the rename in place.
fn retain_map(list: &mut Vec<u32>, f: impl Fn(u32) -> Option<u32>) {
    let mut w = 0;
    for i in 0..list.len() {
        if let Some(v) = f(list[i]) {
            list[w] = v;
            w += 1;
        }
    }
    list.truncate(w);
}

/// Deterministic seeded edit-script generator: given the evolving tree, emits
/// (and applies) attach/detach/relabel edits that keep the node count near a
/// target and the tree full-δ-ary. Both sides of a solve/verify pair replay
/// the identical script from `(seed, initial tree)`.
#[derive(Debug, Clone)]
pub struct EditScriptGen {
    rng: SplitMix64,
    target_nodes: usize,
    max_attach_depth: usize,
    max_detach_size: u32,
}

impl EditScriptGen {
    /// A generator steering the node count toward `target_nodes`.
    pub fn new(seed: u64, target_nodes: usize) -> Self {
        EditScriptGen {
            rng: SplitMix64::seed_from_u64(seed),
            target_nodes,
            max_attach_depth: 2,
            max_detach_size: 64,
        }
    }

    /// Generates the next edit against the current tree, without applying it.
    pub fn next_edit(&mut self, tree: &DynamicTree) -> TreeEdit {
        let roll = self.rng.next_u64() % 100;
        if roll < 25 {
            return TreeEdit::Relabel {
                node: self.rng.gen_index(tree.len()) as u32,
            };
        }
        let grow = tree.len() < self.target_nodes;
        let attach = if grow { roll < 80 } else { roll < 45 };
        if attach {
            let leaf = self.random_leaf(tree);
            let depth = 1 + self.rng.gen_index(self.max_attach_depth) as u32;
            TreeEdit::Attach { leaf, depth }
        } else {
            // Descend from a random node to one with a small subtree; a leaf
            // has nothing to prune, so fall back to expanding it instead.
            let mut v = self.rng.gen_index(tree.len()) as u32;
            while tree.subtree_size(v) > self.max_detach_size {
                let children = tree.children(v);
                v = children[self.rng.gen_index(children.len())];
            }
            if tree.is_leaf(v) {
                TreeEdit::Attach { leaf: v, depth: 1 }
            } else {
                TreeEdit::Detach { node: v }
            }
        }
    }

    /// Generates and applies `count` edits, appending them to `out`.
    pub fn apply_batch(&mut self, tree: &mut DynamicTree, count: usize, out: &mut Vec<TreeEdit>) {
        for _ in 0..count {
            let edit = self.next_edit(tree);
            tree.apply_edit(edit);
            out.push(edit);
        }
    }

    fn random_leaf(&mut self, tree: &DynamicTree) -> u32 {
        let mut v = self.rng.gen_index(tree.len()) as u32;
        while !tree.is_leaf(v) {
            let children = tree.children(v);
            v = children[self.rng.gen_index(children.len())];
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(n: usize, seed: u64) -> DynamicTree {
        DynamicTree::new(FlatTree::random_full(2, n, seed), 2)
    }

    #[test]
    fn attach_grows_a_complete_subtree() {
        let mut dt = tree(31, 1);
        let n0 = dt.len();
        let leaf = (0..n0 as u32).find(|&v| dt.is_leaf(v)).unwrap();
        let range = dt.attach_subtree(leaf, 2);
        assert_eq!(range.len(), 6);
        assert_eq!(dt.len(), n0 + 6);
        assert_eq!(dt.subtree_height(leaf), 2);
        assert_eq!(dt.subtree_size(leaf), 7);
        dt.sync();
        dt.validate().unwrap();
        assert!(dt.tree().is_full_dary(2));
    }

    #[test]
    fn detach_prunes_to_a_leaf_and_compacts_ids() {
        let mut dt = tree(63, 2);
        let n0 = dt.len();
        let v = (0..n0 as u32)
            .find(|&v| !dt.is_leaf(v) && dt.subtree_size(v) <= 15 && dt.subtree_size(v) > 1)
            .unwrap();
        let expect = dt.subtree_size(v) as usize - 1;
        let removed = dt.detach_subtree(v);
        assert_eq!(removed, expect);
        assert_eq!(dt.len(), n0 - removed);
        let v_now = dt.detach_sites()[0];
        assert!(dt.is_leaf(v_now));
        dt.sync();
        dt.validate().unwrap();
    }

    #[test]
    fn detach_on_a_leaf_is_a_noop() {
        let mut dt = tree(15, 3);
        let leaf = (0..dt.len() as u32).find(|&v| dt.is_leaf(v)).unwrap();
        assert_eq!(dt.detach_subtree(leaf), 0);
        assert!(dt.journal().is_empty());
        dt.sync();
        dt.validate().unwrap();
    }

    #[test]
    fn journal_replay_keeps_side_arrays_aligned() {
        let mut dt = tree(127, 4);
        // Side array holds each node's id at creation; after replay, entry v
        // must equal the id the node had before the batch (or NEW).
        let mut side: Vec<u32> = (0..dt.len() as u32).collect();
        let mut gen = EditScriptGen::new(9, 127);
        let mut edits = Vec::new();
        gen.apply_batch(&mut dt, 32, &mut edits);
        for &op in dt.journal() {
            match op {
                JournalOp::Grown { first, count } => {
                    side.resize((first + count) as usize, u32::MAX)
                }
                JournalOp::Remapped { from, to } => side[to as usize] = side[from as usize],
                JournalOp::Truncated { new_len } => side.truncate(new_len as usize),
            }
        }
        dt.sync();
        dt.validate().unwrap();
        assert_eq!(side.len(), dt.len());
        // Spot-check alignment through the structure: a node and its recorded
        // original id must agree on depth relative to the original tree where
        // the original id survives.
        assert_eq!(side[0], 0, "root never moves");
    }

    #[test]
    fn sync_matches_fresh_rebuild_after_random_batches() {
        for seed in 0..4 {
            let mut dt = tree(201, seed);
            let mut gen = EditScriptGen::new(seed ^ 0xabcd, 201);
            let mut edits = Vec::new();
            for _ in 0..6 {
                gen.apply_batch(&mut dt, 16, &mut edits);
                dt.sync();
                dt.validate().unwrap();
                dt.clear_journal();
            }
        }
    }

    #[test]
    fn churn_threshold_full_rebuild_matches() {
        let mut dt = tree(63, 7);
        // Detach a huge subtree right below the root: churn ≥ n/2 forces the
        // full-rebuild path.
        let big = *dt
            .children(0)
            .iter()
            .max_by_key(|&&c| dt.subtree_size(c))
            .unwrap();
        dt.detach_subtree(big);
        dt.sync();
        dt.validate().unwrap();
    }

    #[test]
    fn to_rooted_round_trips_through_bfs_renumbering() {
        let mut dt = tree(63, 8);
        let mut gen = EditScriptGen::new(3, 63);
        let mut edits = Vec::new();
        gen.apply_batch(&mut dt, 24, &mut edits);
        let rooted = dt.to_rooted();
        rooted.validate().unwrap();
        assert_eq!(rooted.len(), dt.len());
        // The BFS degree sequence identifies the ordered tree.
        let flat = FlatTree::from_tree(&rooted);
        let idx = flat.level_index();
        dt.sync();
        let ours: Vec<usize> = dt
            .index()
            .bfs_order()
            .iter()
            .map(|&v| dt.children(v).len())
            .collect();
        let theirs: Vec<usize> = idx
            .bfs_order()
            .iter()
            .map(|&v| flat.children(v).len())
            .collect();
        assert_eq!(ours, theirs);
    }
}
