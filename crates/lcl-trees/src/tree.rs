//! Arena-based rooted trees.
//!
//! A [`RootedTree`] stores nodes in a flat arena indexed by [`NodeId`]. Every node
//! except the root has exactly one parent; children are kept in insertion order,
//! which doubles as a deterministic port numbering (the paper's `p(v)` in
//! Section 7.3 is derived from it).

use std::fmt;

/// Index of a node inside a [`RootedTree`] arena.
///
/// Node ids are dense: a tree with `n` nodes uses ids `0..n`. The root is not
/// necessarily id `0` in general, but all constructors in this crate place it there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A rooted tree stored in an arena.
///
/// The tree is *directed towards the root*: every non-root node has a parent, and
/// edges are conceptually oriented from child to parent, matching the convention of
/// the paper (Section 5.3: "each edge `{u, v}` is oriented from `u` to `v` if `v` is
/// the parent of `u`").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    root: NodeId,
}

impl RootedTree {
    /// Creates a tree consisting of a single root node.
    pub fn singleton() -> Self {
        RootedTree {
            parent: vec![None],
            children: vec![Vec::new()],
            root: NodeId(0),
        }
    }

    /// Returns the root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Returns the number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the tree has no nodes.
    ///
    /// Trees built through this crate always contain at least the root, so this is
    /// only `true` for exotic hand-built instances.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Returns the parent of `v`, or `None` if `v` is the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Returns the children of `v` in port order.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Returns the number of children of `v`.
    #[inline]
    pub fn num_children(&self, v: NodeId) -> usize {
        self.children[v.index()].len()
    }

    /// Returns `true` if `v` has no children.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v.index()].is_empty()
    }

    /// Returns `true` if `v` has at least one child.
    #[inline]
    pub fn is_internal(&self, v: NodeId) -> bool {
        !self.is_leaf(v)
    }

    /// Returns the port number of `v` at its parent (0-based position among the
    /// parent's children), or `None` for the root.
    pub fn port_at_parent(&self, v: NodeId) -> Option<usize> {
        let p = self.parent(v)?;
        self.children(p).iter().position(|&c| c == v)
    }

    /// Adds a child to `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of bounds.
    pub fn add_child(&mut self, parent: NodeId) -> NodeId {
        assert!(parent.index() < self.len(), "parent {parent} out of bounds");
        let id = NodeId(self.parent.len() as u32);
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent.index()].push(id);
        id
    }

    /// Adds `count` children to `parent`, returning their ids in port order.
    pub fn add_children(&mut self, parent: NodeId, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_child(parent)).collect()
    }

    /// Iterates over all node ids in increasing order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId)
    }

    /// Iterates over all internal (non-leaf) nodes.
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&v| self.is_internal(v))
    }

    /// Iterates over all leaves.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&v| self.is_leaf(v))
    }

    /// Returns the number of internal nodes.
    pub fn internal_count(&self) -> usize {
        self.internal_nodes().count()
    }

    /// Returns the number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves().count()
    }

    /// Returns `true` if every internal node has exactly `delta` children, i.e. the
    /// tree is a *full δ-ary tree* in the sense of Section 4.1.
    pub fn is_full_dary(&self, delta: usize) -> bool {
        self.nodes()
            .all(|v| self.is_leaf(v) || self.num_children(v) == delta)
    }

    /// Returns the depth of `v` (number of edges from the root).
    pub fn depth(&self, v: NodeId) -> usize {
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Returns the height of the tree (maximum depth of any node).
    pub fn height(&self) -> usize {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Returns the depth of every node, indexed by node id.
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.len()];
        for v in self.bfs_order() {
            if let Some(p) = self.parent(v) {
                depth[v.index()] = depth[p.index()] + 1;
            }
        }
        depth
    }

    /// Returns the nodes in breadth-first order starting from the root.
    pub fn bfs_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in self.children(v) {
                queue.push_back(c);
            }
        }
        order
    }

    /// Returns the nodes in a post-order traversal (children before parents).
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut order = self.bfs_order();
        order.reverse();
        order
    }

    /// Returns the size of the subtree rooted at each node.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut size = vec![1usize; self.len()];
        for v in self.post_order() {
            if let Some(p) = self.parent(v) {
                size[p.index()] += size[v.index()];
            }
        }
        size
    }

    /// Returns the height of the subtree rooted at each node (0 for leaves).
    pub fn subtree_heights(&self) -> Vec<usize> {
        let mut height = vec![0usize; self.len()];
        for v in self.post_order() {
            if let Some(p) = self.parent(v) {
                height[p.index()] = height[p.index()].max(height[v.index()] + 1);
            }
        }
        height
    }

    /// Iterates over the strict ancestors of `v`, nearest first.
    pub fn ancestors(&self, v: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            current: self.parent(v),
        }
    }

    /// Returns the ancestor of `v` at distance `k`, or `None` if the root is closer
    /// than `k` edges away. Distance 0 returns `v` itself.
    pub fn ancestor_at(&self, v: NodeId, k: usize) -> Option<NodeId> {
        let mut cur = v;
        for _ in 0..k {
            cur = self.parent(cur)?;
        }
        Some(cur)
    }

    /// Returns the chain `[v, parent(v), …]` of length at most `k + 1` (i.e. `v`
    /// followed by up to `k` ancestors, nearest first).
    pub fn ancestor_chain(&self, v: NodeId, k: usize) -> Vec<NodeId> {
        let mut chain = Vec::with_capacity(k + 1);
        chain.push(v);
        let mut cur = v;
        for _ in 0..k {
            match self.parent(cur) {
                Some(p) => {
                    chain.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        chain
    }

    /// Returns all descendants of `v` at distance exactly `k` (including `v` itself
    /// when `k == 0`).
    pub fn descendants_at(&self, v: NodeId, k: usize) -> Vec<NodeId> {
        let mut frontier = vec![v];
        for _ in 0..k {
            let mut next = Vec::new();
            for u in frontier {
                next.extend_from_slice(self.children(u));
            }
            frontier = next;
        }
        frontier
    }

    /// Returns all nodes of the subtree rooted at `v`, in BFS order from `v`.
    pub fn subtree_nodes(&self, v: NodeId) -> Vec<NodeId> {
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(v);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &c in self.children(u) {
                queue.push_back(c);
            }
        }
        order
    }

    /// Returns the unique undirected distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let depths = self.depths();
        let (mut a, mut b) = (a, b);
        let (mut da, mut db) = (depths[a.index()], depths[b.index()]);
        let mut dist = 0;
        while da > db {
            a = self.parent(a).expect("depth accounting");
            da -= 1;
            dist += 1;
        }
        while db > da {
            b = self.parent(b).expect("depth accounting");
            db -= 1;
            dist += 1;
        }
        while a != b {
            a = self.parent(a).expect("nodes in same tree");
            b = self.parent(b).expect("nodes in same tree");
            dist += 2;
        }
        dist
    }

    /// Checks internal consistency (parent/child symmetry, acyclicity, single root).
    /// Intended for tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.is_empty() {
            return Err("tree has no nodes".into());
        }
        if self.parent[self.root.index()].is_some() {
            return Err("root has a parent".into());
        }
        let mut root_count = 0;
        for v in self.nodes() {
            match self.parent(v) {
                None => root_count += 1,
                Some(p) => {
                    if !self.children(p).contains(&v) {
                        return Err(format!("{v} not listed among children of {p}"));
                    }
                }
            }
            for &c in self.children(v) {
                if self.parent(c) != Some(v) {
                    return Err(format!("child {c} of {v} has wrong parent"));
                }
            }
        }
        if root_count != 1 {
            return Err(format!("expected exactly one root, found {root_count}"));
        }
        if self.bfs_order().len() != self.len() {
            return Err("tree is not connected".into());
        }
        Ok(())
    }
}

impl Default for RootedTree {
    fn default() -> Self {
        Self::singleton()
    }
}

/// Iterator over the strict ancestors of a node, nearest first.
pub struct Ancestors<'a> {
    tree: &'a RootedTree,
    current: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.current?;
        self.current = self.tree.parent(cur);
        Some(cur)
    }
}

/// Convenience builder used by generators that construct trees level by level.
#[derive(Debug, Default)]
pub struct TreeBuilder {
    tree: RootedTree,
}

impl TreeBuilder {
    /// Creates a builder holding a single-root tree.
    pub fn new() -> Self {
        TreeBuilder {
            tree: RootedTree::singleton(),
        }
    }

    /// Returns the root node id.
    pub fn root(&self) -> NodeId {
        self.tree.root()
    }

    /// Adds `delta` children under `parent`.
    pub fn expand(&mut self, parent: NodeId, delta: usize) -> Vec<NodeId> {
        self.tree.add_children(parent, delta)
    }

    /// Gives every current leaf `delta` children, returning the new leaves.
    pub fn expand_all_leaves(&mut self, delta: usize) -> Vec<NodeId> {
        let leaves: Vec<NodeId> = self.tree.leaves().collect();
        let mut new_leaves = Vec::with_capacity(leaves.len() * delta);
        for leaf in leaves {
            new_leaves.extend(self.tree.add_children(leaf, delta));
        }
        new_leaves
    }

    /// Consumes the builder, returning the finished tree.
    pub fn finish(self) -> RootedTree {
        self.tree
    }

    /// Read-only access to the tree under construction.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> RootedTree {
        // root with two children; first child has two children.
        let mut t = RootedTree::singleton();
        let r = t.root();
        let a = t.add_child(r);
        let _b = t.add_child(r);
        let _c = t.add_child(a);
        let _d = t.add_child(a);
        t
    }

    #[test]
    fn singleton_tree() {
        let t = RootedTree::singleton();
        assert_eq!(t.len(), 1);
        assert!(t.is_leaf(t.root()));
        assert_eq!(t.height(), 0);
        assert!(t.is_full_dary(2));
        t.validate().unwrap();
    }

    #[test]
    fn add_child_links_parent_and_port() {
        let mut t = RootedTree::singleton();
        let r = t.root();
        let a = t.add_child(r);
        let b = t.add_child(r);
        assert_eq!(t.parent(a), Some(r));
        assert_eq!(t.parent(b), Some(r));
        assert_eq!(t.children(r), &[a, b]);
        assert_eq!(t.port_at_parent(a), Some(0));
        assert_eq!(t.port_at_parent(b), Some(1));
        assert_eq!(t.port_at_parent(r), None);
        t.validate().unwrap();
    }

    #[test]
    fn depths_and_height() {
        let t = small_tree();
        let depths = t.depths();
        assert_eq!(depths[t.root().index()], 0);
        assert_eq!(t.height(), 2);
        assert_eq!(t.depth(NodeId(3)), 2);
    }

    #[test]
    fn full_dary_detection() {
        let t = small_tree();
        assert!(t.is_full_dary(2));
        let mut t2 = small_tree();
        t2.add_child(NodeId(1));
        assert!(!t2.is_full_dary(2));
    }

    #[test]
    fn bfs_and_post_order_cover_all_nodes() {
        let t = small_tree();
        assert_eq!(t.bfs_order().len(), t.len());
        assert_eq!(t.post_order().len(), t.len());
        assert_eq!(t.bfs_order()[0], t.root());
        assert_eq!(*t.post_order().last().unwrap(), t.root());
    }

    #[test]
    fn subtree_sizes_and_heights() {
        let t = small_tree();
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[t.root().index()], 5);
        assert_eq!(sizes[NodeId(1).index()], 3);
        assert_eq!(sizes[NodeId(2).index()], 1);
        let heights = t.subtree_heights();
        assert_eq!(heights[t.root().index()], 2);
        assert_eq!(heights[NodeId(1).index()], 1);
    }

    #[test]
    fn ancestors_and_ancestor_at() {
        let t = small_tree();
        let leaf = NodeId(3);
        let ancs: Vec<NodeId> = t.ancestors(leaf).collect();
        assert_eq!(ancs, vec![NodeId(1), NodeId(0)]);
        assert_eq!(t.ancestor_at(leaf, 0), Some(leaf));
        assert_eq!(t.ancestor_at(leaf, 1), Some(NodeId(1)));
        assert_eq!(t.ancestor_at(leaf, 2), Some(NodeId(0)));
        assert_eq!(t.ancestor_at(leaf, 3), None);
        assert_eq!(t.ancestor_chain(leaf, 5), vec![leaf, NodeId(1), NodeId(0)]);
    }

    #[test]
    fn descendants_at_distance() {
        let t = small_tree();
        assert_eq!(t.descendants_at(t.root(), 0), vec![t.root()]);
        assert_eq!(t.descendants_at(t.root(), 1), vec![NodeId(1), NodeId(2)]);
        assert_eq!(t.descendants_at(t.root(), 2), vec![NodeId(3), NodeId(4)]);
        assert!(t.descendants_at(t.root(), 3).is_empty());
    }

    #[test]
    fn distances() {
        let t = small_tree();
        assert_eq!(t.distance(NodeId(3), NodeId(4)), 2);
        assert_eq!(t.distance(NodeId(3), NodeId(2)), 3);
        assert_eq!(t.distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.distance(NodeId(0), NodeId(3)), 2);
    }

    #[test]
    fn builder_expand_all_leaves() {
        let mut b = TreeBuilder::new();
        b.expand_all_leaves(3);
        b.expand_all_leaves(3);
        let t = b.finish();
        assert_eq!(t.len(), 1 + 3 + 9);
        assert!(t.is_full_dary(3));
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn subtree_nodes_bfs() {
        let t = small_tree();
        let sub = t.subtree_nodes(NodeId(1));
        assert_eq!(sub, vec![NodeId(1), NodeId(3), NodeId(4)]);
    }
}
