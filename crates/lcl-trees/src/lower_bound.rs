//! Lower-bound constructions of Section 5.4: bipolar trees, the `⊕_x` operation,
//! the hierarchy `T^x_0, T^x_1, …, T^x_k`, and the concatenations `T^x_{i←j}`.
//!
//! These trees witness the Ω(n^{1/k}) lower bounds (Lemma 5.13/5.14): `T^x_k` has
//! Θ(x^k) nodes, its layer-ℓ nodes form paths of exactly `x` nodes, and solving a
//! problem whose pruning sequence has length `k` requires coordination along a full
//! layer path.

use crate::tree::{NodeId, RootedTree};

/// A *bipolar tree* (Section 5.4): a rooted tree with two distinguished nodes `s`
/// (the root) and `t`; the unique path from `s` to `t` is the *core path*.
///
/// Each node also carries the *layer number* assigned by the hierarchical
/// construction (layer 0 for the innermost copies, layer `k` for the outermost core
/// path of `T^x_k`).
#[derive(Debug, Clone)]
pub struct BipolarTree {
    /// The underlying rooted tree (rooted at `s`).
    pub tree: RootedTree,
    /// The source pole, equal to the root of `tree`.
    pub s: NodeId,
    /// The sink pole.
    pub t: NodeId,
    /// Layer number of each node, indexed by node id.
    pub layer: Vec<usize>,
    /// The middle edge `(t₁, s₂)` for concatenations `T^x_{i←j}`, if any.
    pub middle_edge: Option<(NodeId, NodeId)>,
}

impl BipolarTree {
    /// The trivial bipolar tree `T^x_0`: a single node in layer 0 with `s = t`.
    pub fn trivial() -> Self {
        let tree = RootedTree::singleton();
        let root = tree.root();
        BipolarTree {
            tree,
            s: root,
            t: root,
            layer: vec![0],
            middle_edge: None,
        }
    }

    /// Returns the core path from `s` to `t` (inclusive).
    pub fn core_path(&self) -> Vec<NodeId> {
        crate::traversal::vertical_path(&self.tree, self.s, self.t)
            .expect("t must be a descendant of s")
    }

    /// Returns all nodes in the given layer.
    pub fn layer_nodes(&self, layer: usize) -> Vec<NodeId> {
        self.tree
            .nodes()
            .filter(|v| self.layer[v.index()] == layer)
            .collect()
    }

    /// Returns the maximum layer number.
    pub fn max_layer(&self) -> usize {
        self.layer.iter().copied().max().unwrap_or(0)
    }
}

/// Copies the whole of `sub` as a new subtree of `tree`, making `sub`'s root a child
/// of `under`. Returns the mapping from `sub` node ids to new ids in `tree`.
pub fn graft(tree: &mut RootedTree, under: NodeId, sub: &RootedTree) -> Vec<NodeId> {
    let mut map = vec![NodeId(u32::MAX); sub.len()];
    for v in sub.bfs_order() {
        let new_parent = match sub.parent(v) {
            None => under,
            Some(p) => map[p.index()],
        };
        map[v.index()] = tree.add_child(new_parent);
    }
    map
}

/// The `⊕_x` operation (Section 5.4): start with an `x`-node path `v₁ ← v₂ ← … ← v_x`
/// (oriented towards `v₁`, which becomes the new root `s`), and attach `δ − 1`
/// copies of `inner` below each path node. The new `t` is `v_x`. All path nodes are
/// assigned layer `new_layer`; grafted copies keep their own layers.
pub fn extend(inner: &BipolarTree, delta: usize, x: usize, new_layer: usize) -> BipolarTree {
    assert!(delta >= 1, "delta must be at least 1");
    assert!(x >= 1, "the core path must contain at least one node");
    let mut tree = RootedTree::singleton();
    let mut layer = vec![new_layer];
    let mut path_nodes = vec![tree.root()];
    for _ in 1..x {
        let prev = *path_nodes.last().unwrap();
        let next = tree.add_child(prev);
        layer.push(new_layer);
        path_nodes.push(next);
    }
    for &v in &path_nodes {
        for _ in 0..delta.saturating_sub(1) {
            let map = graft(&mut tree, v, &inner.tree);
            layer.resize(tree.len(), usize::MAX);
            for old in inner.tree.nodes() {
                layer[map[old.index()].index()] = inner.layer[old.index()];
            }
        }
    }
    let s = path_nodes[0];
    let t = *path_nodes.last().unwrap();
    BipolarTree {
        tree,
        s,
        t,
        layer,
        middle_edge: None,
    }
}

/// Builds the bipolar tree `T^x_k` of Section 5.4 for trees with `delta` children
/// per internal node: `T^x_0` is a single node and `T^x_i = ⊕_x T^x_{i−1}`.
pub fn t_x_k(delta: usize, x: usize, k: usize) -> BipolarTree {
    let mut current = BipolarTree::trivial();
    for i in 1..=k {
        current = extend(&current, delta, x, i);
    }
    current
}

/// Builds the concatenation `T^x_{i←j}` (Section 5.4): `T^x_i` and `T^x_j` joined by
/// the *middle edge* `{t₁, s₂}`, i.e. the root of the second tree becomes a child of
/// the sink pole of the first. The result is a bipolar tree with `s = s₁`, `t = t₂`.
pub fn t_x_i_j(delta: usize, x: usize, i: usize, j: usize) -> BipolarTree {
    let left = t_x_k(delta, x, i);
    let right = t_x_k(delta, x, j);
    concatenate(&left, &right)
}

/// Concatenates two bipolar trees by adding the middle edge `{left.t, right.s}`.
pub fn concatenate(left: &BipolarTree, right: &BipolarTree) -> BipolarTree {
    let mut tree = left.tree.clone();
    let mut layer = left.layer.clone();
    let map = graft(&mut tree, left.t, &right.tree);
    layer.resize(tree.len(), usize::MAX);
    for old in right.tree.nodes() {
        layer[map[old.index()].index()] = right.layer[old.index()];
    }
    let new_right_root = map[right.s.index()];
    let new_t = map[right.t.index()];
    BipolarTree {
        tree,
        s: left.s,
        t: new_t,
        layer,
        middle_edge: Some((left.t, new_right_root)),
    }
}

/// The number of nodes of `T^x_k` for the given parameters, computed from the
/// recurrence `|T^x_0| = 1`, `|T^x_i| = x · (1 + (δ − 1) · |T^x_{i−1}|)`.
pub fn t_x_k_size(delta: usize, x: usize, k: usize) -> usize {
    let mut size = 1usize;
    for _ in 0..k {
        size = x * (1 + (delta - 1) * size);
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_bipolar_tree() {
        let t = BipolarTree::trivial();
        assert_eq!(t.tree.len(), 1);
        assert_eq!(t.s, t.t);
        assert_eq!(t.core_path().len(), 1);
        assert_eq!(t.max_layer(), 0);
    }

    #[test]
    fn extend_once_matches_structure() {
        // T^x_1 with delta = 3, x = 5 (the setting of Figure 4 before the second level).
        let t1 = t_x_k(3, 5, 1);
        assert_eq!(t1.tree.len(), t_x_k_size(3, 5, 1));
        assert_eq!(t1.tree.len(), 5 * (1 + 2));
        assert_eq!(t1.core_path().len(), 5);
        // Every core-path node except t has delta children; t has delta - 1.
        let core = t1.core_path();
        for (idx, &v) in core.iter().enumerate() {
            let expected = if idx + 1 == core.len() { 2 } else { 3 };
            assert_eq!(t1.tree.num_children(v), expected, "node {idx} of core path");
        }
        t1.tree.validate().unwrap();
    }

    #[test]
    fn figure_4_node_count() {
        // Figure 4: delta = 3, x = 5, k = 2.
        let t = t_x_k(3, 5, 2);
        assert_eq!(t.tree.len(), t_x_k_size(3, 5, 2));
        assert_eq!(t.tree.len(), 5 * (1 + 2 * 15));
        assert_eq!(t.max_layer(), 2);
        // Layer-2 nodes form the core path of exactly x nodes.
        assert_eq!(t.layer_nodes(2).len(), 5);
        // Layer-1 nodes form paths of exactly x nodes each: 2 copies per core node.
        assert_eq!(t.layer_nodes(1).len(), 5 * 2 * 5);
        t.tree.validate().unwrap();
    }

    #[test]
    fn size_grows_as_x_to_the_k() {
        for k in 1..=3 {
            for x in [2usize, 4, 8] {
                let predicted = t_x_k_size(2, x, k);
                let built = t_x_k(2, x, k);
                assert_eq!(built.tree.len(), predicted);
            }
        }
        // Θ(x^k): doubling x multiplies the size by roughly 2^k.
        let small = t_x_k_size(2, 8, 3) as f64;
        let large = t_x_k_size(2, 16, 3) as f64;
        let ratio = large / small;
        assert!(ratio > 6.0 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn degrees_in_t_x_k() {
        // Section 5.4: for x ≥ 2 and 1 ≤ j ≤ k there are three possible degrees:
        // 1 (layer-0 nodes), δ (the root and the last node of layer paths), δ + 1
        // (everything else). Degree counts the parent too, except for the root.
        let delta = 3;
        let t = t_x_k(delta, 4, 2);
        for v in t.tree.nodes() {
            let degree = t.tree.num_children(v) + usize::from(t.tree.parent(v).is_some());
            if t.layer[v.index()] == 0 {
                assert_eq!(degree, 1, "layer-0 node {v}");
            } else {
                assert!(
                    degree == delta || degree == delta + 1,
                    "unexpected degree {degree} at {v}"
                );
            }
        }
    }

    #[test]
    fn concatenation_has_middle_edge() {
        let t = t_x_i_j(3, 4, 2, 1);
        let (a, b) = t.middle_edge.unwrap();
        assert_eq!(t.tree.parent(b), Some(a));
        assert_eq!(t.tree.len(), t_x_k_size(3, 4, 2) + t_x_k_size(3, 4, 1));
        // s and t are the poles of the two halves.
        assert_eq!(t.s, NodeId(0));
        assert!(t.layer[t.s.index()] == 2);
        assert!(t.layer[t.t.index()] == 1);
        t.tree.validate().unwrap();
    }

    #[test]
    fn t_x_i_i_is_extend_2x() {
        // Observation from the paper: T^x_{i←i} is simply ⊕_{2x} T^x_{i−1}.
        let delta = 2;
        let x = 3;
        let a = t_x_i_j(delta, x, 2, 2);
        let inner = t_x_k(delta, x, 1);
        let b = extend(&inner, delta, 2 * x, 2);
        assert_eq!(a.tree.len(), b.tree.len());
        assert_eq!(a.core_path().len(), b.core_path().len());
    }

    #[test]
    fn graft_preserves_shape() {
        let mut base = RootedTree::singleton();
        let sub = crate::generators::balanced(2, 2);
        let root = base.root();
        let map = graft(&mut base, root, &sub);
        assert_eq!(base.len(), 1 + sub.len());
        assert_eq!(base.num_children(root), 1);
        assert_eq!(base.num_children(map[sub.root().index()]), 2);
        base.validate().unwrap();
    }
}
