//! Generators for the tree families used throughout the paper: balanced and random
//! full δ-ary trees (Section 4.1), directed paths (δ = 1), and hairy paths
//! (Definition 4.11).

use lcl_rand::SplitMix64;

use crate::tree::{NodeId, RootedTree, TreeBuilder};

/// Builds the perfectly balanced full δ-ary tree of the given `depth`
/// (a *complete* δ-ary tree: every internal node has exactly δ children and all
/// leaves are at depth `depth`).
pub fn balanced(delta: usize, depth: usize) -> RootedTree {
    assert!(delta >= 1, "delta must be at least 1");
    let mut b = TreeBuilder::new();
    for _ in 0..depth {
        b.expand_all_leaves(delta);
    }
    b.finish()
}

/// Builds the smallest perfectly balanced full δ-ary tree with at least `min_nodes`
/// nodes ("as balanced as possible", used in the proofs of Lemma 6.4 and 6.7).
pub fn balanced_with_at_least(delta: usize, min_nodes: usize) -> RootedTree {
    balanced(delta, minimal_complete_depth(delta, min_nodes))
}

/// The smallest depth whose complete δ-ary tree has at least `min_nodes` nodes.
pub fn minimal_complete_depth(delta: usize, min_nodes: usize) -> usize {
    assert!(delta >= 1);
    let mut depth = 0usize;
    while complete_tree_size(delta, depth) < min_nodes {
        depth += 1;
    }
    depth
}

/// Number of nodes of the complete δ-ary tree of the given depth.
pub fn complete_tree_size(delta: usize, depth: usize) -> usize {
    if delta == 1 {
        return depth + 1;
    }
    let mut size = 0usize;
    let mut level = 1usize;
    for _ in 0..=depth {
        size += level;
        level *= delta;
    }
    size
}

/// Builds a directed path with `len` nodes (a full 1-ary tree). The root is the
/// first node; each node's single child continues the path.
pub fn path(len: usize) -> RootedTree {
    assert!(len >= 1);
    let mut t = RootedTree::singleton();
    let mut cur = t.root();
    for _ in 1..len {
        cur = t.add_child(cur);
    }
    t
}

/// Builds a *hairy path* (Definition 4.11): a directed path of `spine_len` internal
/// nodes where every spine node has exactly `delta` children — one continuing the
/// spine (except for the last spine node) and the rest being leaves.
///
/// The returned tree is a full δ-ary tree.
pub fn hairy_path(delta: usize, spine_len: usize) -> RootedTree {
    assert!(delta >= 1);
    assert!(spine_len >= 1);
    let mut t = RootedTree::singleton();
    let mut cur = t.root();
    for i in 0..spine_len {
        let children = t.add_children(cur, delta);
        if i + 1 < spine_len {
            // Continue the spine through the first child; the rest stay leaves.
            cur = children[0];
        }
    }
    t
}

/// Builds a uniformly random full δ-ary tree with at least `min_nodes` nodes, by
/// repeatedly expanding a random leaf into an internal node with δ children.
///
/// The result always satisfies `is_full_dary(delta)` and has
/// `min_nodes ≤ n ≤ min_nodes + delta` nodes.
pub fn random_full(delta: usize, min_nodes: usize, seed: u64) -> RootedTree {
    assert!(delta >= 1);
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut t = RootedTree::singleton();
    let mut leaves: Vec<NodeId> = vec![t.root()];
    while t.len() < min_nodes {
        let idx = rng.gen_index(leaves.len());
        let leaf = leaves.swap_remove(idx);
        let new_children = t.add_children(leaf, delta);
        leaves.extend(new_children);
    }
    t
}

/// Builds a random full δ-ary tree whose expansion is biased towards deep, skinny
/// shapes (`skew` close to 1.0) or shallow, bushy shapes (`skew` close to 0.0).
///
/// With `skew = 1.0` the most recently created leaf is always expanded, producing a
/// hairy path; with `skew = 0.0` the oldest leaf is expanded, producing a balanced
/// tree; values in between interpolate. Useful for stress-testing solvers whose
/// round complexity depends on tree height.
pub fn random_skewed(delta: usize, min_nodes: usize, skew: f64, seed: u64) -> RootedTree {
    assert!(delta >= 1);
    assert!((0.0..=1.0).contains(&skew), "skew must be in [0, 1]");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut t = RootedTree::singleton();
    let mut leaves: Vec<NodeId> = vec![t.root()];
    while t.len() < min_nodes {
        let idx = if rng.gen_bool(skew) {
            leaves.len() - 1
        } else {
            rng.gen_index(leaves.len())
        };
        let leaf = leaves.remove(idx);
        let new_children = t.add_children(leaf, delta);
        leaves.extend(new_children);
    }
    t
}

/// Builds the tree produced by attaching a balanced full δ-ary tree of depth
/// `subtree_depth` below each spine node of a directed path of length `spine_len`
/// (in addition to the spine child). The spine nodes therefore have `delta`
/// children; this matches the "imagine δ − 1 additional trees connected to each node
/// of the path" simulation used in the proof of Theorem 7.7.
pub fn path_with_balanced_subtrees(
    delta: usize,
    spine_len: usize,
    subtree_depth: usize,
) -> RootedTree {
    assert!(delta >= 1);
    assert!(spine_len >= 1);
    let mut t = RootedTree::singleton();
    let mut cur = t.root();
    for i in 0..spine_len {
        let children = t.add_children(cur, delta);
        // Children 1..delta carry balanced subtrees; child 0 continues the spine.
        for &c in children.iter().skip(1) {
            attach_balanced(&mut t, c, delta, subtree_depth);
        }
        if i + 1 < spine_len {
            cur = children[0];
        } else {
            attach_balanced(&mut t, children[0], delta, subtree_depth);
        }
    }
    t
}

/// Attaches a balanced full δ-ary tree of the given depth below `node` (which must
/// currently be a leaf of `tree`).
pub fn attach_balanced(tree: &mut RootedTree, node: NodeId, delta: usize, depth: usize) {
    let mut frontier = vec![node];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * delta);
        for v in frontier {
            next.extend(tree.add_children(v, delta));
        }
        frontier = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_sizes() {
        assert_eq!(balanced(2, 0).len(), 1);
        assert_eq!(balanced(2, 3).len(), 15);
        assert_eq!(balanced(3, 2).len(), 13);
        assert_eq!(complete_tree_size(2, 3), 15);
        assert_eq!(complete_tree_size(1, 4), 5);
        assert_eq!(complete_tree_size(3, 2), 13);
    }

    #[test]
    fn balanced_is_full_and_uniform_depth() {
        let t = balanced(3, 3);
        assert!(t.is_full_dary(3));
        let depths = t.depths();
        for leaf in t.leaves() {
            assert_eq!(depths[leaf.index()], 3);
        }
        t.validate().unwrap();
    }

    #[test]
    fn balanced_with_at_least_minimal() {
        let t = balanced_with_at_least(2, 10);
        assert!(t.len() >= 10);
        assert_eq!(t.len(), 15);
        assert_eq!(balanced_with_at_least(2, 1).len(), 1);
        assert_eq!(balanced_with_at_least(2, 3).len(), 3);
    }

    #[test]
    fn path_structure() {
        let t = path(5);
        assert_eq!(t.len(), 5);
        assert!(t.is_full_dary(1));
        assert_eq!(t.height(), 4);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn hairy_path_structure() {
        let t = hairy_path(3, 4);
        assert!(t.is_full_dary(3));
        assert_eq!(t.internal_count(), 4);
        assert_eq!(t.len(), 1 + 4 * 3);
        assert_eq!(t.height(), 4);
        t.validate().unwrap();
    }

    #[test]
    fn random_full_is_full_dary() {
        for seed in 0..5 {
            let t = random_full(2, 101, seed);
            assert!(t.is_full_dary(2));
            assert!(t.len() >= 101);
            assert!(t.len() <= 103);
            t.validate().unwrap();
        }
        let t3 = random_full(3, 100, 7);
        assert!(t3.is_full_dary(3));
    }

    #[test]
    fn random_full_sizes_are_congruent() {
        // A full delta-ary tree always has n ≡ 1 (mod delta) nodes.
        for seed in 0..5 {
            let t = random_full(3, 50, seed);
            assert_eq!((t.len() - 1) % 3, 0);
        }
    }

    #[test]
    fn random_skewed_extremes() {
        let skinny = random_skewed(2, 41, 1.0, 1);
        let bushy = random_skewed(2, 41, 0.0, 1);
        assert!(skinny.is_full_dary(2));
        assert!(bushy.is_full_dary(2));
        assert!(skinny.height() > bushy.height());
    }

    #[test]
    fn path_with_subtrees_is_full() {
        let t = path_with_balanced_subtrees(2, 5, 2);
        assert!(t.is_full_dary(2));
        assert!(t.height() >= 5);
        t.validate().unwrap();
    }

    #[test]
    fn attach_balanced_expands_leaf() {
        let mut t = RootedTree::singleton();
        let r = t.root();
        attach_balanced(&mut t, r, 2, 3);
        assert_eq!(t.len(), 15);
        assert!(t.is_full_dary(2));
    }
}
