//! Compressed-sparse-row (CSR) view of rooted trees, for million-node scale.
//!
//! [`RootedTree`] stores one `Vec<NodeId>` per node, which is the right shape
//! for incremental construction and small-tree algorithms but wastes an
//! allocation (and a pointer chase) per node. A [`FlatTree`] packs the same
//! structure into three flat arrays:
//!
//! * `parent[v]` — the parent of `v`, or [`FlatTree::NO_PARENT`] for the root;
//! * `child_start[v] .. child_start[v + 1]` — the range of `children` holding
//!   the children of `v`, in port order;
//! * `children` — all child ids, concatenated.
//!
//! This is the representation the parallel labeling validator in `lcl-verify`
//! shards over: contiguous, `Sync`, and O(1) to slice at any node range. A
//! `FlatTree` is immutable; build it either [from a `RootedTree`](FlatTree::from_tree)
//! or directly with the streaming generators ([`FlatTree::random_full`],
//! [`FlatTree::balanced`], [`FlatTree::hairy_path`]), which construct
//! million-node δ-ary trees from a parent array without ever touching a
//! per-node `Vec`.
//!
//! # The level index
//!
//! The level-synchronous solvers in `lcl-algorithms` process the tree one
//! depth level at a time. [`LevelIndex`] precomputes everything those passes
//! need, in two allocation-free passes over the CSR arrays (one forward BFS,
//! one reverse scan):
//!
//! * `order` — the nodes in BFS order ([`LevelIndex::bfs_order`]), identical
//!   to [`RootedTree::bfs_order`]. Positions into `order` are called *BFS
//!   positions*; the nodes of depth `d` occupy the contiguous slice
//!   `order[level_start[d] .. level_start[d + 1]]` ([`LevelIndex::level`]).
//! * `parent_pos[i]` — the BFS position of the parent of the node at BFS
//!   position `i` (always `< level_start[d]` for a node at depth `d`), and
//! * `first_child_pos[i] .. first_child_pos[i + 1]` — the BFS positions of
//!   its children. Because BFS appends each node's children consecutively,
//!   these offsets are *monotone*: the BFS view is itself a CSR tree indexed
//!   by position. A per-level pass that walks parents in a contiguous
//!   position range therefore writes a contiguous child range — which is what
//!   lets the flat solvers shard a level across `std::thread::scope` workers
//!   with nothing but `split_at_mut`.
//! * `depth`, `subtree_size`, `subtree_height` — per-node (id-indexed)
//!   aggregates; depths come out of the BFS pass, sizes and heights out of
//!   the reverse scan (children precede parents in reverse BFS order).

use lcl_rand::SplitMix64;

use crate::tree::{NodeId, RootedTree};

/// A rooted tree in compressed-sparse-row form. See the module documentation.
///
/// The CSR arrays are `pub(crate)` so the [`crate::dynamic`] layer can edit
/// them in place; everything outside this crate sees an immutable tree.
#[derive(Debug, Clone)]
pub struct FlatTree {
    pub(crate) parent: Vec<u32>,
    pub(crate) child_start: Vec<u32>,
    pub(crate) children: Vec<u32>,
    pub(crate) root: u32,
    /// Lazily computed node-id-indexed depths ([`FlatTree::depths`]).
    pub(crate) depth_cache: std::sync::OnceLock<Vec<u32>>,
}

impl PartialEq for FlatTree {
    fn eq(&self, other: &Self) -> bool {
        // The depth cache is derived state; equality is structural.
        self.parent == other.parent
            && self.child_start == other.child_start
            && self.children == other.children
            && self.root == other.root
    }
}

impl Eq for FlatTree {}

impl FlatTree {
    /// Sentinel stored in the parent array for the root node.
    pub const NO_PARENT: u32 = u32::MAX;

    /// Builds the CSR view of `tree`. Children keep their port order.
    pub fn from_tree(tree: &RootedTree) -> Self {
        let n = tree.len();
        let mut parent = Vec::with_capacity(n);
        let mut child_start = Vec::with_capacity(n + 1);
        let mut children = Vec::with_capacity(n.saturating_sub(1));
        child_start.push(0);
        for v in tree.nodes() {
            parent.push(match tree.parent(v) {
                Some(p) => p.0,
                None => Self::NO_PARENT,
            });
            children.extend(tree.children(v).iter().map(|c| c.0));
            child_start.push(children.len() as u32);
        }
        FlatTree {
            parent,
            child_start,
            children,
            root: tree.root().0,
            depth_cache: std::sync::OnceLock::new(),
        }
    }

    /// Builds the CSR arrays from a parent array alone (entry `NO_PARENT`
    /// marks the root). Children end up in ascending id order, which matches
    /// the port order of every generator in this crate (children are created
    /// with consecutive, increasing ids).
    pub(crate) fn from_parent_array(parent: Vec<u32>) -> Self {
        let n = parent.len();
        assert!(n >= 1, "tree must have at least one node");
        assert!(n < Self::NO_PARENT as usize, "tree too large for u32 ids");
        let mut child_start = vec![0u32; n + 1];
        let mut root = None;
        for (v, &p) in parent.iter().enumerate() {
            if p == Self::NO_PARENT {
                assert!(root.is_none(), "parent array has multiple roots");
                root = Some(v as u32);
            } else {
                assert!((p as usize) < n, "parent {p} of node {v} out of bounds");
                child_start[p as usize + 1] += 1;
            }
        }
        let root = root.expect("parent array has no root");
        for i in 0..n {
            child_start[i + 1] += child_start[i];
        }
        let mut cursor = child_start.clone();
        let mut children = vec![0u32; n - 1];
        // Ascending v keeps each node's children sorted by id.
        for (v, &p) in parent.iter().enumerate() {
            if p != Self::NO_PARENT {
                children[cursor[p as usize] as usize] = v as u32;
                cursor[p as usize] += 1;
            }
        }
        FlatTree {
            parent,
            child_start,
            children,
            root,
            depth_cache: std::sync::OnceLock::new(),
        }
    }

    /// Streaming counterpart of [`crate::generators::random_full`]: a uniformly
    /// random full δ-ary tree with at least `min_nodes` nodes, grown by
    /// expanding a random leaf until the size bound is met. Only the parent
    /// array and a flat leaf list are touched during growth, so million-node
    /// trees build in O(n) time and O(n) words with no per-node allocation.
    pub fn random_full(delta: usize, min_nodes: usize, seed: u64) -> Self {
        assert!(delta >= 1, "delta must be at least 1");
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut parent: Vec<u32> = Vec::with_capacity(min_nodes + delta);
        parent.push(Self::NO_PARENT);
        let mut leaves: Vec<u32> = vec![0];
        while parent.len() < min_nodes {
            let idx = rng.gen_index(leaves.len());
            let leaf = leaves.swap_remove(idx);
            for _ in 0..delta {
                leaves.push(parent.len() as u32);
                parent.push(leaf);
            }
        }
        Self::from_parent_array(parent)
    }

    /// Streaming counterpart of [`crate::generators::balanced`]: the complete
    /// full δ-ary tree of the given depth.
    pub fn balanced(delta: usize, depth: usize) -> Self {
        assert!(delta >= 1, "delta must be at least 1");
        let total = crate::generators::complete_tree_size(delta, depth);
        let mut parent: Vec<u32> = Vec::with_capacity(total);
        parent.push(Self::NO_PARENT);
        let mut level_start = 0usize;
        for _ in 0..depth {
            let level_end = parent.len();
            for p in level_start..level_end {
                for _ in 0..delta {
                    parent.push(p as u32);
                }
            }
            level_start = level_end;
        }
        Self::from_parent_array(parent)
    }

    /// Streaming counterpart of [`crate::generators::hairy_path`]: a directed
    /// path of `spine_len` internal nodes, each with δ children — one
    /// continuing the spine (except the last), the rest leaves.
    pub fn hairy_path(delta: usize, spine_len: usize) -> Self {
        assert!(delta >= 1 && spine_len >= 1);
        let mut parent: Vec<u32> = Vec::with_capacity(1 + spine_len * delta);
        parent.push(Self::NO_PARENT);
        let mut cur = 0u32;
        for i in 0..spine_len {
            let first_child = parent.len() as u32;
            for _ in 0..delta {
                parent.push(cur);
            }
            if i + 1 < spine_len {
                cur = first_child;
            }
        }
        Self::from_parent_array(parent)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the tree has no nodes (never produced by the constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: u32) -> Option<u32> {
        match self.parent[v as usize] {
            Self::NO_PARENT => None,
            p => Some(p),
        }
    }

    /// The raw parent array (`NO_PARENT` marks the root).
    #[inline]
    pub fn parent_array(&self) -> &[u32] {
        &self.parent
    }

    /// The children of `v`, in port order.
    #[inline]
    pub fn children(&self, v: u32) -> &[u32] {
        let start = self.child_start[v as usize] as usize;
        let end = self.child_start[v as usize + 1] as usize;
        &self.children[start..end]
    }

    /// The number of children of `v`.
    #[inline]
    pub fn num_children(&self, v: u32) -> usize {
        (self.child_start[v as usize + 1] - self.child_start[v as usize]) as usize
    }

    /// `true` if `v` has no children.
    #[inline]
    pub fn is_leaf(&self, v: u32) -> bool {
        self.num_children(v) == 0
    }

    /// `true` if every internal node has exactly `delta` children.
    pub fn is_full_dary(&self, delta: usize) -> bool {
        (0..self.len() as u32).all(|v| self.is_leaf(v) || self.num_children(v) == delta)
    }

    /// The depth of every node, indexed by node id. Computed by one BFS pass
    /// over the CSR arrays on first use and memoized for the lifetime of the
    /// tree (a `FlatTree` is immutable outside this crate), so repeated calls
    /// allocate nothing. Callers holding a [`LevelIndex`] should prefer
    /// [`LevelIndex::depths`], which shares its arrays with the solvers.
    pub fn depths(&self) -> &[u32] {
        self.depth_cache.get_or_init(|| {
            let mut depth = vec![0u32; self.len()];
            let mut queue = std::collections::VecDeque::with_capacity(self.len());
            queue.push_back(self.root);
            while let Some(v) = queue.pop_front() {
                for &c in self.children(v) {
                    depth[c as usize] = depth[v as usize] + 1;
                    queue.push_back(c);
                }
            }
            depth
        })
    }

    /// The height of the tree (maximum depth).
    pub fn height(&self) -> usize {
        self.depths().iter().copied().max().unwrap_or(0) as usize
    }

    /// Expands the CSR view back into an arena [`RootedTree`]. Intended for
    /// small-tree agreement tests; costs one `Vec` per node again.
    pub fn to_rooted(&self) -> RootedTree {
        assert_eq!(
            self.root, 0,
            "to_rooted requires the root at id 0, as all constructors place it"
        );
        let mut tree = RootedTree::singleton();
        // All constructors produce parent[v] < v for v > 0, so a single
        // ascending pass can re-add every node. Verify as we go.
        for v in 1..self.len() as u32 {
            let p = self.parent[v as usize];
            assert!(p < v, "flat tree is not in creation order");
            let id = tree.add_child(NodeId(p));
            assert_eq!(id, NodeId(v), "children must be contiguous per parent");
        }
        tree
    }

    /// Builds the [`LevelIndex`] of this tree: BFS order, per-level slices,
    /// depths, and subtree sizes/heights. See the module documentation for the
    /// layout. O(n) time, two passes, no per-node allocation.
    pub fn level_index(&self) -> LevelIndex {
        LevelIndex::new(self)
    }

    /// Checks internal CSR consistency (parent/child symmetry, single root,
    /// connectivity). Intended for tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.is_empty() {
            return Err("tree has no nodes".into());
        }
        if self.child_start.len() != self.len() + 1 {
            return Err("child_start has the wrong length".into());
        }
        if self.children.len() != self.len() - 1 {
            return Err("children array must hold exactly n - 1 edges".into());
        }
        let mut roots = 0usize;
        for v in 0..self.len() as u32 {
            match self.parent(v) {
                None => roots += 1,
                Some(p) => {
                    if !self.children(p).contains(&v) {
                        return Err(format!("node {v} missing from children of {p}"));
                    }
                }
            }
            for &c in self.children(v) {
                if self.parent(c) != Some(v) {
                    return Err(format!("child {c} of {v} has wrong parent"));
                }
            }
        }
        if roots != 1 {
            return Err(format!("expected exactly one root, found {roots}"));
        }
        // Connectivity: count the nodes actually reachable from the root
        // (depths() is indexed by id and always has length n, so it cannot
        // detect an unreachable component).
        let mut reached = 0usize;
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            reached += 1;
            stack.extend_from_slice(self.children(v));
        }
        if reached != self.len() {
            return Err(format!(
                "tree is not connected: {reached} of {} nodes reachable from the root",
                self.len()
            ));
        }
        Ok(())
    }
}

/// The precomputed level structure of a [`FlatTree`]. See the module
/// documentation for the layout and the safe-sharding invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelIndex {
    /// BFS positions → node ids.
    pub(crate) order: Vec<u32>,
    /// `level_start[d] .. level_start[d + 1]` is the position range of depth
    /// `d`; `level_start.len() == height + 2`.
    pub(crate) level_start: Vec<u32>,
    /// Node id → depth.
    pub(crate) depth: Vec<u32>,
    /// Node id → size of its subtree (1 for leaves).
    pub(crate) subtree_size: Vec<u32>,
    /// Node id → height of its subtree (0 for leaves).
    pub(crate) subtree_height: Vec<u32>,
    /// BFS position → BFS position of the parent (`NO_POS` at the root).
    pub(crate) parent_pos: Vec<u32>,
    /// BFS position → first BFS position of its children; monotone, with a
    /// trailing `n` entry, so children of position `i` are
    /// `first_child_pos[i] .. first_child_pos[i + 1]`.
    pub(crate) first_child_pos: Vec<u32>,
}

impl LevelIndex {
    /// Sentinel stored in [`Self::parent_positions`] for the root.
    pub const NO_POS: u32 = u32::MAX;

    fn new(tree: &FlatTree) -> Self {
        let n = tree.len();
        let mut order = Vec::with_capacity(n);
        let mut parent_pos = Vec::with_capacity(n);
        let mut first_child_pos = Vec::with_capacity(n + 1);
        let mut depth = vec![0u32; n];
        let mut level_start = vec![0u32];

        // Pass 1: BFS. `order` doubles as the queue; `head` is the cursor.
        order.push(tree.root());
        parent_pos.push(Self::NO_POS);
        let mut head = 0usize;
        let mut current_level = 0u32;
        while head < order.len() {
            let v = order[head];
            if depth[v as usize] > current_level {
                current_level = depth[v as usize];
                level_start.push(head as u32);
            }
            first_child_pos.push(order.len() as u32);
            for &c in tree.children(v) {
                depth[c as usize] = depth[v as usize] + 1;
                parent_pos.push(head as u32);
                order.push(c);
            }
            head += 1;
        }
        level_start.push(n as u32);
        first_child_pos.push(n as u32);

        // Pass 2: reverse BFS accumulates subtree sizes and heights (every
        // child is processed before its parent).
        let mut subtree_size = vec![1u32; n];
        let mut subtree_height = vec![0u32; n];
        for pos in (1..n).rev() {
            let v = order[pos] as usize;
            let p = tree.parent_array()[v] as usize;
            subtree_size[p] += subtree_size[v];
            subtree_height[p] = subtree_height[p].max(subtree_height[v] + 1);
        }

        LevelIndex {
            order,
            level_start,
            depth,
            subtree_size,
            subtree_height,
            parent_pos,
            first_child_pos,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the index covers no nodes (never produced by [`FlatTree`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The height of the tree (maximum depth).
    #[inline]
    pub fn height(&self) -> usize {
        self.level_start.len() - 2
    }

    /// Number of levels (`height + 1`).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.level_start.len() - 1
    }

    /// The nodes of depth `d`, in BFS order.
    #[inline]
    pub fn level(&self, d: usize) -> &[u32] {
        let lo = self.level_start[d] as usize;
        let hi = self.level_start[d + 1] as usize;
        &self.order[lo..hi]
    }

    /// The BFS-position range of depth `d`.
    #[inline]
    pub fn level_range(&self, d: usize) -> std::ops::Range<usize> {
        self.level_start[d] as usize..self.level_start[d + 1] as usize
    }

    /// All nodes in BFS order (position → node id).
    #[inline]
    pub fn bfs_order(&self) -> &[u32] {
        &self.order
    }

    /// Depth of every node, indexed by node id.
    #[inline]
    pub fn depths(&self) -> &[u32] {
        &self.depth
    }

    /// Subtree size of every node, indexed by node id.
    #[inline]
    pub fn subtree_sizes(&self) -> &[u32] {
        &self.subtree_size
    }

    /// Subtree height of every node, indexed by node id (0 for leaves).
    #[inline]
    pub fn subtree_heights(&self) -> &[u32] {
        &self.subtree_height
    }

    /// BFS position → BFS position of the parent ([`Self::NO_POS`] at the
    /// root, which always sits at position 0).
    #[inline]
    pub fn parent_positions(&self) -> &[u32] {
        &self.parent_pos
    }

    /// The monotone child offsets over BFS positions: children of the node at
    /// position `i` occupy positions `offsets[i] .. offsets[i + 1]`.
    #[inline]
    pub fn child_pos_offsets(&self) -> &[u32] {
        &self.first_child_pos
    }

    /// The BFS-position range of the children of the node at position `pos`.
    #[inline]
    pub fn children_pos(&self, pos: usize) -> std::ops::Range<usize> {
        self.first_child_pos[pos] as usize..self.first_child_pos[pos + 1] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn from_tree_preserves_structure() {
        let tree = generators::random_full(2, 101, 3);
        let flat = FlatTree::from_tree(&tree);
        assert_eq!(flat.len(), tree.len());
        assert_eq!(flat.root(), tree.root().0);
        for v in tree.nodes() {
            assert_eq!(flat.parent(v.0), tree.parent(v).map(|p| p.0));
            let expected: Vec<u32> = tree.children(v).iter().map(|c| c.0).collect();
            assert_eq!(flat.children(v.0), expected.as_slice());
        }
        flat.validate().unwrap();
    }

    #[test]
    fn streaming_random_full_matches_arena_generator() {
        // Same seed, same leaf-expansion process, same tree.
        for seed in 0..4 {
            let arena = generators::random_full(2, 201, seed);
            let flat = FlatTree::random_full(2, 201, seed);
            assert_eq!(flat, FlatTree::from_tree(&arena), "seed {seed}");
        }
        let arena3 = generators::random_full(3, 100, 9);
        assert_eq!(
            FlatTree::random_full(3, 100, 9),
            FlatTree::from_tree(&arena3)
        );
    }

    #[test]
    fn streaming_balanced_matches_arena_generator() {
        for (delta, depth) in [(1, 5), (2, 4), (3, 3)] {
            let arena = generators::balanced(delta, depth);
            assert_eq!(
                FlatTree::balanced(delta, depth),
                FlatTree::from_tree(&arena),
                "delta {delta} depth {depth}"
            );
        }
    }

    #[test]
    fn streaming_hairy_path_matches_arena_generator() {
        for (delta, spine) in [(1, 4), (2, 6), (3, 5)] {
            let arena = generators::hairy_path(delta, spine);
            assert_eq!(
                FlatTree::hairy_path(delta, spine),
                FlatTree::from_tree(&arena),
                "delta {delta} spine {spine}"
            );
        }
    }

    #[test]
    fn to_rooted_round_trips() {
        let flat = FlatTree::random_full(3, 151, 5);
        let rooted = flat.to_rooted();
        rooted.validate().unwrap();
        assert_eq!(FlatTree::from_tree(&rooted), flat);
    }

    #[test]
    fn depths_and_height_match_arena() {
        let arena = generators::random_skewed(2, 101, 0.7, 2);
        let flat = FlatTree::from_tree(&arena);
        let expected: Vec<u32> = arena.depths().iter().map(|&d| d as u32).collect();
        assert_eq!(flat.depths(), expected.as_slice());
        assert_eq!(flat.height(), arena.height());
        // Memoized: the second call returns the same cached slice.
        assert_eq!(flat.depths().as_ptr(), flat.depths().as_ptr());
    }

    #[test]
    fn large_tree_is_well_formed() {
        let flat = FlatTree::random_full(2, 100_001, 1);
        assert!(flat.len() >= 100_001);
        assert!(flat.is_full_dary(2));
        flat.validate().unwrap();
    }

    #[test]
    fn validate_detects_unreachable_cycle() {
        // A root plus a detached 2-cycle: parent/child symmetry holds and
        // there is exactly one root, so only the connectivity check can
        // reject it.
        let broken = FlatTree::from_parent_array(vec![FlatTree::NO_PARENT, 2, 1]);
        let err = broken.validate().unwrap_err();
        assert!(err.contains("not connected"), "{err}");
    }

    #[test]
    fn singleton_flat_tree() {
        let flat = FlatTree::balanced(2, 0);
        assert_eq!(flat.len(), 1);
        assert!(flat.is_leaf(0));
        assert_eq!(flat.height(), 0);
        flat.validate().unwrap();
    }

    #[test]
    fn level_index_matches_arena_traversals() {
        let arena = generators::random_skewed(2, 301, 0.7, 5);
        let flat = FlatTree::from_tree(&arena);
        let idx = flat.level_index();
        let bfs: Vec<u32> = arena.bfs_order().iter().map(|v| v.0).collect();
        assert_eq!(idx.bfs_order(), bfs.as_slice());
        let depths: Vec<u32> = arena.depths().iter().map(|&d| d as u32).collect();
        assert_eq!(idx.depths(), depths.as_slice());
        let sizes: Vec<u32> = arena.subtree_sizes().iter().map(|&s| s as u32).collect();
        assert_eq!(idx.subtree_sizes(), sizes.as_slice());
        let heights: Vec<u32> = arena.subtree_heights().iter().map(|&h| h as u32).collect();
        assert_eq!(idx.subtree_heights(), heights.as_slice());
        assert_eq!(idx.height(), arena.height());
    }

    #[test]
    fn level_index_level_slices_partition_the_bfs_order() {
        let flat = FlatTree::random_full(3, 301, 9);
        let idx = flat.level_index();
        let mut seen = 0usize;
        for d in 0..idx.num_levels() {
            let level = idx.level(d);
            assert!(!level.is_empty(), "level {d} empty");
            for &v in level {
                assert_eq!(idx.depths()[v as usize] as usize, d);
            }
            assert_eq!(idx.level_range(d).start, seen);
            seen += level.len();
        }
        assert_eq!(seen, flat.len());
    }

    #[test]
    fn level_index_bfs_view_is_a_csr_tree() {
        let flat = FlatTree::random_full(2, 201, 4);
        let idx = flat.level_index();
        let order = idx.bfs_order();
        let offsets = idx.child_pos_offsets();
        // Monotone offsets; children ranges agree with the id-space CSR view.
        for pos in 0..flat.len() {
            assert!(offsets[pos] <= offsets[pos + 1]);
            let children: Vec<u32> = idx.children_pos(pos).map(|q| order[q]).collect();
            assert_eq!(children.as_slice(), flat.children(order[pos]));
            for q in idx.children_pos(pos) {
                assert_eq!(idx.parent_positions()[q] as usize, pos);
            }
        }
        assert_eq!(idx.parent_positions()[0], LevelIndex::NO_POS);
    }

    #[test]
    fn level_index_singleton() {
        let idx = FlatTree::balanced(2, 0).level_index();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.num_levels(), 1);
        assert_eq!(idx.height(), 0);
        assert_eq!(idx.level(0), &[0]);
        assert!(idx.children_pos(0).is_empty());
        assert_eq!(idx.subtree_sizes(), &[1]);
        assert_eq!(idx.subtree_heights(), &[0]);
    }
}
