//! Traversal helpers that are not methods of [`RootedTree`]: level structure,
//! root-to-leaf paths (Definition 4.10), and vertical paths (sub-paths of
//! root-to-leaf paths, used heavily in Sections 5–7).

use crate::tree::{NodeId, RootedTree};

/// Groups the nodes of `tree` by depth: entry `i` lists all nodes at depth `i`.
pub fn nodes_by_depth(tree: &RootedTree) -> Vec<Vec<NodeId>> {
    let depths = tree.depths();
    let height = depths.iter().copied().max().unwrap_or(0);
    let mut levels = vec![Vec::new(); height + 1];
    for v in tree.nodes() {
        levels[depths[v.index()]].push(v);
    }
    levels
}

/// Returns every root-to-leaf path (Definition 4.10), each as a vector of nodes
/// starting at the root and ending at a leaf.
pub fn root_to_leaf_paths(tree: &RootedTree) -> Vec<Vec<NodeId>> {
    tree.leaves()
        .map(|leaf| {
            let mut path = tree.ancestor_chain(leaf, tree.len());
            path.reverse();
            path
        })
        .collect()
}

/// Returns the vertical path from `top` down to `bottom`, or `None` if `bottom` is
/// not a descendant of `top`. The result starts at `top` and ends at `bottom`.
pub fn vertical_path(tree: &RootedTree, top: NodeId, bottom: NodeId) -> Option<Vec<NodeId>> {
    let mut path = vec![bottom];
    let mut cur = bottom;
    while cur != top {
        cur = tree.parent(cur)?;
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Returns `true` if `tree` is a *hairy path* (Definition 4.11) for the given `delta`:
/// a full δ-ary tree obtained by attaching leaves to a directed path such that all
/// path nodes have exactly δ children.
pub fn is_hairy_path(tree: &RootedTree, delta: usize) -> bool {
    if !tree.is_full_dary(delta) {
        return false;
    }
    // Internal nodes must form a single vertical path: each internal node has at
    // most one internal child.
    let mut cur = tree.root();
    if tree.is_leaf(cur) {
        return tree.len() == 1;
    }
    loop {
        let internal_children: Vec<NodeId> = tree
            .children(cur)
            .iter()
            .copied()
            .filter(|&c| tree.is_internal(c))
            .collect();
        match internal_children.len() {
            0 => break,
            1 => cur = internal_children[0],
            _ => return false,
        }
    }
    // Every internal node must be on the path we just walked; equivalently, the
    // number of internal nodes equals the path length we traversed.
    let mut path_len = 1;
    let mut cur = tree.root();
    loop {
        let next = tree
            .children(cur)
            .iter()
            .copied()
            .find(|&c| tree.is_internal(c));
        match next {
            Some(n) => {
                path_len += 1;
                cur = n;
            }
            None => break,
        }
    }
    path_len == tree.internal_count()
}

/// Statistics of the vertical structure of a tree, used by experiment reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeStats {
    /// Total number of nodes.
    pub nodes: usize,
    /// Number of internal nodes.
    pub internal: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Height (maximum depth).
    pub height: usize,
    /// Length of the shortest root-to-leaf path.
    pub min_leaf_depth: usize,
    /// Maximum number of children over all nodes.
    pub max_degree: usize,
}

/// Computes [`TreeStats`] for a tree.
pub fn stats(tree: &RootedTree) -> TreeStats {
    let depths = tree.depths();
    let min_leaf_depth = tree.leaves().map(|v| depths[v.index()]).min().unwrap_or(0);
    TreeStats {
        nodes: tree.len(),
        internal: tree.internal_count(),
        leaves: tree.leaf_count(),
        height: tree.height(),
        min_leaf_depth,
        max_degree: tree
            .nodes()
            .map(|v| tree.num_children(v))
            .max()
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn levels_of_balanced_tree() {
        let t = generators::balanced(2, 3);
        let levels = nodes_by_depth(&t);
        assert_eq!(levels.len(), 4);
        assert_eq!(levels[0].len(), 1);
        assert_eq!(levels[1].len(), 2);
        assert_eq!(levels[2].len(), 4);
        assert_eq!(levels[3].len(), 8);
    }

    #[test]
    fn root_to_leaf_paths_cover_leaves() {
        let t = generators::balanced(2, 2);
        let paths = root_to_leaf_paths(&t);
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(p[0], t.root());
            assert_eq!(p.len(), 3);
            assert!(t.is_leaf(*p.last().unwrap()));
        }
    }

    #[test]
    fn vertical_path_between_nodes() {
        let t = generators::balanced(2, 3);
        let leaf = t.leaves().next().unwrap();
        let path = vertical_path(&t, t.root(), leaf).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], t.root());
        assert_eq!(*path.last().unwrap(), leaf);
        // Not a descendant: sibling of the root's first child.
        let c = t.children(t.root())[1];
        let d = t.children(t.root())[0];
        assert!(vertical_path(&t, c, d).is_none());
    }

    #[test]
    fn hairy_path_detection() {
        let hp = generators::hairy_path(2, 5);
        assert!(is_hairy_path(&hp, 2));
        let balanced = generators::balanced(2, 3);
        assert!(!is_hairy_path(&balanced, 2));
        let singleton = RootedTree::singleton();
        assert!(is_hairy_path(&singleton, 2));
    }

    #[test]
    fn stats_of_balanced_tree() {
        let t = generators::balanced(3, 2);
        let s = stats(&t);
        assert_eq!(s.nodes, 13);
        assert_eq!(s.internal, 4);
        assert_eq!(s.leaves, 9);
        assert_eq!(s.height, 2);
        assert_eq!(s.min_leaf_depth, 2);
        assert_eq!(s.max_degree, 3);
    }
}
