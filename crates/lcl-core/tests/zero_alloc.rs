//! Allocation-counter proof of the scratch-buffer contract (see the `scratch`
//! module docs): once a `ClassifyScratch`'s buffers are warm, a cache-miss
//! decision-only classification performs **zero** heap allocations — hence in
//! particular zero `LclProblem` clones and zero per-subset problem
//! reconstructions.
//!
//! The file contains exactly one test so no sibling test thread can allocate
//! concurrently and pollute the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use lcl_core::bitslice::{classify_block_sliced, BitSliceScratch, SlicedUniverse};
use lcl_core::{classify, classify_complexity_with, ClassifyScratch, Complexity, LclProblem};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn warm_scratch_classification_performs_zero_allocations() {
    // One representative per complexity class, plus the Figure 2 combination
    // and an iterated-pruning problem, so every decision stage (solvability
    // fixed point, masked pruning, Algorithm 4 subset search, Algorithm 5
    // special search) runs on the measured pass.
    let texts = [
        // O(1): MIS (Section 1.3).
        "1 : a a\n1 : a b\n1 : b b\na : b b\nb : b 1\nb : 1 1\n",
        // Θ(log* n): 3-coloring (Section 1.2).
        "1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n",
        // Θ(log n): branch 2-coloring (Section 1.4).
        "1 : 1 2\n2 : 1 1\n",
        // Θ(log n) after one pruning iteration: Figure 2's Π₀.
        "a : b b\nb : a a\n1 : 1 2\n2 : 1 1\n",
        // Θ(n): 2-coloring (exponent 1 — the poly descent with no flexible SCC).
        "1:22\n2:11\n",
        // Θ(√n): the Section 8 construction with k = 2, so the exponent DFS
        // actually descends through a flexible-SCC trim.
        "a1 : b1 b1\nb1 : a1 a1\n\
         a2 : b2 b2\na2 : a1 b1\na2 : a1 x1\na2 : b1 x1\na2 : a1 a1\na2 : b1 b1\na2 : x1 x1\n\
         b2 : a2 a2\nb2 : a1 b1\nb2 : a1 x1\nb2 : b1 x1\nb2 : a1 a1\nb2 : b1 b1\nb2 : x1 x1\n\
         x1 : a1 a1\nx1 : a1 b1\nx1 : b1 b1\nx1 : a2 a1\nx1 : a2 b1\nx1 : b2 a1\nx1 : b2 b1\nx1 : x1 a1\nx1 : x1 b1\n",
        // Unsolvable: a chain of dead ends.
        "a : b b\nb : c c\n",
    ];
    let problems: Vec<LclProblem> = texts.iter().map(|t| t.parse().unwrap()).collect();
    let expected: Vec<Complexity> = problems.iter().map(|p| classify(p).complexity).collect();

    let mut scratch = ClassifyScratch::new();
    // Warm-up: grows every scratch buffer to its high-water mark for this
    // problem set.
    for problem in &problems {
        classify_complexity_with(problem, &mut scratch);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for (problem, want) in problems.iter().zip(expected.iter()) {
        let got = classify_complexity_with(problem, &mut scratch);
        assert_eq!(got, *want);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "a warmed-up cache-miss classification must not touch the allocator \
         (no problem clones, no per-subset restrictions, no buffer growth)"
    );

    // Same contract for the bit-sliced block path: once a `BitSliceScratch`
    // (and the verdict vector) is warm, classifying a full 64-lane block
    // allocates nothing. Same test fn so no sibling test thread can pollute
    // the global counter. The (δ=2, 2-label) universe in family mask order.
    let mut universe = SlicedUniverse::new(2, 2);
    for children in [[0usize, 0], [0, 1], [1, 1]] {
        for parent in 0..2 {
            universe.push_config(parent, &children);
        }
    }
    let masks: Vec<u64> = (0..64).collect();
    let mut sliced = BitSliceScratch::<u64>::new();
    let mut verdicts = Vec::new();
    classify_block_sliced(&universe, &masks, &mut sliced, &mut verdicts); // warm-up
    let warm = verdicts.clone();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    classify_block_sliced(&universe, &masks, &mut sliced, &mut verdicts);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(verdicts, warm);
    assert_eq!(
        after - before,
        0,
        "a warmed-up bit-sliced block classification must not touch the \
         allocator (transposition, fixed points, and subset searches all run \
         in the reusable scratch)"
    );

    // And for the wide-lane path: a warmed 256-lane scratch classifies a full
    // [u64; 4] block — four 64-mask windows per slice word — with the same
    // zero-allocation guarantee. The universe has 64 masks, so cycle through
    // them to fill all 256 lanes.
    let wide_masks: Vec<u64> = (0..256).map(|m| m % 64).collect();
    let mut wide = BitSliceScratch::<[u64; 4]>::new();
    classify_block_sliced(&universe, &wide_masks, &mut wide, &mut verdicts); // warm-up
    let warm_wide = verdicts.clone();
    // Each 64-lane window saw the same masks, so verdicts repeat the u64 run.
    for (j, &v) in verdicts.iter().enumerate() {
        assert_eq!(v, warm[j % 64], "lane {j}");
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    classify_block_sliced(&universe, &wide_masks, &mut wide, &mut verdicts);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(verdicts, warm_wide);
    assert_eq!(
        after - before,
        0,
        "a warmed-up 256-lane block classification must not touch the \
         allocator either — wide lane words change the word type, not the \
         buffer reuse contract"
    );
}
