//! Algorithm 5 (`constantCertificate`): deciding O(1) vs Ω(log* n).
//!
//! A problem is constant-time solvable iff it has a certificate for O(1)
//! solvability (Definition 7.1): a uniform certificate together with a *special
//! configuration* `(a : b₁, …, a, …, b_δ)` whose labels all belong to the
//! certificate and whose repeated label `a` appears on a certificate leaf.
//! Algorithm 5 searches over label subsets and over special configurations inside
//! each restriction, invoking Algorithm 3 with the special label as the required
//! leaf.

use crate::builder::{
    build_log_star_certificate, find_unrestricted_certificate, CertificateBuildError,
    CertificateBuilder,
};
use crate::certificate::ConstantCertificate;
use crate::configuration::Configuration;
use crate::label::Label;
use crate::label_set::LabelSet;
use crate::log_star::{is_self_sustaining, subsets_by_size, MAX_SEARCH_LABELS};
use crate::problem::LclProblem;
use crate::solvability::solvable_labels;

/// The outcome of a successful Algorithm 5 search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstantSearchResult {
    /// The certificate labels Σ_T.
    pub certificate_labels: LabelSet,
    /// The restriction of the problem to Σ_T.
    pub restricted: LclProblem,
    /// The special configuration `(a : …, a, …)`.
    pub special: Configuration,
    /// The certificate builder found by Algorithm 3 with `a` as the required leaf.
    pub builder: CertificateBuilder,
}

impl ConstantSearchResult {
    /// The special label `a`.
    pub fn special_label(&self) -> Label {
        self.special.parent()
    }

    /// The certificate labels as an ordered set (conversion shim).
    pub fn certificate_labels_btree(&self) -> std::collections::BTreeSet<Label> {
        self.certificate_labels.to_btree()
    }

    /// Materializes the explicit certificate for O(1) solvability.
    pub fn materialize(
        &self,
        max_nodes: usize,
    ) -> Result<ConstantCertificate, CertificateBuildError> {
        let base = build_log_star_certificate(&self.restricted, &self.builder, max_nodes)?;
        Ok(ConstantCertificate {
            base,
            special: self.special.clone(),
        })
    }
}

/// Algorithm 5: searches for a certificate for O(1) solvability. Returns `None` if
/// none exists (the problem then requires Ω(log* n) rounds by Theorem 7.7).
pub fn find_constant_certificate(problem: &LclProblem) -> Option<ConstantSearchResult> {
    find_constant_certificate_within(problem, solvable_labels(problem))
}

/// [`find_constant_certificate`] with a precomputed greatest self-sustaining
/// set: `sustaining` must be `solvable_labels(problem)`. The classifier
/// computes that fixed point once per problem and threads it through, so the
/// certificate stages never re-run it.
pub fn find_constant_certificate_within(
    problem: &LclProblem,
    sustaining: LabelSet,
) -> Option<ConstantSearchResult> {
    let subset = crate::scratch::with_thread_scratch(|scratch| {
        decide_constant_subset(problem, sustaining, scratch)
    })?;
    // Only the winning subset is materialized; the candidate subsets and their
    // special configurations were searched by masking. Re-running the special
    // loop on this one subset reproduces the historical choice of special
    // configuration (first in sorted configuration order whose parent admits a
    // builder).
    let restricted = problem.restrict_to(subset);
    let specials: Vec<Configuration> = restricted
        .configurations()
        .iter()
        .filter(|c| c.parent_repeats_in_children())
        .cloned()
        .collect();
    let mut found = None;
    for special in specials {
        if let Some(builder) = find_unrestricted_certificate(&restricted, Some(special.parent())) {
            found = Some((special, builder));
            break;
        }
    }
    let (special, builder) =
        found.expect("the masked decision found a special configuration with a builder");
    Some(ConstantSearchResult {
        certificate_labels: subset,
        restricted,
        special,
        builder,
    })
}

/// Decision core of Algorithm 5: the first subset of `sustaining` (smallest,
/// then lexicographic) that is self-sustaining and admits a builder with some
/// special configuration's parent on a leaf — found purely by masking.
/// Public so external harnesses (the classifier bench's stage-by-stage
/// decision twin) can replicate the hot path exactly.
pub fn decide_constant_subset(
    problem: &LclProblem,
    sustaining: LabelSet,
    scratch: &mut crate::scratch::ClassifyScratch,
) -> Option<LabelSet> {
    // The problem must contain at least one special configuration at all; otherwise
    // every solution is a proper coloring and the problem is Ω(log* n)
    // (Theorem 7.7).
    if !problem
        .configurations()
        .iter()
        .any(|c| c.parent_repeats_in_children())
    {
        return None;
    }
    if sustaining.is_empty() {
        return None;
    }
    assert!(
        sustaining.len() <= MAX_SEARCH_LABELS,
        "Algorithm 5 enumerates subsets of at most {MAX_SEARCH_LABELS} labels, got {}",
        sustaining.len()
    );
    for subset in subsets_by_size(sustaining) {
        if !is_self_sustaining(problem, subset) {
            continue;
        }
        // Builder existence depends only on (subset, special parent), so each
        // distinct parent is tried once even when several special
        // configurations share it.
        let mut tried = LabelSet::EMPTY;
        for (i, c) in problem.configurations().iter().enumerate() {
            if !c.parent_repeats_in_children()
                || !problem.configuration_label_set(i).is_subset(subset)
            {
                continue;
            }
            if !tried.insert(c.parent()) {
                continue;
            }
            if crate::scratch::exists_builder_masked(problem, subset, Some(c.parent()), scratch) {
                return Some(subset);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mis() -> LclProblem {
        "1 : a a\n1 : a b\n1 : b b\na : b b\nb : b 1\nb : 1 1\n"
            .parse()
            .unwrap()
    }

    #[test]
    fn mis_is_constant_time() {
        let p = mis();
        let result = find_constant_certificate(&p).expect("MIS is O(1), Section 1.3");
        // The special configuration is b : b 1 (the only one repeating its parent).
        let b = p.label_by_name("b").unwrap();
        assert_eq!(result.special_label(), b);
        let cert = result.materialize(1_000_000).unwrap();
        cert.verify(&p).unwrap();
    }

    #[test]
    fn three_coloring_is_not_constant_time() {
        let p: LclProblem = "1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n"
            .parse()
            .unwrap();
        assert!(find_constant_certificate(&p).is_none());
    }

    #[test]
    fn branch_two_coloring_is_not_constant_time() {
        // It has a special configuration (1 : 1 2) but no O(log* n) certificate.
        let p: LclProblem = "1 : 1 2\n2 : 1 1\n".parse().unwrap();
        assert!(find_constant_certificate(&p).is_none());
    }

    #[test]
    fn trivial_problem_is_constant_time() {
        let p: LclProblem = "x : x x\n".parse().unwrap();
        let result = find_constant_certificate(&p).unwrap();
        let cert = result.materialize(1_000).unwrap();
        cert.verify(&p).unwrap();
        assert_eq!(cert.base.depth, 1);
    }

    #[test]
    fn special_configuration_outside_certificate_labels_does_not_count() {
        // The special configuration (s : s s) exists but `s` is a dead end (no other
        // configuration leads back to it from the rest), while the rest of the
        // problem is 2-coloring. Restricted to {s} alone the problem is fine, so the
        // classifier should pick {s} as the certificate.
        let p: LclProblem = "1:22\n2:11\ns:ss\n".parse().unwrap();
        let result = find_constant_certificate(&p).unwrap();
        let s = p.label_by_name("s").unwrap();
        assert_eq!(result.certificate_labels, LabelSet::singleton(s));
        let cert = result.materialize(1_000).unwrap();
        cert.verify(&p).unwrap();
    }

    #[test]
    fn special_configuration_must_be_usable() {
        // (a : a b) repeats its parent, but b has no continuation, so the only
        // self-sustaining set is {a} restricted to (a : a a)... which does not exist
        // here; hence no certificate and the problem is in fact unsolvable.
        let p: LclProblem = "a : a b\n".parse().unwrap();
        assert!(find_constant_certificate(&p).is_none());
    }

    #[test]
    fn mis_without_special_configuration_is_not_constant() {
        // Removing (b : b 1) removes the only special configuration; the remaining
        // problem is solvable but no longer O(1).
        let p: LclProblem = "1 : a a\n1 : a b\n1 : b b\na : b b\nb : 1 1\n"
            .parse()
            .unwrap();
        assert!(find_constant_certificate(&p).is_none());
    }
}
