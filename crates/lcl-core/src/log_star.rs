//! Algorithm 4 (`findCertificate`): deciding O(log* n) vs Ω(log n).
//!
//! The algorithm searches over subsets Σ' ⊆ Σ(Π): for each candidate it restricts
//! the problem to Σ' and runs Algorithm 3. Theorem 6.8 shows a builder is found for
//! some subset iff a uniform certificate (Definition 6.1) exists, which by
//! Theorem 6.3 / Lemma 6.7 happens iff the problem is solvable in O(log* n) rounds.
//! The search prunes subsets in which some label has no continuation below
//! (such a label could never be the root of a certificate tree), which keeps the
//! exponential search fast on all problems of practical interest. Subsets are
//! enumerated directly as sub-masks of the [`LabelSet`] bitset.

use crate::builder::{
    build_log_star_certificate, find_unrestricted_certificate, CertificateBuildError,
    CertificateBuilder,
};
use crate::certificate::LogStarCertificate;
use crate::label::Label;
use crate::label_set::LabelSet;
use crate::problem::LclProblem;
use crate::solvability::solvable_labels;

/// The outcome of a successful Algorithm 4 search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogStarSearchResult {
    /// The certificate labels Σ_T (the subset Σ' that succeeded).
    pub certificate_labels: LabelSet,
    /// The restriction of the problem to Σ_T.
    pub restricted: LclProblem,
    /// The certificate builder found by Algorithm 3.
    pub builder: CertificateBuilder,
}

impl LogStarSearchResult {
    /// Materializes the explicit uniform certificate (Lemma 6.9), bounding each
    /// certificate tree by `max_nodes` nodes.
    pub fn materialize(
        &self,
        max_nodes: usize,
    ) -> Result<LogStarCertificate, CertificateBuildError> {
        build_log_star_certificate(&self.restricted, &self.builder, max_nodes)
    }

    /// The certificate labels as an ordered set (conversion shim).
    pub fn certificate_labels_btree(&self) -> std::collections::BTreeSet<Label> {
        self.certificate_labels.to_btree()
    }
}

/// The subset searches of Algorithms 4–5 enumerate every subset of the
/// self-sustaining label set; beyond this many labels the 2^n enumeration is
/// hopeless (and the up-front subset vector large), so the search panics with a
/// clear message rather than looping for years. Callers that feed arbitrary
/// problems into batch sweeps should bound their label counts accordingly
/// (`rtlcl classify-batch` validates its `--labels` against this).
pub const MAX_SEARCH_LABELS: usize = 20;

/// Enumerates the non-empty subsets of `labels`, smallest first.
pub(crate) fn subsets_by_size(labels: LabelSet) -> Vec<LabelSet> {
    let mut subsets: Vec<LabelSet> = labels.subsets().filter(|s| !s.is_empty()).collect();
    subsets.sort_by_key(|s| (s.len(), s.bits()));
    subsets
}

/// Returns `true` if every label of `subset` has a continuation below within
/// `subset` in `problem` — a necessary condition for `subset` to be the label set of
/// a uniform certificate (every label is the root of a certificate tree of depth
/// ≥ 1).
pub(crate) fn is_self_sustaining(problem: &LclProblem, subset: LabelSet) -> bool {
    subset
        .iter()
        .all(|l| problem.has_continuation_within(l, subset))
}

/// Algorithm 4: searches for a uniform certificate of O(log* n) solvability.
/// Returns `None` if none exists (the problem then requires Ω(log n) rounds by
/// Lemma 6.7).
pub fn find_log_star_certificate(problem: &LclProblem) -> Option<LogStarSearchResult> {
    // Certificate labels all need continuations inside the certificate, so they lie
    // inside the greatest self-sustaining set; only search subsets of it.
    let sustaining = solvable_labels(problem);
    if sustaining.is_empty() {
        return None;
    }
    assert!(
        sustaining.len() <= MAX_SEARCH_LABELS,
        "Algorithm 4 enumerates subsets of at most {MAX_SEARCH_LABELS} labels, got {}",
        sustaining.len()
    );
    for subset in subsets_by_size(sustaining) {
        if !is_self_sustaining(problem, subset) {
            continue;
        }
        let restricted = problem.restrict_to(subset);
        if let Some(builder) = find_unrestricted_certificate(&restricted, None) {
            return Some(LogStarSearchResult {
                certificate_labels: subset,
                restricted,
                builder,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_coloring() -> LclProblem {
        "1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n"
            .parse()
            .unwrap()
    }

    #[test]
    fn three_coloring_has_log_star_certificate() {
        let p = three_coloring();
        let result = find_log_star_certificate(&p).expect("3-coloring is Θ(log* n)");
        let cert = result.materialize(1_000_000).unwrap();
        cert.verify(&p).unwrap();
        // The certificate uses all three colors (no proper subset of size 1 or 2
        // self-sustains into a certificate for a proper coloring).
        assert_eq!(result.certificate_labels.len(), 3);
    }

    #[test]
    fn mis_has_log_star_certificate() {
        let p: LclProblem = "1 : a a\n1 : a b\n1 : b b\na : b b\nb : b 1\nb : 1 1\n"
            .parse()
            .unwrap();
        let result = find_log_star_certificate(&p).expect("MIS is O(1) ⊆ O(log* n)");
        let cert = result.materialize(1_000_000).unwrap();
        cert.verify(&p).unwrap();
    }

    #[test]
    fn branch_two_coloring_has_none() {
        let p: LclProblem = "1 : 1 2\n2 : 1 1\n".parse().unwrap();
        assert!(find_log_star_certificate(&p).is_none());
    }

    #[test]
    fn two_coloring_has_none() {
        let p: LclProblem = "1:22\n2:11\n".parse().unwrap();
        assert!(find_log_star_certificate(&p).is_none());
    }

    #[test]
    fn unsolvable_problem_has_none() {
        let p: LclProblem = "a : b b\nb : c c\n".parse().unwrap();
        assert!(find_log_star_certificate(&p).is_none());
    }

    #[test]
    fn trivial_problem_uses_single_label() {
        // With a universally allowed single label the smallest certificate uses just
        // that label.
        let p: LclProblem = "x : x x\nx : x y\ny : x x\n".parse().unwrap();
        let result = find_log_star_certificate(&p).unwrap();
        assert_eq!(result.certificate_labels.len(), 1);
        let cert = result.materialize(1_000).unwrap();
        cert.verify(&p).unwrap();
        assert_eq!(cert.depth, 1);
    }

    #[test]
    fn certificate_found_inside_larger_problem() {
        // The union of 2-coloring on {1, 2} and an unconstrained label z: a
        // certificate exists using only {z}, even though {1, 2} alone admits none.
        let p: LclProblem = "1:22\n2:11\nz:zz\nz:12\n".parse().unwrap();
        let result = find_log_star_certificate(&p).unwrap();
        let z = p.label_by_name("z").unwrap();
        assert_eq!(result.certificate_labels, LabelSet::singleton(z));
        assert_eq!(result.certificate_labels_btree(), [z].into_iter().collect());
    }

    #[test]
    fn subsets_are_enumerated_smallest_first() {
        let labels: LabelSet = [Label(0), Label(1), Label(2)].into_iter().collect();
        let subsets = subsets_by_size(labels);
        assert_eq!(subsets.len(), 7);
        assert_eq!(subsets[0].len(), 1);
        assert_eq!(subsets[6].len(), 3);
        // Sizes are non-decreasing throughout.
        assert!(subsets.windows(2).all(|w| w[0].len() <= w[1].len()));
    }

    #[test]
    fn self_sustaining_check() {
        let p: LclProblem = "1 : 1 2\n2 : 1 1\n".parse().unwrap();
        let one = p.label_by_name("1").unwrap();
        let two = p.label_by_name("2").unwrap();
        let both: LabelSet = [one, two].into_iter().collect();
        let just_one = LabelSet::singleton(one);
        assert!(is_self_sustaining(&p, both));
        // 1 alone has no continuation using only 1 (its configurations need 2).
        assert!(!is_self_sustaining(&p, just_one));
    }
}
