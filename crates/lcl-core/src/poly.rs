//! The exact exponent of the polynomial region (Section 5, Lemmas 5.28–5.31).
//!
//! A solvable problem with no certificate for O(log n) solvability has round
//! complexity Θ(n^{1/k}) for a *computable* k. The decision procedure layers
//! two operations over the label sets of the problem:
//!
//! * **trim** (Lemma 5.28, [`crate::scratch::trim_masked`]) — the greatest
//!   subset of a label set in which every label heads a configuration lying
//!   fully inside the subset, i.e. the labels that can head arbitrarily deep
//!   subtrees of the restriction;
//! * **flexible-SCC restriction** (Lemma 5.29) — a strongly connected
//!   component of the restriction's path-form automaton whose period is 1
//!   (every state admits closed walks of all sufficiently large lengths).
//!
//! The exponent is the depth of the longest descent
//! `S₁ ⊋ C₁ ⊇ S₂ ⊋ C₂ ⊇ … ⊇ S_k` where `S₁ = trim(Σ)`, each `C_i` is a
//! flexible SCC of the automaton of `Π|S_i`, and `S_{i+1} = trim(C_i)`:
//!
//! * **upper bound**: the chain drives an O(n^{1/k})-round algorithm
//!   (`lcl-algorithms::poly_solver::solve_poly`) that peels the tree into k
//!   layers of n^{1/k}-sized rake pieces and flexibility-completed chains,
//!   generalizing the Π_k partition of Lemma 8.1;
//! * **lower bound**: no chain of length k+1 exists, which generalizes the
//!   Ω(n^{1/k}) argument of Theorem 5.2 (the chain levels embed into the
//!   pruning sequence of Algorithm 2, so k never exceeds the pruning
//!   iteration count — asserted by the integration tests).
//!
//! In the polynomial region every flexible SCC is a *proper* subset of its
//! (trimmed) level: a trimmed set that is a single flexible SCC would be a
//! certificate for O(log n) solvability (Lemma 5.5), contradicting the region.
//! Hence the descent strictly shrinks and its depth is at most `|Σ|`.
//!
//! [`find_poly_certificate`] materializes the maximal chain as a
//! [`PolyCertificate`]; the allocation-free decision twin used by the batch
//! hot path is [`crate::scratch::poly_exponent_masked`], and differential
//! tests assert the two always agree.

use crate::automaton::Automaton;
use crate::label_set::LabelSet;
use crate::problem::LclProblem;
use crate::scratch::{poly_exponent_masked, trim_masked};
use crate::solvability::solvable_labels;

/// One level of the trim/flexible-SCC descent witnessing Θ(n^{1/k}).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyLevel {
    /// The trimmed label set `S_i` of this level (non-empty).
    pub labels: LabelSet,
    /// The flexible SCC `C_i ⊊ S_i` the chain descends through
    /// (`trim(C_i) = S_{i+1}`). Empty on the last level.
    pub scc: LabelSet,
    /// The maximum flexibility (Definition 4.8) over the states of `scc`
    /// within the automaton of `Π|S_i`; 0 on the last level.
    pub flexibility: usize,
    /// The minimum length of a chain the level's solver layer compresses:
    /// `|scc| + flexibility`, which guarantees a walk of any such length
    /// between any two `scc` labels. 0 on the last level.
    pub chain_threshold: usize,
}

/// The certificate for Θ(n^{1/k}) complexity: the maximal trim/flexible-SCC
/// descent. `levels.len()` is the exponent `k`; `levels[0].labels` is the
/// self-sustaining set and each subsequent level is the trim of its
/// predecessor's flexible SCC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyCertificate {
    /// The chain `S₁ ⊋ C₁ ⊇ S₂ ⊋ … ⊇ S_k`, outermost level first.
    pub levels: Vec<PolyLevel>,
}

impl PolyCertificate {
    /// The exponent `k` of Θ(n^{1/k}): the length of the chain.
    pub fn exponent(&self) -> usize {
        self.levels.len()
    }

    /// Verifies the certificate against `problem`: the structural chain
    /// conditions (upper-bound witness) plus maximality (lower-bound witness,
    /// re-derived with the allocation-free decision procedure).
    pub fn verify(&self, problem: &LclProblem) -> Result<(), String> {
        if self.levels.is_empty() {
            return Err("certificate chain is empty".into());
        }
        let sustaining = solvable_labels(problem);
        if sustaining.is_empty() {
            return Err("problem is unsolvable".into());
        }
        if self.levels[0].labels != sustaining {
            return Err("chain does not start at the self-sustaining label set".into());
        }
        let k = self.levels.len();
        for (i, level) in self.levels.iter().enumerate() {
            if level.labels.is_empty() {
                return Err(format!("level {} has an empty label set", i + 1));
            }
            if trim_masked(problem, level.labels) != level.labels {
                return Err(format!("level {} label set is not trimmed", i + 1));
            }
            let restricted = problem.restrict_to(level.labels);
            let automaton = Automaton::of(&restricted);
            if i + 1 < k {
                let comp = automaton
                    .components()
                    .into_iter()
                    .find(|c| c.states == level.scc)
                    .ok_or_else(|| format!("level {} scc is not an SCC of Π|S", i + 1))?;
                if !comp.has_cycle || comp.period != 1 {
                    return Err(format!("level {} scc is not flexible", i + 1));
                }
                if level.scc == level.labels {
                    return Err(format!(
                        "level {} scc covers the whole level (a certificate for O(log n))",
                        i + 1
                    ));
                }
                if trim_masked(problem, level.scc) != self.levels[i + 1].labels {
                    return Err(format!(
                        "level {} trim does not match level {}",
                        i + 1,
                        i + 2
                    ));
                }
                let flex = level
                    .scc
                    .iter()
                    .map(|l| {
                        automaton
                            .flexibility(l)
                            .ok_or_else(|| format!("level {} scc state is inflexible", i + 1))
                    })
                    .try_fold(0usize, |acc, f| f.map(|f| acc.max(f)))?;
                if level.flexibility != flex {
                    return Err(format!(
                        "level {} stores flexibility {} but the automaton gives {}",
                        i + 1,
                        level.flexibility,
                        flex
                    ));
                }
                if level.chain_threshold != level.scc.len() + flex {
                    return Err(format!("level {} chain threshold is inconsistent", i + 1));
                }
            } else {
                if !level.scc.is_empty() {
                    return Err("last level must not descend further".into());
                }
                if level.flexibility != 0 || level.chain_threshold != 0 {
                    return Err("last level carries a non-zero flexibility/threshold".into());
                }
            }
        }
        // Maximality (the Ω(n^{1/k}) side): the chain must realize the exact
        // exponent, re-derived by the independent masked decision procedure.
        let exact = crate::scratch::with_thread_scratch(|scratch| {
            poly_exponent_masked(problem, sustaining, scratch)
        });
        if exact != k {
            return Err(format!(
                "chain has length {k} but the exact exponent is {exact}"
            ));
        }
        Ok(())
    }
}

/// Computes the exact-exponent certificate of a polynomial-region problem, or
/// `None` when the problem is outside the region (unsolvable, or Algorithm 2
/// finds a certificate for O(log n) solvability).
pub fn find_poly_certificate(problem: &LclProblem) -> Option<PolyCertificate> {
    let sustaining = solvable_labels(problem);
    if sustaining.is_empty() {
        return None;
    }
    let fixpoint_empty = crate::scratch::with_thread_scratch(|scratch| {
        crate::scratch::prune_fixpoint_masked(problem, scratch)
            .0
            .is_empty()
    });
    if !fixpoint_empty {
        return None;
    }
    Some(PolyCertificate {
        levels: best_chain(problem, sustaining),
    })
}

/// The deepest descent below the trimmed non-empty set `s`, materialized
/// levels-first. Deterministic: SCCs are visited in the automaton's component
/// order and ties keep the first maximum.
fn best_chain(problem: &LclProblem, s: LabelSet) -> Vec<PolyLevel> {
    let restricted = problem.restrict_to(s);
    let automaton = Automaton::of(&restricted);
    let mut best_below: Vec<PolyLevel> = Vec::new();
    let mut best_scc = LabelSet::EMPTY;
    for comp in automaton.components() {
        if !comp.has_cycle || comp.period != 1 || comp.states == s {
            continue;
        }
        let trimmed = trim_masked(problem, comp.states);
        if trimmed.is_empty() {
            continue;
        }
        let below = best_chain(problem, trimmed);
        if below.len() > best_below.len() {
            best_below = below;
            best_scc = comp.states;
        }
    }
    if best_scc.is_empty() {
        return vec![PolyLevel {
            labels: s,
            scc: LabelSet::EMPTY,
            flexibility: 0,
            chain_threshold: 0,
        }];
    }
    let flexibility = best_scc
        .iter()
        .map(|l| {
            automaton
                .flexibility(l)
                .expect("states of a flexible SCC are flexible")
        })
        .max()
        .expect("flexible SCCs are non-empty");
    let mut levels = Vec::with_capacity(1 + best_below.len());
    levels.push(PolyLevel {
        labels: s,
        scc: best_scc,
        flexibility,
        chain_threshold: best_scc.len() + flexibility,
    });
    levels.extend(best_below);
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{classify, Complexity};

    fn problem(text: &str) -> LclProblem {
        text.parse().unwrap()
    }

    /// The Section 8 construction with k = 2 (shared test fixture).
    fn section_8_depth_two() -> LclProblem {
        problem(crate::test_fixtures::SECTION_8_DEPTH_TWO)
    }

    #[test]
    fn two_coloring_has_a_depth_one_certificate() {
        let p = problem("1:22\n2:11\n");
        let cert = find_poly_certificate(&p).expect("2-coloring is polynomial");
        assert_eq!(cert.exponent(), 1);
        assert_eq!(cert.levels[0].labels, p.labels());
        assert!(cert.levels[0].scc.is_empty());
        cert.verify(&p).unwrap();
    }

    #[test]
    fn section_8_problem_has_a_depth_two_chain() {
        let p = section_8_depth_two();
        let cert = find_poly_certificate(&p).expect("polynomial problem");
        assert_eq!(cert.exponent(), 2);
        cert.verify(&p).unwrap();
        // The chain descends through the flexible SCC {x1, a2, b2} into the
        // inner 2-coloring {a2, b2}.
        let names: Vec<&str> = cert.levels[1]
            .labels
            .iter()
            .map(|l| p.label_name(l))
            .collect();
        assert_eq!(names, vec!["a2", "b2"]);
        assert_eq!(cert.levels[0].scc.len(), 3);
        assert!(cert.levels[0].chain_threshold >= cert.levels[0].scc.len());
    }

    #[test]
    fn non_polynomial_problems_have_no_certificate() {
        // Θ(log n), Θ(log* n), O(1), and unsolvable problems all return None.
        for text in [
            "1 : 1 2\n2 : 1 1\n",
            "1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n",
            "x : x x\n",
            "a : b b\nb : c c\n",
        ] {
            assert!(find_poly_certificate(&problem(text)).is_none(), "{text}");
        }
    }

    #[test]
    fn verification_rejects_tampered_chains() {
        let p = section_8_depth_two();
        let cert = find_poly_certificate(&p).unwrap();

        let mut truncated = cert.clone();
        truncated.levels.pop();
        // The now-last level still names an SCC.
        assert!(truncated.verify(&p).is_err());

        let mut wrong_flex = cert.clone();
        wrong_flex.levels[0].flexibility += 1;
        assert!(wrong_flex.verify(&p).is_err());

        let mut wrong_set = cert.clone();
        wrong_set.levels[1].labels = p.labels();
        assert!(wrong_set.verify(&p).is_err());

        let empty = PolyCertificate { levels: Vec::new() };
        assert!(empty.verify(&p).is_err());
    }

    #[test]
    fn certificate_agrees_with_the_classifier() {
        for text in ["1:22\n2:11\n", "1:2\n2:1\n"] {
            let p = problem(text);
            let cert = find_poly_certificate(&p).unwrap();
            assert_eq!(
                classify(&p).complexity,
                Complexity::Polynomial {
                    exponent: cert.exponent()
                }
            );
        }
    }
}
