//! Certificates for O(log* n) and O(1) solvability (Definitions 6.1 and 7.1).
//!
//! A *uniform certificate* is a collection of completely labeled, complete δ-ary
//! trees of the same depth — one per certificate label, with that label at the root
//! — whose leaf labelings are all identical. Its existence is equivalent to
//! O(log* n) solvability (Theorem 6.3 + Lemma 6.7). A certificate for O(1)
//! solvability additionally contains a *special configuration* `(a : …, a, …)` whose
//! labels all belong to the certificate and whose repeated label `a` appears on a
//! certificate leaf (Definition 7.1).

use std::collections::BTreeMap;

use crate::configuration::Configuration;
use crate::label::Label;
use crate::label_set::LabelSet;
use crate::problem::LclProblem;

/// A completely labeled, complete δ-ary tree of a fixed depth, stored in level
/// (heap) order: the root is index 0 and the children of index `i` are
/// `δ·i + 1, …, δ·i + δ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateTree {
    delta: usize,
    depth: usize,
    labels: Vec<Label>,
}

impl CertificateTree {
    /// Creates a certificate tree from its level-order labels.
    ///
    /// # Panics
    ///
    /// Panics if the number of labels does not match a complete δ-ary tree of the
    /// given depth.
    pub fn new(delta: usize, depth: usize, labels: Vec<Label>) -> Self {
        assert!(delta >= 1);
        assert_eq!(
            labels.len(),
            Self::node_count(delta, depth),
            "label vector does not match a complete {delta}-ary tree of depth {depth}"
        );
        CertificateTree {
            delta,
            depth,
            labels,
        }
    }

    /// Number of nodes of a complete δ-ary tree of the given depth.
    pub fn node_count(delta: usize, depth: usize) -> usize {
        if delta == 1 {
            return depth + 1;
        }
        let mut total = 0usize;
        let mut level = 1usize;
        for _ in 0..=depth {
            total += level;
            level *= delta;
        }
        total
    }

    /// Index of the first node of the given level.
    pub fn level_start(delta: usize, level: usize) -> usize {
        if level == 0 {
            0
        } else {
            Self::node_count(delta, level - 1)
        }
    }

    /// The δ of the tree.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The depth of the tree.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// All labels in level order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The label of the root.
    pub fn root_label(&self) -> Label {
        self.labels[0]
    }

    /// The label at a level-order index.
    pub fn label_at(&self, index: usize) -> Label {
        self.labels[index]
    }

    /// The level-order indices of the children of node `index` (an empty range
    /// for leaves). In the implicit complete-tree layout the children of `i`
    /// occupy the contiguous range `δ·i + 1 .. δ·i + 1 + δ`, so this is pure
    /// index arithmetic — no allocation.
    pub fn children_of(&self, index: usize) -> std::ops::Range<usize> {
        let first = self.delta * index + 1;
        if first >= self.labels.len() {
            0..0
        } else {
            first..first + self.delta
        }
    }

    /// The labels of the deepest level (the leaves).
    pub fn leaf_labels(&self) -> &[Label] {
        &self.labels[Self::level_start(self.delta, self.depth)..]
    }

    /// The set of distinct labels used anywhere in the tree.
    pub fn used_labels(&self) -> LabelSet {
        self.labels.iter().copied().collect()
    }

    /// Checks that every internal node of the tree forms an allowed configuration of
    /// `problem` with its children.
    ///
    /// The children of a level-order node are a contiguous slice of the label
    /// vector, so the success path performs no allocation per node (the error
    /// message on failure is the only allocating path).
    pub fn verify_configurations(&self, problem: &LclProblem) -> Result<(), String> {
        if self.delta != problem.delta() {
            return Err(format!(
                "certificate tree has delta {}, problem has {}",
                self.delta,
                problem.delta()
            ));
        }
        for index in 0..self.labels.len() {
            let children = self.children_of(index);
            if children.is_empty() {
                continue;
            }
            let child_labels = &self.labels[children];
            if !problem.allows_multiset(self.labels[index], child_labels) {
                let config = Configuration::new(self.labels[index], child_labels.to_vec());
                return Err(format!(
                    "node {index} uses forbidden configuration {}",
                    config.display(problem.alphabet())
                ));
            }
        }
        Ok(())
    }

    /// Builds a certificate tree by calling `label_of(index, level)` for every node
    /// in level order.
    pub fn build_with(
        delta: usize,
        depth: usize,
        mut label_of: impl FnMut(usize, usize) -> Label,
    ) -> Self {
        let count = Self::node_count(delta, depth);
        let mut labels = Vec::with_capacity(count);
        let mut level = 0usize;
        let mut next_level_start = 1usize;
        for index in 0..count {
            if index == next_level_start {
                level += 1;
                next_level_start = Self::level_start(delta, level + 1);
            }
            labels.push(label_of(index, level));
        }
        CertificateTree {
            delta,
            depth,
            labels,
        }
    }
}

/// A uniform certificate for O(log* n) solvability (Definition 6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogStarCertificate {
    /// The certificate labels Σ_T.
    pub labels: LabelSet,
    /// The common depth `d ≥ 1` of the certificate trees.
    pub depth: usize,
    /// One completely labeled tree per certificate label, rooted at that label.
    pub trees: BTreeMap<Label, CertificateTree>,
}

impl LogStarCertificate {
    /// The common leaf labeling shared by all certificate trees.
    pub fn leaf_pattern(&self) -> &[Label] {
        self.trees
            .values()
            .next()
            .expect("certificate has at least one tree")
            .leaf_labels()
    }

    /// The certificate tree whose root carries `label`.
    pub fn tree_for(&self, label: Label) -> Option<&CertificateTree> {
        self.trees.get(&label)
    }

    /// Verifies Definition 6.1 against `problem`:
    /// 1. the depth is at least one and every tree is a complete δ-ary tree of that
    ///    depth;
    /// 2. every tree uses only certificate labels and only allowed configurations;
    /// 3. all trees share the same leaf labeling;
    /// 4. for every certificate label there is a tree rooted at it.
    pub fn verify(&self, problem: &LclProblem) -> Result<(), String> {
        if self.depth == 0 {
            return Err("certificate depth must be at least 1".into());
        }
        if self.labels.is_empty() {
            return Err("certificate has no labels".into());
        }
        if !self.labels.is_subset(problem.labels()) {
            return Err("certificate labels are not a subset of Σ(Π)".into());
        }
        for label in self.labels {
            let tree = self
                .trees
                .get(&label)
                .ok_or_else(|| format!("no tree for label {}", problem.label_name(label)))?;
            if tree.depth() != self.depth || tree.delta() != problem.delta() {
                return Err(format!(
                    "tree for {} has wrong shape",
                    problem.label_name(label)
                ));
            }
            if tree.root_label() != label {
                return Err(format!(
                    "tree for {} is rooted at {}",
                    problem.label_name(label),
                    problem.label_name(tree.root_label())
                ));
            }
            if !tree.used_labels().is_subset(self.labels) {
                return Err(format!(
                    "tree for {} uses labels outside Σ_T",
                    problem.label_name(label)
                ));
            }
            tree.verify_configurations(problem)?;
        }
        if self.trees.len() != self.labels.len() {
            return Err("certificate has trees for labels outside Σ_T".into());
        }
        let pattern = self.leaf_pattern().to_vec();
        for (label, tree) in &self.trees {
            if tree.leaf_labels() != pattern.as_slice() {
                return Err(format!(
                    "tree for {} has a different leaf labeling",
                    problem.label_name(*label)
                ));
            }
        }
        Ok(())
    }

    /// Returns `true` if some leaf of the (shared) leaf labeling carries `label`.
    pub fn has_leaf_labeled(&self, label: Label) -> bool {
        self.leaf_pattern().contains(&label)
    }
}

/// A certificate for O(1) solvability (Definition 7.1): a uniform certificate plus a
/// special configuration `(a : b₁, …, a, …, b_δ)` over certificate labels whose
/// repeated label `a` occurs on a certificate leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstantCertificate {
    /// The underlying uniform certificate.
    pub base: LogStarCertificate,
    /// The special configuration.
    pub special: Configuration,
}

impl ConstantCertificate {
    /// The repeated label `a` of the special configuration.
    pub fn special_label(&self) -> Label {
        self.special.parent()
    }

    /// Verifies Definition 7.1 against `problem`.
    pub fn verify(&self, problem: &LclProblem) -> Result<(), String> {
        self.base.verify(problem)?;
        if !problem.allows(&self.special) {
            return Err("special configuration is not allowed by the problem".into());
        }
        if !self.special.parent_repeats_in_children() {
            return Err("special configuration does not repeat its parent label".into());
        }
        if !self.special.labels().all(|l| self.base.labels.contains(l)) {
            return Err("special configuration uses labels outside Σ_T".into());
        }
        if !self.base.has_leaf_labeled(self.special.parent()) {
            return Err("no certificate leaf carries the special label".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(i: u16) -> Label {
        Label(i)
    }

    #[test]
    fn node_count_and_levels() {
        assert_eq!(CertificateTree::node_count(2, 0), 1);
        assert_eq!(CertificateTree::node_count(2, 2), 7);
        assert_eq!(CertificateTree::node_count(3, 2), 13);
        assert_eq!(CertificateTree::node_count(1, 4), 5);
        assert_eq!(CertificateTree::level_start(2, 0), 0);
        assert_eq!(CertificateTree::level_start(2, 1), 1);
        assert_eq!(CertificateTree::level_start(2, 2), 3);
    }

    #[test]
    fn children_indices() {
        let t = CertificateTree::new(2, 2, vec![label(0); 7]);
        assert_eq!(t.children_of(0), 1..3);
        assert_eq!(t.children_of(2), 5..7);
        assert!(t.children_of(3).is_empty());
        assert_eq!(t.children_of(1).collect::<Vec<usize>>(), vec![3, 4]);
        assert_eq!(t.leaf_labels().len(), 4);
    }

    /// The 3-coloring certificate of Figure 7c: depth 2, identical bottom levels
    /// 3 3 3 3, roots 1, 2, 3.
    fn figure_7_certificate(problem: &LclProblem) -> LogStarCertificate {
        let l = |n: &str| problem.label_by_name(n).unwrap();
        let tree = |root: &str, mid: [&str; 2]| {
            CertificateTree::new(
                2,
                2,
                vec![
                    l(root),
                    l(mid[0]),
                    l(mid[1]),
                    l("3"),
                    l("3"),
                    l("3"),
                    l("3"),
                ],
            )
        };
        let mut trees = BTreeMap::new();
        trees.insert(l("1"), tree("1", ["2", "2"]));
        trees.insert(l("2"), tree("2", ["1", "1"]));
        trees.insert(l("3"), tree("3", ["1", "2"]));
        LogStarCertificate {
            labels: [l("1"), l("2"), l("3")].into_iter().collect(),
            depth: 2,
            trees,
        }
    }

    fn three_coloring() -> LclProblem {
        "1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n"
            .parse()
            .unwrap()
    }

    #[test]
    fn figure_7_certificate_verifies() {
        let p = three_coloring();
        let cert = figure_7_certificate(&p);
        cert.verify(&p).unwrap();
        assert_eq!(cert.leaf_pattern().len(), 4);
        assert!(cert.has_leaf_labeled(p.label_by_name("3").unwrap()));
        assert!(!cert.has_leaf_labeled(p.label_by_name("1").unwrap()));
    }

    #[test]
    fn tampered_leaf_pattern_is_rejected() {
        let p = three_coloring();
        let mut cert = figure_7_certificate(&p);
        let l1 = p.label_by_name("1").unwrap();
        let l2 = p.label_by_name("2").unwrap();
        let l3 = p.label_by_name("3").unwrap();
        // Change one leaf of the tree rooted at 1 (keeping configurations valid:
        // 2 : 1 3 is allowed) so the leaf patterns no longer agree.
        cert.trees.insert(
            l1,
            CertificateTree::new(2, 2, vec![l1, l2, l2, l1, l3, l3, l3]),
        );
        let err = cert.verify(&p).unwrap_err();
        assert!(err.contains("different leaf labeling"), "{err}");
    }

    #[test]
    fn forbidden_configuration_in_tree_is_rejected() {
        let p = three_coloring();
        let mut cert = figure_7_certificate(&p);
        let l1 = p.label_by_name("1").unwrap();
        let l3 = p.label_by_name("3").unwrap();
        // Root 1 with children 1,1 is forbidden.
        cert.trees.insert(
            l1,
            CertificateTree::new(2, 2, vec![l1, l1, l1, l3, l3, l3, l3]),
        );
        assert!(cert.verify(&p).is_err());
    }

    #[test]
    fn depth_zero_is_rejected() {
        let p = three_coloring();
        let l1 = p.label_by_name("1").unwrap();
        let cert = LogStarCertificate {
            labels: [l1].into_iter().collect(),
            depth: 0,
            trees: BTreeMap::from([(l1, CertificateTree::new(2, 0, vec![l1]))]),
        };
        assert!(cert.verify(&p).is_err());
    }

    #[test]
    fn missing_tree_is_rejected() {
        let p = three_coloring();
        let mut cert = figure_7_certificate(&p);
        cert.trees.remove(&p.label_by_name("2").unwrap());
        assert!(cert.verify(&p).is_err());
    }

    #[test]
    fn constant_certificate_for_mis_verifies() {
        // Figure 8c: an O(1) certificate for MIS with special configuration b : b 1.
        // Hand-built depth-3 trees sharing the leaf layer b b 1 1 b b 1 1.
        let p: LclProblem = "1 : a a\n1 : a b\n1 : b b\na : b b\nb : b 1\nb : 1 1\n"
            .parse()
            .unwrap();
        let l = |n: &str| p.label_by_name(n).unwrap();
        let leaves = ["b", "b", "1", "1", "b", "b", "1", "1"];
        let make = |root: &str, level1: [&str; 2], level2: [&str; 4]| {
            let mut labels = vec![l(root)];
            labels.extend(level1.iter().map(|n| l(n)));
            labels.extend(level2.iter().map(|n| l(n)));
            labels.extend(leaves.iter().map(|n| l(n)));
            CertificateTree::new(2, 3, labels)
        };
        let t1 = make("1", ["b", "b"], ["1", "b", "1", "b"]);
        let ta = make("a", ["b", "b"], ["1", "b", "1", "b"]);
        let tb = make("b", ["b", "1"], ["1", "b", "a", "b"]);
        let mut trees = BTreeMap::new();
        trees.insert(l("1"), t1);
        trees.insert(l("a"), ta);
        trees.insert(l("b"), tb);
        let base = LogStarCertificate {
            labels: [l("1"), l("a"), l("b")].into_iter().collect(),
            depth: 3,
            trees,
        };
        base.verify(&p).unwrap();
        assert!(base.has_leaf_labeled(l("b")));
        let cert = ConstantCertificate {
            base,
            special: Configuration::new(l("b"), vec![l("b"), l("1")]),
        };
        cert.verify(&p).unwrap();
        assert_eq!(cert.special_label(), l("b"));
    }

    #[test]
    fn constant_certificate_without_leaf_occurrence_is_rejected() {
        let p = three_coloring();
        // 3-coloring has no special configuration at all, so any claimed constant
        // certificate must fail verification.
        let base = figure_7_certificate(&p);
        let l1 = p.label_by_name("1").unwrap();
        let l2 = p.label_by_name("2").unwrap();
        let cert = ConstantCertificate {
            base,
            special: Configuration::new(l1, vec![l1, l2]),
        };
        assert!(cert.verify(&p).is_err());
    }

    #[test]
    fn build_with_level_indices() {
        let t = CertificateTree::build_with(2, 2, |_, level| label(level as u16));
        assert_eq!(t.root_label(), label(0));
        assert_eq!(t.label_at(1), label(1));
        assert_eq!(t.label_at(2), label(1));
        assert!(t.leaf_labels().iter().all(|&l| l == label(2)));
    }
}
