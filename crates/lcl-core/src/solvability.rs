//! Solvability of a problem on arbitrarily deep full δ-ary trees.
//!
//! The paper implicitly assumes problems are solvable; for a complete tool we also
//! detect unsolvable ones. A problem is solvable on *every* full δ-ary tree iff the
//! greatest fixed point of "keep only labels that have a continuation below within
//! the kept set" (Definition 4.5) is non-empty: the root may then pick any kept
//! label and every internal node extends the labeling downwards, while leaves are
//! unconstrained. Conversely, if the fixed point is empty, a simple induction shows
//! that no labeling of a deep enough balanced tree can satisfy all internal nodes.

use crate::label_set::LabelSet;
use crate::problem::LclProblem;

/// Computes the greatest set `S ⊆ Σ(Π)` such that every label in `S` has a
/// continuation below using only labels of `S` (the *self-sustaining* labels).
///
/// The problem is solvable on all full δ-ary trees iff the result is non-empty.
pub fn solvable_labels(problem: &LclProblem) -> LabelSet {
    let mut kept = problem.labels();
    loop {
        let next: LabelSet = kept
            .iter()
            .filter(|&l| problem.has_continuation_within(l, kept))
            .collect();
        if next == kept {
            return kept;
        }
        kept = next;
    }
}

/// Returns `true` if the problem admits a solution on every full δ-ary tree.
pub fn is_solvable(problem: &LclProblem) -> bool {
    !solvable_labels(problem).is_empty()
}

/// The depth beyond which an unsolvable problem provably has no solution: if the
/// greatest fixed point is empty, the iteration removes at least one label per step,
/// so balanced trees of depth `|Σ| + 1` already have no valid labeling.
pub fn unsolvability_depth_bound(problem: &LclProblem) -> usize {
    problem.num_labels() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;
    use crate::label::Label;
    use crate::labeling::Labeling;
    use lcl_trees::generators;

    #[test]
    fn coloring_problems_are_solvable() {
        let p: LclProblem = "1:22\n2:11\n".parse().unwrap();
        assert!(is_solvable(&p));
        assert_eq!(solvable_labels(&p).len(), 2);
    }

    #[test]
    fn empty_configuration_set_is_unsolvable() {
        let p: LclProblem = "labels: a b\n".parse().unwrap();
        assert!(!is_solvable(&p));
        assert!(solvable_labels(&p).is_empty());
    }

    #[test]
    fn dead_end_labels_are_removed_but_problem_stays_solvable() {
        // `b` can only be followed by `c`, which has no continuation; but `a` loops.
        let p: LclProblem = "a : a a\na : b c\nb : c c\n".parse().unwrap();
        let solvable = solvable_labels(&p);
        let a = p.label_by_name("a").unwrap();
        assert!(solvable.contains(a));
        assert!(!solvable.contains(p.label_by_name("b").unwrap()));
        assert!(!solvable.contains(p.label_by_name("c").unwrap()));
        assert!(is_solvable(&p));
    }

    #[test]
    fn chain_of_dead_ends_is_unsolvable() {
        // Every label eventually runs out of continuations.
        let p: LclProblem = "a : b b\nb : c c\n".parse().unwrap();
        assert!(!is_solvable(&p));
    }

    #[test]
    fn exhaustive_check_on_small_unsolvable_instance() {
        // Brute-force all labelings of a depth-2 balanced binary tree and confirm
        // that none is valid, matching the fixed-point verdict: with the single
        // configuration a : b b, nodes at depth 1 can never be labeled correctly.
        let p: LclProblem = "a : b b\n".parse().unwrap();
        assert!(!is_solvable(&p));
        let tree = generators::balanced(2, 2);
        let labels: Vec<Label> = p.labels().iter().collect();
        let n = tree.len();
        let total = labels.len().pow(n as u32);
        let mut found = false;
        for code in 0..total {
            let mut c = code;
            let mut labeling = Labeling::for_tree(&tree);
            for v in tree.nodes() {
                labeling.set(v, labels[c % labels.len()]);
                c /= labels.len();
            }
            if labeling.verify(&tree, &p).is_ok() {
                found = true;
                break;
            }
        }
        assert!(
            !found,
            "brute force found a solution for an 'unsolvable' problem"
        );
    }

    #[test]
    fn solvable_labels_support_greedy_solutions() {
        let p: LclProblem = "a : a a\na : b c\nb : c c\n".parse().unwrap();
        let tree = generators::random_full(2, 101, 3);
        let labeling = greedy::solve(&p, &tree).expect("solvable problem");
        labeling.verify(&tree, &p).unwrap();
    }

    #[test]
    fn depth_bound_is_labels_plus_one() {
        let p: LclProblem = "a : b b\nb : c c\n".parse().unwrap();
        assert_eq!(unsolvability_depth_bound(&p), 4);
    }
}
