//! Bit-sliced classification: 64–512 problems of one (δ, Σ) universe in
//! lockstep.
//!
//! Every problem of a complete (δ, Σ) family is a subset of one shared
//! configuration universe — a `u64` mask over at most 63 possible
//! configurations (see `lcl_problems::canonical::CanonicalFamily`). The masked
//! kernels in [`crate::scratch`] classify one such mask at a time; this module
//! transposes a **block of up to `W::LANES` masks** (64 per `u64` of the
//! [`LaneWord`] `W` — up to 512 for `[u64; 8]`) so that the same fixed-point
//! iterations run on all of them simultaneously, one bit lane per problem:
//!
//! * per universe configuration `i`, a lane word whose bit `j` says "problem
//!   `j` contains configuration `i`" (the transposed successor table
//!   [`BitSliceScratch`] builds from a block),
//! * per label `l`, a lane word whose bit `j` says "label `l` is still allowed
//!   in problem `j`" — the same trick [`crate::label_set::LabelSet`] plays per
//!   label, lifted one axis.
//!
//! Every stage of the decision procedure is then a short loop over word-wide
//! AND/OR operations shared by all lanes of the block. Wide lane words are
//! plain `[u64; N]` arrays whose per-word method loops autovectorize to the
//! machine's native SIMD width — no intrinsics, no unsafe; pick a width at
//! runtime with [`LaneWidth`] or let [`calibrate_lane_width`] probe for the
//! fastest one. The stages:
//!
//! * [`prune_fixpoint_sliced`] — Algorithm 2's pruning loop (trim +
//!   flexibility), lane-parallel, with a per-lane iteration counter;
//! * [`flexible_states_sliced`] — Algorithm 1 via lane-parallel boolean matrix
//!   powers of the masked path automaton: a state is flexible iff it carries
//!   closed walks of two consecutive lengths, which by Wielandt's primitivity
//!   bound happens within `(k−1)² + 1` powers for a k-label universe (each
//!   power is a k×k boolean matrix product whose entries are 64-lane words);
//! * [`exists_builder_sliced`] — the decision form of Algorithm 3: one entry
//!   fixed point per candidate subset, entries bit-sliced as "lane has derived
//!   root-set T" words, so a whole block shares each δ-tuple enumeration;
//! * [`classify_block_sliced`] — the full verdict dispatch mirroring
//!   [`crate::classifier::classify_complexity_with`], including the Algorithm
//!   4/5 subset searches (run as lane-peeled existence sweeps over the
//!   subsets of Σ).
//!
//! # The lanes-per-problem invariant
//!
//! All lanes of a block must be problems over the **same** universe with the
//! **full** declared label set Σ = `{0, …, num_labels−1}` (what
//! `problem_from_universe` produces for every family member: labels with no
//! configurations are declared but unused). Verdicts depend only on the
//! configuration mask, so a lane is fully described by its `u64`.
//!
//! # Lane peeling and scalar fallback
//!
//! Lanes whose verdict is decided retire their bit from the live mask after
//! every stage (unsolvable after the trim, polynomial after the pruning
//! fixpoint, constant/log*/log after the subset searches), so later — more
//! expensive — stages only run while undecided lanes remain. One stage
//! genuinely diverges per lane and falls back to the scalar kernels: the exact
//! Θ(n^{1/k}) exponent descent (Lemmas 5.28–5.29) when the per-lane pruning
//! iteration count exceeds 1 ([`LaneVerdict::NeedsPolyExponent`]; the caller
//! resolves such lanes with [`crate::scratch::poly_exponent_masked`], which
//! requires materializing the one problem). Everything else — including the
//! log*/constant searches, whose per-lane winning subsets differ but whose
//! *verdicts* are pure existence questions — stays bit-sliced.

use crate::classifier::Complexity;

/// Number of problems classified per block by the base `u64` lane word — the
/// narrowest (and default) width. Wider words ([`LaneWord`]) are multiples of
/// this, up to [`LaneWidth::W512`].
pub const LANES: usize = 64;

/// A machine word (or small fixed array of words) holding one bit lane per
/// problem — the element type every bit-sliced kernel operates on.
///
/// `u64` is the scalar baseline (64 lanes). The `[u64; 2]`, `[u64; 4]` and
/// `[u64; 8]` impls widen a kernel pass to 128/256/512 lanes: each method is a
/// short fixed-length loop over the words, which the compiler autovectorizes
/// into SIMD-width AND/OR/ANDN instructions (no intrinsics, no unsafe). All
/// methods are branch-free except the queries (`is_zero`, `test_bit`,
/// `for_each_lane`).
pub trait LaneWord: Copy + Eq + Send + Sync + std::fmt::Debug + 'static {
    /// Number of bit lanes (problems per block) this word carries.
    const LANES: usize;
    /// The word with every lane clear.
    const ZERO: Self;

    /// The word with the low `n` lanes set (`n == LANES` gives all ones).
    ///
    /// # Panics
    ///
    /// May panic (in debug builds) when `n > LANES`.
    fn lanes_mask(n: usize) -> Self;
    /// Lane-wise AND.
    fn and(self, other: Self) -> Self;
    /// Lane-wise OR.
    fn or(self, other: Self) -> Self;
    /// Lane-wise AND-NOT: the lanes of `self` not set in `other`.
    fn andnot(self, other: Self) -> Self;
    /// `true` iff no lane is set.
    fn is_zero(self) -> bool;
    /// Number of set lanes.
    fn count_lanes(self) -> u32;
    /// Sets lane `j`.
    fn set_bit(&mut self, j: usize);
    /// `true` iff lane `j` is set.
    fn test_bit(self, j: usize) -> bool;
    /// Calls `f(j)` for every set lane index `j`, in ascending order.
    fn for_each_lane(self, f: impl FnMut(usize));
}

impl LaneWord for u64 {
    const LANES: usize = 64;
    const ZERO: Self = 0;

    #[inline]
    fn lanes_mask(n: usize) -> Self {
        debug_assert!(n <= 64);
        if n >= 64 {
            !0
        } else {
            (1u64 << n) - 1
        }
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }

    #[inline]
    fn andnot(self, other: Self) -> Self {
        self & !other
    }

    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }

    #[inline]
    fn count_lanes(self) -> u32 {
        self.count_ones()
    }

    #[inline]
    fn set_bit(&mut self, j: usize) {
        *self |= 1u64 << j;
    }

    #[inline]
    fn test_bit(self, j: usize) -> bool {
        self >> j & 1 != 0
    }

    #[inline]
    fn for_each_lane(self, mut f: impl FnMut(usize)) {
        let mut bits = self;
        while bits != 0 {
            f(bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

macro_rules! lane_word_array {
    ($n:literal) => {
        impl LaneWord for [u64; $n] {
            const LANES: usize = 64 * $n;
            const ZERO: Self = [0; $n];

            #[inline]
            fn lanes_mask(n: usize) -> Self {
                debug_assert!(n <= Self::LANES);
                let mut out = [0u64; $n];
                let full = (n / 64).min($n);
                for word in out.iter_mut().take(full) {
                    *word = !0;
                }
                if full < $n && n % 64 != 0 {
                    out[full] = (1u64 << (n % 64)) - 1;
                }
                out
            }

            #[inline]
            fn and(mut self, other: Self) -> Self {
                for i in 0..$n {
                    self[i] &= other[i];
                }
                self
            }

            #[inline]
            fn or(mut self, other: Self) -> Self {
                for i in 0..$n {
                    self[i] |= other[i];
                }
                self
            }

            #[inline]
            fn andnot(mut self, other: Self) -> Self {
                for i in 0..$n {
                    self[i] &= !other[i];
                }
                self
            }

            #[inline]
            fn is_zero(self) -> bool {
                self.iter().all(|&w| w == 0)
            }

            #[inline]
            fn count_lanes(self) -> u32 {
                self.iter().map(|w| w.count_ones()).sum()
            }

            #[inline]
            fn set_bit(&mut self, j: usize) {
                self[j >> 6] |= 1u64 << (j & 63);
            }

            #[inline]
            fn test_bit(self, j: usize) -> bool {
                self[j >> 6] >> (j & 63) & 1 != 0
            }

            #[inline]
            fn for_each_lane(self, mut f: impl FnMut(usize)) {
                for (w, &word) in self.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        f(w * 64 + bits.trailing_zeros() as usize);
                        bits &= bits - 1;
                    }
                }
            }
        }
    };
}

lane_word_array!(2);
lane_word_array!(4);
lane_word_array!(8);

/// The runtime-selectable lane widths of the bit-sliced sweep engine, one per
/// [`LaneWord`] impl. `rtlcl sweep --lane-width` picks one (or calibrates with
/// [`calibrate_lane_width`]); the engine dispatches to the matching generic
/// kernel instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneWidth {
    /// 64 lanes (`u64`) — the baseline word.
    #[default]
    W64,
    /// 128 lanes (`[u64; 2]`).
    W128,
    /// 256 lanes (`[u64; 4]`).
    W256,
    /// 512 lanes (`[u64; 8]`).
    W512,
}

impl LaneWidth {
    /// Every width, narrowest first.
    pub const ALL: [LaneWidth; 4] = [
        LaneWidth::W64,
        LaneWidth::W128,
        LaneWidth::W256,
        LaneWidth::W512,
    ];

    /// Number of lanes (problems per block) at this width.
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::W64 => 64,
            LaneWidth::W128 => 128,
            LaneWidth::W256 => 256,
            LaneWidth::W512 => 512,
        }
    }

    /// The width's display name — its lane count in decimal.
    pub fn name(self) -> &'static str {
        match self {
            LaneWidth::W64 => "64",
            LaneWidth::W128 => "128",
            LaneWidth::W256 => "256",
            LaneWidth::W512 => "512",
        }
    }

    /// Parses a lane count (`"64"`, `"128"`, `"256"`, `"512"`).
    pub fn parse(s: &str) -> Option<LaneWidth> {
        LaneWidth::ALL.into_iter().find(|w| w.name() == s)
    }
}

impl std::fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Maximum number of labels a sliced universe supports. The 63-configuration
/// mask limit keeps realistic families far below this (δ = 2 caps at 4 labels,
/// δ = 1 at 7), matching `MAX_CANONICAL_ENUM_LABELS` on the enumeration side.
pub const MAX_SLICE_LABELS: usize = 8;

/// The dense shared configuration table of a (δ, Σ) universe, in the exact
/// order the family's configuration masks index (bit `i` of a mask ↔ entry `i`
/// here). Built once per family and shared by every block.
#[derive(Debug, Clone)]
pub struct SlicedUniverse {
    delta: usize,
    num_labels: usize,
    /// Parent label index per configuration.
    parents: Vec<u8>,
    /// Child label indices, flattened: configuration `i` owns
    /// `children[i*delta .. (i+1)*delta]`.
    children: Vec<u8>,
    /// Per configuration, the set of labels it mentions (bit per label).
    label_bits: Vec<u16>,
    /// Per configuration, whether the parent repeats among the children (the
    /// "special configuration" predicate of Algorithm 5).
    special: Vec<bool>,
    /// Configuration indices grouped by parent label.
    by_parent: Vec<Vec<u32>>,
    /// The non-empty subsets of Σ in ascending (size, bitmask) order — the
    /// enumeration order of Algorithms 4–5 (`2^k − 1` entries).
    subsets_by_size: Vec<u16>,
}

impl SlicedUniverse {
    /// An empty universe over `num_labels` labels; populate it with
    /// [`Self::push_config`] in mask-bit order.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is zero or `num_labels` is outside
    /// `1..=MAX_SLICE_LABELS`.
    pub fn new(delta: usize, num_labels: usize) -> Self {
        assert!(delta >= 1, "delta must be positive");
        assert!(
            (1..=MAX_SLICE_LABELS).contains(&num_labels),
            "sliced universes support 1..={MAX_SLICE_LABELS} labels, got {num_labels}"
        );
        let mut subsets_by_size: Vec<u16> = (1..1u16 << num_labels).collect();
        subsets_by_size.sort_unstable_by_key(|&s| (s.count_ones(), s));
        SlicedUniverse {
            delta,
            num_labels,
            parents: Vec::new(),
            children: Vec::new(),
            label_bits: Vec::new(),
            special: Vec::new(),
            by_parent: vec![Vec::new(); num_labels],
            subsets_by_size,
        }
    }

    /// Appends one configuration and returns its mask-bit index.
    ///
    /// # Panics
    ///
    /// Panics when the universe is full (63 configurations, the mask limit),
    /// when `children.len() != delta`, or on an out-of-range label index.
    pub fn push_config(&mut self, parent: usize, children: &[usize]) -> usize {
        assert!(
            self.len() < 63,
            "a sliced universe holds at most 63 configurations"
        );
        assert_eq!(
            children.len(),
            self.delta,
            "configuration arity must equal delta"
        );
        assert!(parent < self.num_labels);
        let index = self.len();
        let mut bits = 1u16 << parent;
        let mut special = false;
        for &c in children {
            assert!(c < self.num_labels);
            bits |= 1 << c;
            special |= c == parent;
            self.children.push(c as u8);
        }
        self.parents.push(parent as u8);
        self.label_bits.push(bits);
        self.special.push(special);
        self.by_parent[parent].push(index as u32);
        index
    }

    /// Number of configurations (= mask bits).
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` when no configuration has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The universe's δ.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The universe's |Σ|.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// The children of configuration `i`.
    fn children_of(&self, i: usize) -> &[u8] {
        &self.children[i * self.delta..(i + 1) * self.delta]
    }
}

/// Per-lane outcome of [`classify_block_sliced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneVerdict {
    /// The verdict was fully decided in lockstep.
    Decided(Complexity),
    /// The lane is polynomial with ≥ 2 pruning iterations: the exact exponent
    /// needs the scalar trim/flexible-SCC descent
    /// ([`crate::scratch::poly_exponent_masked`]) on the materialized problem.
    NeedsPolyExponent,
}

/// Fixed-point statistics of one block, for the sweep's lane-utilization
/// report: `live_lane_rounds / fixpoint_rounds` is the average number of live
/// (not yet converged or retired) lanes per fixed-point round, over both the
/// solvability trim and the pruning loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Total trim + pruning fixed-point rounds executed for the block.
    pub fixpoint_rounds: u64,
    /// Sum over those rounds of the number of live lanes entering the round.
    pub live_lane_rounds: u64,
}

/// Reusable per-worker buffers for the bit-sliced kernels: the transposed
/// configuration table of the current block plus every lane-word the stages
/// iterate on, generic over the [`LaneWord`] `W` (64–512 lanes per block). All
/// buffers grow to the universe's size on first use and are reused; a warmed
/// scratch serves every further block without touching the allocator (pinned
/// by `crates/lcl-core/tests/zero_alloc.rs` for both the `u64` and a wide
/// width).
#[derive(Debug)]
pub struct BitSliceScratch<W: LaneWord = u64> {
    /// Transposed block: per configuration, the lanes containing it.
    config_lanes: Vec<W>,
    /// `config_lanes` restricted to the current allowed-label sets.
    config_active: Vec<W>,
    /// Per label, the lanes in which it is currently allowed.
    allowed: [W; MAX_SLICE_LABELS],
    /// Per label, the lanes in which it survived the solvability trim.
    sustaining: [W; MAX_SLICE_LABELS],
    /// Per label, the lanes in which it is flexible (Algorithm 1 output).
    flex: [W; MAX_SLICE_LABELS],
    /// Lane-parallel adjacency of the masked path automaton.
    succ: [[W; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
    /// Current boolean matrix power of `succ`.
    pow: [[W; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
    /// Next power (double buffer).
    pow_next: [[W; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
    /// Diagonal of the previous power.
    diag_prev: [W; MAX_SLICE_LABELS],
    /// Per-lane pruning iteration count (Algorithm 2's `k`), `W::LANES` long.
    iterations: Vec<u32>,
    /// Algorithm 3 entries without the special-leaf flag: per root-label set
    /// `T` (indexed by label bitmask), the lanes that derived `(T, false)`.
    present: Vec<W>,
    /// Entries with the special-leaf flag set: lanes that derived `(T, true)`.
    present_flagged: Vec<W>,
    /// Per label, the lanes producing it from the current δ-tuple.
    produced: [W; MAX_SLICE_LABELS],
    /// Configurations lying inside the current subset.
    subset_configs: Vec<u32>,
    /// Non-empty subsets of the current subset (odometer symbols).
    sub_list: Vec<u16>,
    /// Odometer over `sub_list` indices, one digit per child slot.
    tuple: [u32; MAX_SLICE_LABELS],
}

impl<W: LaneWord> Default for BitSliceScratch<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: LaneWord> BitSliceScratch<W> {
    /// Creates an empty scratch. Buffers grow on first use and are reused.
    pub fn new() -> Self {
        BitSliceScratch {
            config_lanes: Vec::new(),
            config_active: Vec::new(),
            allowed: [W::ZERO; MAX_SLICE_LABELS],
            sustaining: [W::ZERO; MAX_SLICE_LABELS],
            flex: [W::ZERO; MAX_SLICE_LABELS],
            succ: [[W::ZERO; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
            pow: [[W::ZERO; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
            pow_next: [[W::ZERO; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
            diag_prev: [W::ZERO; MAX_SLICE_LABELS],
            iterations: Vec::new(),
            present: Vec::new(),
            present_flagged: Vec::new(),
            produced: [W::ZERO; MAX_SLICE_LABELS],
            subset_configs: Vec::new(),
            sub_list: Vec::new(),
            tuple: [0; MAX_SLICE_LABELS],
        }
    }

    /// Sizes every universe-dependent buffer (allocation-free once warm).
    fn prepare(&mut self, universe: &SlicedUniverse) {
        self.config_lanes.clear();
        self.config_lanes.resize(universe.len(), W::ZERO);
        self.config_active.clear();
        self.config_active.resize(universe.len(), W::ZERO);
        if self.iterations.len() < W::LANES {
            self.iterations.resize(W::LANES, 0);
        }
        let entry_space = 1usize << universe.num_labels;
        if self.present.len() < entry_space {
            self.present.resize(entry_space, W::ZERO);
            self.present_flagged.resize(entry_space, W::ZERO);
        }
    }

    /// Transposes `masks` into `config_lanes`: bit `j` of `config_lanes[i]`
    /// says "lane `j`'s mask contains configuration `i`".
    fn transpose(&mut self, universe: &SlicedUniverse, masks: &[u64]) {
        for lanes in &mut self.config_lanes {
            *lanes = W::ZERO;
        }
        for (j, &mask) in masks.iter().enumerate() {
            debug_assert_eq!(
                mask >> universe.len(),
                0,
                "mask uses bits outside the universe"
            );
            let mut bits = mask;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                self.config_lanes[i].set_bit(j);
                bits &= bits - 1;
            }
        }
    }

    /// `config_active[i] = config_lanes[i]` restricted to lanes in which every
    /// label of configuration `i` is in `allowed`.
    fn refresh_active(&mut self, universe: &SlicedUniverse) {
        for (i, active) in self.config_active.iter_mut().enumerate() {
            let mut lanes = self.config_lanes[i];
            let mut labels = universe.label_bits[i];
            while labels != 0 {
                let l = labels.trailing_zeros() as usize;
                lanes = lanes.and(self.allowed[l]);
                labels &= labels - 1;
            }
            *active = lanes;
        }
    }
}

/// Algorithm 1, bit-sliced: computes the flexible labels of every lane's
/// problem restricted to the lane's current `allowed` sets (read from
/// `scratch.allowed`, written to `scratch.flex`).
///
/// A label `a` is flexible iff the masked path automaton has closed walks of
/// two consecutive lengths through `a` (closed walks stay inside `a`'s SCC, so
/// consecutive lengths force period 1, and any closed walk witnesses a cycle;
/// conversely a primitive SCC of m ≤ k states has all-positive diagonal from
/// Wielandt's exponent `(m−1)² + 1` on). Checking walk lengths `1 ..= (k−1)²+1`
/// therefore decides every lane exactly, as k×k boolean matrix powers whose
/// entries are `W::LANES`-lane words.
pub fn flexible_states_sliced<W: LaneWord>(
    universe: &SlicedUniverse,
    scratch: &mut BitSliceScratch<W>,
) {
    let k = universe.num_labels;
    let delta = universe.delta;
    scratch.refresh_active(universe);
    for row in scratch.succ.iter_mut().take(k) {
        row[..k].fill(W::ZERO);
    }
    for (i, &active) in scratch.config_active.iter().enumerate() {
        if active.is_zero() {
            continue;
        }
        let from = universe.parents[i] as usize;
        for &child in &universe.children[i * delta..(i + 1) * delta] {
            let slot = &mut scratch.succ[from][child as usize];
            *slot = slot.or(active);
        }
    }
    for a in 0..k {
        scratch.pow[a][..k].copy_from_slice(&scratch.succ[a][..k]);
        scratch.diag_prev[a] = scratch.succ[a][a];
        scratch.flex[a] = W::ZERO;
    }
    // Wielandt bound for the largest possible SCC (all k labels).
    let max_walk = (k - 1) * (k - 1) + 1;
    for _ in 1..=max_walk {
        for a in 0..k {
            for b in 0..k {
                let mut lanes = W::ZERO;
                for m in 0..k {
                    lanes = lanes.or(scratch.pow[a][m].and(scratch.succ[m][b]));
                }
                scratch.pow_next[a][b] = lanes;
            }
        }
        for a in 0..k {
            let diag = scratch.pow_next[a][a];
            scratch.flex[a] = scratch.flex[a].or(scratch.diag_prev[a].and(diag));
            scratch.diag_prev[a] = diag;
        }
        std::mem::swap(&mut scratch.pow, &mut scratch.pow_next);
    }
    for a in 0..k {
        scratch.flex[a] = scratch.flex[a].and(scratch.allowed[a]);
    }
}

/// The solvability trim (greatest self-sustaining label set), bit-sliced:
/// starting from the full Σ in every live lane, repeatedly drops labels with
/// no continuation inside the surviving set. Writes the per-label fixpoint
/// lanes to `scratch.sustaining`; a lane is solvable iff some label survives.
fn trim_sliced<W: LaneWord>(
    universe: &SlicedUniverse,
    scratch: &mut BitSliceScratch<W>,
    live: W,
    stats: &mut BlockStats,
) {
    let k = universe.num_labels;
    for l in 0..k {
        scratch.allowed[l] = live;
    }
    let mut working = live;
    while !working.is_zero() {
        stats.fixpoint_rounds += 1;
        stats.live_lane_rounds += u64::from(working.count_lanes());
        scratch.refresh_active(universe);
        let mut changed = W::ZERO;
        for l in 0..k {
            let mut continued = W::ZERO;
            for &i in &universe.by_parent[l] {
                continued = continued.or(scratch.config_active[i as usize]);
            }
            let next = scratch.allowed[l].and(continued);
            changed = changed.or(scratch.allowed[l].andnot(next));
            scratch.allowed[l] = next;
        }
        // A lane with no change is at its fixpoint for good (the trim step is
        // a deterministic monotone function of the lane's allowed sets).
        working = working.and(changed);
    }
    scratch.sustaining[..k].copy_from_slice(&scratch.allowed[..k]);
}

/// Algorithm 2's pruning loop, bit-sliced: iterates [`flexible_states_sliced`]
/// to a fixed point in every live lane, counting each lane's non-empty pruning
/// iterations in `scratch.iterations` (the fixpoint label lanes stay in
/// `scratch.allowed`). Mirrors [`crate::scratch::prune_fixpoint_masked`]
/// per lane.
pub fn prune_fixpoint_sliced<W: LaneWord>(
    universe: &SlicedUniverse,
    scratch: &mut BitSliceScratch<W>,
    live: W,
    stats: &mut BlockStats,
) {
    let k = universe.num_labels;
    for l in 0..k {
        scratch.allowed[l] = live;
    }
    if scratch.iterations.len() < W::LANES {
        scratch.iterations.resize(W::LANES, 0);
    }
    scratch.iterations.fill(0);
    let mut working = live;
    while !working.is_zero() {
        stats.fixpoint_rounds += 1;
        stats.live_lane_rounds += u64::from(working.count_lanes());
        flexible_states_sliced(universe, scratch);
        let mut removed = W::ZERO;
        for l in 0..k {
            removed = removed.or(scratch.allowed[l].andnot(scratch.flex[l]));
            scratch.allowed[l] = scratch.flex[l];
        }
        removed = removed.and(working);
        let iterations = &mut scratch.iterations;
        removed.for_each_lane(|j| iterations[j] += 1);
        working = removed;
    }
}

/// `true` iff `children` can be matched one-to-one onto the slot sets (child
/// `c` fits slot `s` iff bit `c` of `slots[s]` is set) — the lane-independent
/// twin of [`crate::configuration::children_match_slots`] on label indices.
fn children_fit_slots(children: &[u8], slots: &[u16]) -> bool {
    match children.len() {
        1 => slots[0] & (1 << children[0]) != 0,
        2 => {
            let (c0, c1) = (1u16 << children[0], 1u16 << children[1]);
            (slots[0] & c0 != 0 && slots[1] & c1 != 0) || (slots[0] & c1 != 0 && slots[1] & c0 != 0)
        }
        _ => fit_backtrack(children, slots, 0, 0),
    }
}

fn fit_backtrack(children: &[u8], slots: &[u16], at: usize, used: u32) -> bool {
    if at == children.len() {
        return true;
    }
    let want = 1u16 << children[at];
    for (s, &slot) in slots.iter().enumerate() {
        if used & (1 << s) == 0
            && slot & want != 0
            && fit_backtrack(children, slots, at + 1, used | (1 << s))
        {
            return true;
        }
    }
    false
}

/// The decision form of Algorithm 3, bit-sliced: for each lane in `active`,
/// does the lane's problem restricted to `subset` (a label bitmask) admit a
/// certificate builder — with the special label `target` producible on a leaf
/// when one is given? Returns the success lanes. Mirrors
/// [`crate::scratch::exists_builder_masked`] per lane: same entry space
/// (root-label set × special-leaf flag), same fixed point, evaluated for the
/// whole block per δ-tuple.
///
/// `target`, when given, must be a member of `subset`.
pub fn exists_builder_sliced<W: LaneWord>(
    universe: &SlicedUniverse,
    scratch: &mut BitSliceScratch<W>,
    subset: u16,
    target: Option<usize>,
    active: W,
) -> W {
    debug_assert_ne!(subset, 0);
    debug_assert!(target.is_none_or(|t| subset & (1 << t) != 0));
    let delta = universe.delta;

    // The restriction must have at least one configuration (Algorithm 3 on an
    // empty configuration set finds nothing), and only configurations inside
    // the subset participate at all.
    scratch.subset_configs.clear();
    let mut has_config = W::ZERO;
    for (i, &bits) in universe.label_bits.iter().enumerate() {
        if bits & !subset == 0 {
            scratch.subset_configs.push(i as u32);
            has_config = has_config.or(scratch.config_lanes[i]);
        }
    }
    let active = active.and(has_config);
    if active.is_zero() {
        return W::ZERO;
    }

    // Seed entries: one singleton per subset label, flagged iff it is the
    // target. A singleton subset is therefore decided immediately (the seed
    // entry *is* the wanted entry).
    if subset.count_ones() == 1 {
        return active;
    }
    let mut sub = subset;
    scratch.sub_list.clear();
    while sub != 0 {
        scratch.sub_list.push(sub);
        let lanes_slot = sub as usize;
        scratch.present[lanes_slot] = W::ZERO;
        scratch.present_flagged[lanes_slot] = W::ZERO;
        sub = (sub - 1) & subset;
    }
    let mut labels = subset;
    while labels != 0 {
        let l = labels.trailing_zeros() as usize;
        if target == Some(l) {
            scratch.present_flagged[1 << l] = active;
        } else {
            scratch.present[1 << l] = active;
        }
        labels &= labels - 1;
    }

    let symbols = scratch.sub_list.len();
    let mut success = W::ZERO;
    let mut remaining = active;
    loop {
        let mut added = false;
        scratch.tuple[..delta].fill(0);
        'tuples: loop {
            // Availability per lane: all slots present (any flag), all slots
            // present unflagged, and some slot present flagged.
            let mut all_any = remaining;
            let mut all_unflagged = remaining;
            let mut some_flagged = W::ZERO;
            let mut slots = [0u16; MAX_SLICE_LABELS];
            for (slot, &digit) in slots.iter_mut().zip(&scratch.tuple[..delta]) {
                let t = scratch.sub_list[digit as usize];
                *slot = t;
                let plain = scratch.present[t as usize];
                let flagged = scratch.present_flagged[t as usize];
                all_any = all_any.and(plain.or(flagged));
                all_unflagged = all_unflagged.and(plain);
                some_flagged = some_flagged.or(flagged);
            }
            let all_flagged = all_any.and(some_flagged);
            if !all_any.is_zero() {
                // Lanes producing each parent from this tuple.
                let k = universe.num_labels;
                scratch.produced[..k].fill(W::ZERO);
                for &ci in &scratch.subset_configs {
                    let i = ci as usize;
                    if children_fit_slots(universe.children_of(i), &slots[..delta]) {
                        let slot = &mut scratch.produced[universe.parents[i] as usize];
                        *slot = slot.or(scratch.config_lanes[i]);
                    }
                }
                // Group lanes by their exact produced set and insert entries.
                for si in 0..symbols {
                    let t = scratch.sub_list[si];
                    let mut exact_unflagged = all_unflagged;
                    let mut exact_flagged = all_flagged;
                    let mut bits = subset;
                    while bits != 0 {
                        let l = bits.trailing_zeros() as usize;
                        let produced = scratch.produced[l];
                        if t & (1 << l) != 0 {
                            exact_unflagged = exact_unflagged.and(produced);
                            exact_flagged = exact_flagged.and(produced);
                        } else {
                            exact_unflagged = exact_unflagged.andnot(produced);
                            exact_flagged = exact_flagged.andnot(produced);
                        }
                        bits &= bits - 1;
                    }
                    let new_unflagged = exact_unflagged.andnot(scratch.present[t as usize]);
                    if !new_unflagged.is_zero() {
                        scratch.present[t as usize] = scratch.present[t as usize].or(new_unflagged);
                        added = true;
                    }
                    let new_flagged = exact_flagged.andnot(scratch.present_flagged[t as usize]);
                    if !new_flagged.is_zero() {
                        scratch.present_flagged[t as usize] =
                            scratch.present_flagged[t as usize].or(new_flagged);
                        added = true;
                    }
                }
            }
            // Advance the δ-digit odometer over the subset symbols.
            let mut pos = 0;
            loop {
                if pos == delta {
                    break 'tuples;
                }
                scratch.tuple[pos] += 1;
                if (scratch.tuple[pos] as usize) < symbols {
                    break;
                }
                scratch.tuple[pos] = 0;
                pos += 1;
            }
        }
        // Wanted entry: the full subset, flagged iff a target was required.
        let wanted = if target.is_some() {
            scratch.present_flagged[subset as usize]
        } else {
            scratch.present[subset as usize]
        };
        let won = wanted.and(remaining);
        success = success.or(won);
        remaining = remaining.andnot(won);
        if !added || remaining.is_zero() {
            return success;
        }
    }
}

/// Lanes (within `eligible`) in which `subset` is self-sustaining: every
/// subset label heads some configuration of the lane lying fully inside the
/// subset.
fn self_sustaining_lanes<W: LaneWord>(
    universe: &SlicedUniverse,
    scratch: &BitSliceScratch<W>,
    subset: u16,
    eligible: W,
) -> W {
    let mut lanes = eligible;
    let mut labels = subset;
    while labels != 0 && !lanes.is_zero() {
        let l = labels.trailing_zeros() as usize;
        let mut continued = W::ZERO;
        for &i in &universe.by_parent[l] {
            if universe.label_bits[i as usize] & !subset == 0 {
                continued = continued.or(scratch.config_lanes[i as usize]);
            }
        }
        lanes = lanes.and(continued);
        labels &= labels - 1;
    }
    lanes
}

/// Classifies a block of up to `W::LANES` configuration masks in lockstep,
/// mirroring [`crate::classifier::classify_complexity_with`] on every lane
/// (same decision order: solvability, pruning fixpoint, Algorithm 4,
/// Algorithm 5). `verdicts` is resized to `masks.len()`; every lane is either
/// fully decided or flagged [`LaneVerdict::NeedsPolyExponent`] for the scalar
/// exponent descent (see the module docs on fallback). Returns the block's
/// fixed-point statistics.
///
/// # Panics
///
/// Panics if `masks` has more than `W::LANES` entries.
pub fn classify_block_sliced<W: LaneWord>(
    universe: &SlicedUniverse,
    masks: &[u64],
    scratch: &mut BitSliceScratch<W>,
    verdicts: &mut Vec<LaneVerdict>,
) -> BlockStats {
    assert!(
        masks.len() <= W::LANES,
        "a block holds at most {} masks at this lane width",
        W::LANES
    );
    let mut stats = BlockStats::default();
    verdicts.clear();
    verdicts.resize(masks.len(), LaneVerdict::Decided(Complexity::Unsolvable));
    if masks.is_empty() {
        return stats;
    }
    let all = W::lanes_mask(masks.len());
    let k = universe.num_labels;
    scratch.prepare(universe);
    scratch.transpose(universe, masks);

    // Stage 1: solvability trim. Lanes with no sustaining label are
    // unsolvable and retire.
    trim_sliced(universe, scratch, all, &mut stats);
    let mut sustain_any = W::ZERO;
    for l in 0..k {
        sustain_any = sustain_any.or(scratch.sustaining[l]);
    }
    let mut live = all.and(sustain_any);

    // Stage 2: pruning fixpoint. Lanes whose fixpoint is empty are polynomial
    // and retire (exponent 1 when pruning took at most one iteration, scalar
    // descent otherwise).
    prune_fixpoint_sliced(universe, scratch, live, &mut stats);
    let mut fix_any = W::ZERO;
    for l in 0..k {
        fix_any = fix_any.or(scratch.allowed[l]);
    }
    let poly = live.andnot(fix_any);
    {
        let iterations = &scratch.iterations;
        poly.for_each_lane(|j| {
            verdicts[j] = if iterations[j] <= 1 {
                LaneVerdict::Decided(Complexity::Polynomial { exponent: 1 })
            } else {
                LaneVerdict::NeedsPolyExponent
            };
        });
    }
    live = live.andnot(poly);

    // Stage 3: Algorithm 4 as a lane-peeled existence sweep — a lane is
    // O(log* n)-solvable iff *some* subset of Σ is self-sustaining in it and
    // admits a builder. Self-sustaining subsets are automatically subsets of
    // the lane's greatest self-sustaining set, so no per-lane subset spaces
    // are needed; decided lanes retire their bit.
    let mut log_star_found = W::ZERO;
    let mut undecided = live;
    for si in 0..universe.subsets_by_size.len() {
        if undecided.is_zero() {
            break;
        }
        let subset = universe.subsets_by_size[si];
        let eligible = self_sustaining_lanes(universe, scratch, subset, undecided);
        if eligible.is_zero() {
            continue;
        }
        let won = exists_builder_sliced(universe, scratch, subset, None, eligible);
        log_star_found = log_star_found.or(won);
        undecided = undecided.andnot(won);
    }
    live.andnot(log_star_found)
        .for_each_lane(|j| verdicts[j] = LaneVerdict::Decided(Complexity::Log));

    // Stage 4: Algorithm 5, same sweep shape, only over lanes already known
    // O(log* n) that contain a special configuration at all; per subset, one
    // builder run per distinct special parent.
    let mut special_any = W::ZERO;
    for (i, &is_special) in universe.special.iter().enumerate() {
        if is_special {
            special_any = special_any.or(scratch.config_lanes[i]);
        }
    }
    let mut constant_found = W::ZERO;
    let mut undecided = log_star_found.and(special_any);
    for si in 0..universe.subsets_by_size.len() {
        if undecided.is_zero() {
            break;
        }
        let subset = universe.subsets_by_size[si];
        let eligible = self_sustaining_lanes(universe, scratch, subset, undecided);
        if eligible.is_zero() {
            continue;
        }
        // Lanes holding a special configuration with parent `p` inside the
        // subset, per parent.
        let mut parents = subset;
        while parents != 0 {
            let p = parents.trailing_zeros() as usize;
            parents &= parents - 1;
            let mut special_p = W::ZERO;
            for &i in &universe.by_parent[p] {
                let i = i as usize;
                if universe.special[i] && universe.label_bits[i] & !subset == 0 {
                    special_p = special_p.or(scratch.config_lanes[i]);
                }
            }
            let candidates = eligible.and(special_p).and(undecided);
            if candidates.is_zero() {
                continue;
            }
            let won = exists_builder_sliced(universe, scratch, subset, Some(p), candidates);
            constant_found = constant_found.or(won);
            undecided = undecided.andnot(won);
        }
    }
    log_star_found.for_each_lane(|j| {
        verdicts[j] = if constant_found.test_bit(j) {
            LaneVerdict::Decided(Complexity::Constant)
        } else {
            LaneVerdict::Decided(Complexity::LogStar)
        };
    });
    stats
}

/// Picks the fastest [`LaneWidth`] for `universe` on the current machine by a
/// timing micro-probe: classifies `samples` (chunked to each width's block
/// size) once to warm the buffers and once timed, and returns the width with
/// the lowest per-mask time. The probe is what `rtlcl sweep
/// --lane-width auto` runs at startup; a few hundred sample masks take well
/// under a millisecond per width on the families the sweeps enumerate.
///
/// Wider is not always better: past the machine's native SIMD width the extra
/// words only add register pressure, and on blocks where one slow lane
/// dominates the fixed points, a wider block keeps more lanes spinning.
/// Returns [`LaneWidth::W64`] when `samples` is empty.
pub fn calibrate_lane_width(universe: &SlicedUniverse, samples: &[u64]) -> LaneWidth {
    fn probe<W: LaneWord>(universe: &SlicedUniverse, samples: &[u64]) -> f64 {
        let mut scratch = BitSliceScratch::<W>::new();
        let mut verdicts = Vec::new();
        for chunk in samples.chunks(W::LANES) {
            classify_block_sliced(universe, chunk, &mut scratch, &mut verdicts);
        }
        let start = std::time::Instant::now();
        for chunk in samples.chunks(W::LANES) {
            classify_block_sliced(universe, chunk, &mut scratch, &mut verdicts);
        }
        start.elapsed().as_secs_f64() / samples.len() as f64
    }

    if samples.is_empty() {
        return LaneWidth::W64;
    }
    let mut best = (LaneWidth::W64, f64::INFINITY);
    for width in LaneWidth::ALL {
        let per_mask = match width {
            LaneWidth::W64 => probe::<u64>(universe, samples),
            LaneWidth::W128 => probe::<[u64; 2]>(universe, samples),
            LaneWidth::W256 => probe::<[u64; 4]>(universe, samples),
            LaneWidth::W512 => probe::<[u64; 8]>(universe, samples),
        };
        if per_mask < best.1 {
            best = (width, per_mask);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LclProblem, ProblemBuilder};
    use crate::scratch::{
        exists_builder_masked, flexible_states_masked, prune_fixpoint_masked, ClassifyScratch,
    };
    use crate::{classify_complexity_with, Complexity, Label, LabelSet};

    /// The (δ=2, 2-label) configuration universe in family mask order
    /// (child multiset outer, parent inner — the order of
    /// `lcl_problems::random::configuration_universe`).
    fn two_label_universe_list() -> Vec<(usize, [usize; 2])> {
        let mut list = Vec::new();
        for children in [[0, 0], [0, 1], [1, 1]] {
            for parent in 0..2 {
                list.push((parent, children));
            }
        }
        list
    }

    fn two_label_sliced() -> SlicedUniverse {
        let mut u = SlicedUniverse::new(2, 2);
        for (parent, children) in two_label_universe_list() {
            u.push_config(parent, &children);
        }
        u
    }

    /// The problem with the given configuration mask, labels a=0, b=1 both
    /// always declared (the lanes-per-problem invariant).
    fn problem_at(mask: u64) -> LclProblem {
        let names = ["a", "b"];
        let mut b = ProblemBuilder::new(2);
        b.label("a");
        b.label("b");
        for (i, (p, cs)) in two_label_universe_list().into_iter().enumerate() {
            if mask & (1 << i) != 0 {
                b.configuration(names[p], &[names[cs[0]], names[cs[1]]]);
            }
        }
        b.build()
    }

    fn label_set(mask: u16) -> LabelSet {
        let mut out = LabelSet::EMPTY;
        let mut bits = mask;
        while bits != 0 {
            out.insert(Label(bits.trailing_zeros() as u16));
            bits &= bits - 1;
        }
        out
    }

    #[test]
    fn sliced_flexible_states_match_masked_kernel_exhaustively() {
        let universe = two_label_sliced();
        let masks: Vec<u64> = (0..64).collect();
        let mut sliced = BitSliceScratch::<u64>::new();
        sliced.prepare(&universe);
        sliced.transpose(&universe, &masks);
        let mut scalar = ClassifyScratch::new();
        for allowed_bits in 0u16..4 {
            for l in 0..2 {
                sliced.allowed[l] = if allowed_bits & (1 << l) != 0 { !0 } else { 0 };
            }
            flexible_states_sliced(&universe, &mut sliced);
            for (j, &mask) in masks.iter().enumerate() {
                let expected =
                    flexible_states_masked(&problem_at(mask), label_set(allowed_bits), &mut scalar);
                for l in 0..2u16 {
                    assert_eq!(
                        sliced.flex[l as usize] & (1 << j) != 0,
                        expected.contains(Label(l)),
                        "mask {mask}, allowed {allowed_bits:#b}, label {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn sliced_prune_fixpoint_matches_masked_kernel_exhaustively() {
        let universe = two_label_sliced();
        let masks: Vec<u64> = (0..64).collect();
        let mut sliced = BitSliceScratch::<u64>::new();
        sliced.prepare(&universe);
        sliced.transpose(&universe, &masks);
        let mut stats = BlockStats::default();
        prune_fixpoint_sliced(&universe, &mut sliced, !0, &mut stats);
        let mut scalar = ClassifyScratch::new();
        for (j, &mask) in masks.iter().enumerate() {
            let (fixpoint, iterations) = prune_fixpoint_masked(&problem_at(mask), &mut scalar);
            for l in 0..2u16 {
                assert_eq!(
                    sliced.allowed[l as usize] & (1 << j) != 0,
                    fixpoint.contains(Label(l)),
                    "mask {mask}, label {l}"
                );
            }
            assert_eq!(
                sliced.iterations[j] as usize, iterations,
                "mask {mask}: iteration count"
            );
        }
        assert!(stats.fixpoint_rounds > 0);
    }

    #[test]
    fn sliced_builder_matches_masked_kernel_exhaustively() {
        let universe = two_label_sliced();
        let masks: Vec<u64> = (0..64).collect();
        let mut sliced = BitSliceScratch::<u64>::new();
        sliced.prepare(&universe);
        sliced.transpose(&universe, &masks);
        let mut scalar = ClassifyScratch::new();
        for subset in 1u16..4 {
            let targets: Vec<Option<usize>> = std::iter::once(None)
                .chain((0..2).filter(|&t| subset & (1 << t) != 0).map(Some))
                .collect();
            for target in targets {
                let won = exists_builder_sliced(&universe, &mut sliced, subset, target, !0);
                for (j, &mask) in masks.iter().enumerate() {
                    let expected = exists_builder_masked(
                        &problem_at(mask),
                        label_set(subset),
                        target.map(|t| Label(t as u16)),
                        &mut scalar,
                    );
                    assert_eq!(
                        won & (1 << j) != 0,
                        expected,
                        "mask {mask}, subset {subset:#b}, target {target:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn block_classification_matches_scalar_exhaustively() {
        let universe = two_label_sliced();
        let masks: Vec<u64> = (0..64).collect();
        let mut sliced = BitSliceScratch::<u64>::new();
        let mut verdicts = Vec::new();
        let stats = classify_block_sliced(&universe, &masks, &mut sliced, &mut verdicts);
        assert!(stats.fixpoint_rounds > 0);
        assert!(stats.live_lane_rounds >= stats.fixpoint_rounds);
        let mut scalar = ClassifyScratch::new();
        for (j, &mask) in masks.iter().enumerate() {
            let problem = problem_at(mask);
            let expected = classify_complexity_with(&problem, &mut scalar);
            let got = match verdicts[j] {
                LaneVerdict::Decided(c) => c,
                LaneVerdict::NeedsPolyExponent => {
                    let sustaining = crate::solvability::solvable_labels(&problem);
                    Complexity::Polynomial {
                        exponent: crate::scratch::poly_exponent_masked(
                            &problem,
                            sustaining,
                            &mut scalar,
                        ),
                    }
                }
            };
            assert_eq!(got, expected, "mask {mask}");
        }
    }

    #[test]
    fn partial_and_duplicate_blocks_agree_with_full_blocks() {
        let universe = two_label_sliced();
        let mut sliced = BitSliceScratch::<u64>::new();
        let mut verdicts = Vec::new();
        // A short block with duplicate lanes: verdicts are per-lane, so
        // duplicates must agree, and lane count < 64 must work.
        let masks = [5u64, 63, 5, 0, 42];
        classify_block_sliced(&universe, &masks, &mut sliced, &mut verdicts);
        assert_eq!(verdicts.len(), masks.len());
        assert_eq!(verdicts[0], verdicts[2]);
        let mut scalar = ClassifyScratch::new();
        for (j, &mask) in masks.iter().enumerate() {
            let expected = classify_complexity_with(&problem_at(mask), &mut scalar);
            assert_eq!(verdicts[j], LaneVerdict::Decided(expected), "mask {mask}");
        }
        // The empty block is a no-op.
        let stats = classify_block_sliced(&universe, &[], &mut sliced, &mut verdicts);
        assert_eq!(verdicts.len(), 0);
        assert_eq!(stats, BlockStats::default());
    }

    #[test]
    fn lane_word_bit_operations_agree_across_widths() {
        fn check<W: LaneWord>() {
            assert!(W::ZERO.is_zero());
            assert_eq!(W::ZERO.count_lanes(), 0);
            assert_eq!(W::lanes_mask(0), W::ZERO);
            let full = W::lanes_mask(W::LANES);
            assert_eq!(full.count_lanes() as usize, W::LANES);
            for &n in &[1usize, W::LANES / 2, W::LANES - 1, W::LANES] {
                let mask = W::lanes_mask(n);
                assert_eq!(mask.count_lanes() as usize, n, "lanes_mask({n})");
                let mut seen = Vec::new();
                mask.for_each_lane(|j| seen.push(j));
                assert_eq!(seen, (0..n).collect::<Vec<_>>(), "lanes_mask({n})");
                for j in 0..W::LANES {
                    assert_eq!(mask.test_bit(j), j < n, "lanes_mask({n}) bit {j}");
                }
            }
            let mut word = W::ZERO;
            for j in [0, W::LANES / 2, W::LANES - 1] {
                word.set_bit(j);
                assert!(word.test_bit(j));
            }
            assert_eq!(word.count_lanes(), 3.min(W::LANES as u32));
            assert_eq!(word.or(full), full);
            assert_eq!(word.and(full), word);
            assert_eq!(word.andnot(word), W::ZERO);
            assert_eq!(full.andnot(word).count_lanes() as usize, W::LANES - 3);
        }
        check::<u64>();
        check::<[u64; 2]>();
        check::<[u64; 4]>();
        check::<[u64; 8]>();
    }

    /// Every wide width classifies the exhaustive (δ=2, 2-label) universe
    /// lane-for-lane identically to the `u64` kernels and the scalar
    /// classifier — including partial final blocks.
    #[test]
    fn wide_blocks_match_u64_blocks_exhaustively() {
        fn verdicts_at<W: LaneWord>(universe: &SlicedUniverse, masks: &[u64]) -> Vec<LaneVerdict> {
            let mut scratch = BitSliceScratch::<W>::new();
            let mut verdicts = Vec::new();
            let mut all = Vec::new();
            for chunk in masks.chunks(W::LANES) {
                classify_block_sliced(universe, chunk, &mut scratch, &mut verdicts);
                all.extend_from_slice(&verdicts);
            }
            all
        }
        let universe = two_label_sliced();
        let masks: Vec<u64> = (0..64).collect();
        let baseline = verdicts_at::<u64>(&universe, &masks);
        assert_eq!(baseline, verdicts_at::<[u64; 2]>(&universe, &masks));
        assert_eq!(baseline, verdicts_at::<[u64; 4]>(&universe, &masks));
        assert_eq!(baseline, verdicts_at::<[u64; 8]>(&universe, &masks));
        // Partial block: 5 lanes in a 512-wide word.
        let partial = [5u64, 63, 5, 0, 42];
        assert_eq!(
            verdicts_at::<u64>(&universe, &partial),
            verdicts_at::<[u64; 8]>(&universe, &partial)
        );
        let mut scalar = ClassifyScratch::new();
        for (j, &mask) in masks.iter().enumerate() {
            let expected = classify_complexity_with(&problem_at(mask), &mut scalar);
            match baseline[j] {
                LaneVerdict::Decided(c) => assert_eq!(c, expected, "mask {mask}"),
                LaneVerdict::NeedsPolyExponent => {
                    assert!(
                        matches!(expected, Complexity::Polynomial { .. }),
                        "mask {mask}"
                    )
                }
            }
        }
    }

    #[test]
    fn lane_width_parse_round_trips_and_calibration_picks_a_width() {
        for width in LaneWidth::ALL {
            assert_eq!(LaneWidth::parse(width.name()), Some(width));
            assert_eq!(width.lanes() % 64, 0);
        }
        assert_eq!(LaneWidth::parse("96"), None);
        let universe = two_label_sliced();
        assert_eq!(calibrate_lane_width(&universe, &[]), LaneWidth::W64);
        let samples: Vec<u64> = (0..64).collect();
        // Any width is a valid answer; the probe must simply terminate.
        let _ = calibrate_lane_width(&universe, &samples);
    }
}
