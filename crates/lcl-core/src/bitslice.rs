//! Bit-sliced classification: 64 problems of one (δ, Σ) universe in lockstep.
//!
//! Every problem of a complete (δ, Σ) family is a subset of one shared
//! configuration universe — a `u64` mask over at most 63 possible
//! configurations (see `lcl_problems::canonical::CanonicalFamily`). The masked
//! kernels in [`crate::scratch`] classify one such mask at a time; this module
//! transposes a **block of up to 64 masks** so that the same fixed-point
//! iterations run on all of them simultaneously, one bit lane per problem:
//!
//! * per universe configuration `i`, a `u64` whose bit `j` says "problem `j`
//!   contains configuration `i`" (the transposed successor table
//!   [`BitSliceScratch`] builds from a block),
//! * per label `l`, a `u64` whose bit `j` says "label `l` is still allowed in
//!   problem `j`" — the same trick [`crate::label_set::LabelSet`] plays per
//!   label, lifted one axis.
//!
//! Every stage of the decision procedure is then a short loop over word-wide
//! AND/OR operations shared by all 64 lanes:
//!
//! * [`prune_fixpoint_sliced`] — Algorithm 2's pruning loop (trim +
//!   flexibility), lane-parallel, with a per-lane iteration counter;
//! * [`flexible_states_sliced`] — Algorithm 1 via lane-parallel boolean matrix
//!   powers of the masked path automaton: a state is flexible iff it carries
//!   closed walks of two consecutive lengths, which by Wielandt's primitivity
//!   bound happens within `(k−1)² + 1` powers for a k-label universe (each
//!   power is a k×k boolean matrix product whose entries are 64-lane words);
//! * [`exists_builder_sliced`] — the decision form of Algorithm 3: one entry
//!   fixed point per candidate subset, entries bit-sliced as "lane has derived
//!   root-set T" words, so a whole block shares each δ-tuple enumeration;
//! * [`classify_block_sliced`] — the full verdict dispatch mirroring
//!   [`crate::classifier::classify_complexity_with`], including the Algorithm
//!   4/5 subset searches (run as lane-peeled existence sweeps over the
//!   subsets of Σ).
//!
//! # The lanes-per-problem invariant
//!
//! All lanes of a block must be problems over the **same** universe with the
//! **full** declared label set Σ = `{0, …, num_labels−1}` (what
//! `problem_from_universe` produces for every family member: labels with no
//! configurations are declared but unused). Verdicts depend only on the
//! configuration mask, so a lane is fully described by its `u64`.
//!
//! # Lane peeling and scalar fallback
//!
//! Lanes whose verdict is decided retire their bit from the live mask after
//! every stage (unsolvable after the trim, polynomial after the pruning
//! fixpoint, constant/log*/log after the subset searches), so later — more
//! expensive — stages only run while undecided lanes remain. One stage
//! genuinely diverges per lane and falls back to the scalar kernels: the exact
//! Θ(n^{1/k}) exponent descent (Lemmas 5.28–5.29) when the per-lane pruning
//! iteration count exceeds 1 ([`LaneVerdict::NeedsPolyExponent`]; the caller
//! resolves such lanes with [`crate::scratch::poly_exponent_masked`], which
//! requires materializing the one problem). Everything else — including the
//! log*/constant searches, whose per-lane winning subsets differ but whose
//! *verdicts* are pure existence questions — stays bit-sliced.

use crate::classifier::Complexity;

/// Number of problems classified per block: the lane width of a `u64`.
pub const LANES: usize = 64;

/// Maximum number of labels a sliced universe supports. The 63-configuration
/// mask limit keeps realistic families far below this (δ = 2 caps at 4 labels,
/// δ = 1 at 7), matching `MAX_CANONICAL_ENUM_LABELS` on the enumeration side.
pub const MAX_SLICE_LABELS: usize = 8;

/// The dense shared configuration table of a (δ, Σ) universe, in the exact
/// order the family's configuration masks index (bit `i` of a mask ↔ entry `i`
/// here). Built once per family and shared by every block.
#[derive(Debug, Clone)]
pub struct SlicedUniverse {
    delta: usize,
    num_labels: usize,
    /// Parent label index per configuration.
    parents: Vec<u8>,
    /// Child label indices, flattened: configuration `i` owns
    /// `children[i*delta .. (i+1)*delta]`.
    children: Vec<u8>,
    /// Per configuration, the set of labels it mentions (bit per label).
    label_bits: Vec<u16>,
    /// Per configuration, whether the parent repeats among the children (the
    /// "special configuration" predicate of Algorithm 5).
    special: Vec<bool>,
    /// Configuration indices grouped by parent label.
    by_parent: Vec<Vec<u32>>,
    /// The non-empty subsets of Σ in ascending (size, bitmask) order — the
    /// enumeration order of Algorithms 4–5 (`2^k − 1` entries).
    subsets_by_size: Vec<u16>,
}

impl SlicedUniverse {
    /// An empty universe over `num_labels` labels; populate it with
    /// [`Self::push_config`] in mask-bit order.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is zero or `num_labels` is outside
    /// `1..=MAX_SLICE_LABELS`.
    pub fn new(delta: usize, num_labels: usize) -> Self {
        assert!(delta >= 1, "delta must be positive");
        assert!(
            (1..=MAX_SLICE_LABELS).contains(&num_labels),
            "sliced universes support 1..={MAX_SLICE_LABELS} labels, got {num_labels}"
        );
        let mut subsets_by_size: Vec<u16> = (1..1u16 << num_labels).collect();
        subsets_by_size.sort_unstable_by_key(|&s| (s.count_ones(), s));
        SlicedUniverse {
            delta,
            num_labels,
            parents: Vec::new(),
            children: Vec::new(),
            label_bits: Vec::new(),
            special: Vec::new(),
            by_parent: vec![Vec::new(); num_labels],
            subsets_by_size,
        }
    }

    /// Appends one configuration and returns its mask-bit index.
    ///
    /// # Panics
    ///
    /// Panics when the universe is full (63 configurations, the mask limit),
    /// when `children.len() != delta`, or on an out-of-range label index.
    pub fn push_config(&mut self, parent: usize, children: &[usize]) -> usize {
        assert!(
            self.len() < 63,
            "a sliced universe holds at most 63 configurations"
        );
        assert_eq!(
            children.len(),
            self.delta,
            "configuration arity must equal delta"
        );
        assert!(parent < self.num_labels);
        let index = self.len();
        let mut bits = 1u16 << parent;
        let mut special = false;
        for &c in children {
            assert!(c < self.num_labels);
            bits |= 1 << c;
            special |= c == parent;
            self.children.push(c as u8);
        }
        self.parents.push(parent as u8);
        self.label_bits.push(bits);
        self.special.push(special);
        self.by_parent[parent].push(index as u32);
        index
    }

    /// Number of configurations (= mask bits).
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` when no configuration has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The universe's δ.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The universe's |Σ|.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// The children of configuration `i`.
    fn children_of(&self, i: usize) -> &[u8] {
        &self.children[i * self.delta..(i + 1) * self.delta]
    }
}

/// Per-lane outcome of [`classify_block_sliced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneVerdict {
    /// The verdict was fully decided in lockstep.
    Decided(Complexity),
    /// The lane is polynomial with ≥ 2 pruning iterations: the exact exponent
    /// needs the scalar trim/flexible-SCC descent
    /// ([`crate::scratch::poly_exponent_masked`]) on the materialized problem.
    NeedsPolyExponent,
}

/// Fixed-point statistics of one block, for the sweep's lane-utilization
/// report: `live_lane_rounds / fixpoint_rounds` is the average number of live
/// (not yet converged or retired) lanes per fixed-point round, over both the
/// solvability trim and the pruning loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Total trim + pruning fixed-point rounds executed for the block.
    pub fixpoint_rounds: u64,
    /// Sum over those rounds of the number of live lanes entering the round.
    pub live_lane_rounds: u64,
}

/// Reusable per-worker buffers for the bit-sliced kernels: the transposed
/// configuration table of the current block plus every lane-word the stages
/// iterate on. All buffers grow to the universe's size on first use and are
/// reused; a warmed scratch serves every further block without touching the
/// allocator (pinned by `crates/lcl-core/tests/zero_alloc.rs`).
#[derive(Debug)]
pub struct BitSliceScratch {
    /// Transposed block: per configuration, the lanes containing it.
    config_lanes: Vec<u64>,
    /// `config_lanes` restricted to the current allowed-label sets.
    config_active: Vec<u64>,
    /// Per label, the lanes in which it is currently allowed.
    allowed: [u64; MAX_SLICE_LABELS],
    /// Per label, the lanes in which it survived the solvability trim.
    sustaining: [u64; MAX_SLICE_LABELS],
    /// Per label, the lanes in which it is flexible (Algorithm 1 output).
    flex: [u64; MAX_SLICE_LABELS],
    /// Lane-parallel adjacency of the masked path automaton.
    succ: [[u64; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
    /// Current boolean matrix power of `succ`.
    pow: [[u64; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
    /// Next power (double buffer).
    pow_next: [[u64; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
    /// Diagonal of the previous power.
    diag_prev: [u64; MAX_SLICE_LABELS],
    /// Per-lane pruning iteration count (Algorithm 2's `k`).
    iterations: [u32; LANES],
    /// Algorithm 3 entries without the special-leaf flag: per root-label set
    /// `T` (indexed by label bitmask), the lanes that derived `(T, false)`.
    present: Vec<u64>,
    /// Entries with the special-leaf flag set: lanes that derived `(T, true)`.
    present_flagged: Vec<u64>,
    /// Per label, the lanes producing it from the current δ-tuple.
    produced: [u64; MAX_SLICE_LABELS],
    /// Configurations lying inside the current subset.
    subset_configs: Vec<u32>,
    /// Non-empty subsets of the current subset (odometer symbols).
    sub_list: Vec<u16>,
    /// Odometer over `sub_list` indices, one digit per child slot.
    tuple: [u32; MAX_SLICE_LABELS],
}

impl Default for BitSliceScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl BitSliceScratch {
    /// Creates an empty scratch. Buffers grow on first use and are reused.
    pub fn new() -> Self {
        BitSliceScratch {
            config_lanes: Vec::new(),
            config_active: Vec::new(),
            allowed: [0; MAX_SLICE_LABELS],
            sustaining: [0; MAX_SLICE_LABELS],
            flex: [0; MAX_SLICE_LABELS],
            succ: [[0; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
            pow: [[0; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
            pow_next: [[0; MAX_SLICE_LABELS]; MAX_SLICE_LABELS],
            diag_prev: [0; MAX_SLICE_LABELS],
            iterations: [0; LANES],
            present: Vec::new(),
            present_flagged: Vec::new(),
            produced: [0; MAX_SLICE_LABELS],
            subset_configs: Vec::new(),
            sub_list: Vec::new(),
            tuple: [0; MAX_SLICE_LABELS],
        }
    }

    /// Sizes every universe-dependent buffer (allocation-free once warm).
    fn prepare(&mut self, universe: &SlicedUniverse) {
        self.config_lanes.clear();
        self.config_lanes.resize(universe.len(), 0);
        self.config_active.clear();
        self.config_active.resize(universe.len(), 0);
        let entry_space = 1usize << universe.num_labels;
        if self.present.len() < entry_space {
            self.present.resize(entry_space, 0);
            self.present_flagged.resize(entry_space, 0);
        }
    }

    /// Transposes `masks` into `config_lanes`: bit `j` of `config_lanes[i]`
    /// says "lane `j`'s mask contains configuration `i`".
    fn transpose(&mut self, universe: &SlicedUniverse, masks: &[u64]) {
        for lanes in &mut self.config_lanes {
            *lanes = 0;
        }
        for (j, &mask) in masks.iter().enumerate() {
            debug_assert_eq!(
                mask >> universe.len(),
                0,
                "mask uses bits outside the universe"
            );
            let mut bits = mask;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                self.config_lanes[i] |= 1u64 << j;
                bits &= bits - 1;
            }
        }
    }

    /// `config_active[i] = config_lanes[i]` restricted to lanes in which every
    /// label of configuration `i` is in `allowed`.
    fn refresh_active(&mut self, universe: &SlicedUniverse) {
        for (i, active) in self.config_active.iter_mut().enumerate() {
            let mut lanes = self.config_lanes[i];
            let mut labels = universe.label_bits[i];
            while labels != 0 {
                let l = labels.trailing_zeros() as usize;
                lanes &= self.allowed[l];
                labels &= labels - 1;
            }
            *active = lanes;
        }
    }
}

/// Algorithm 1, bit-sliced: computes the flexible labels of every lane's
/// problem restricted to the lane's current `allowed` sets (read from
/// `scratch.allowed`, written to `scratch.flex`).
///
/// A label `a` is flexible iff the masked path automaton has closed walks of
/// two consecutive lengths through `a` (closed walks stay inside `a`'s SCC, so
/// consecutive lengths force period 1, and any closed walk witnesses a cycle;
/// conversely a primitive SCC of m ≤ k states has all-positive diagonal from
/// Wielandt's exponent `(m−1)² + 1` on). Checking walk lengths `1 ..= (k−1)²+1`
/// therefore decides every lane exactly, as k×k boolean matrix powers whose
/// entries are 64-lane words.
pub fn flexible_states_sliced(universe: &SlicedUniverse, scratch: &mut BitSliceScratch) {
    let k = universe.num_labels;
    let delta = universe.delta;
    scratch.refresh_active(universe);
    for row in scratch.succ.iter_mut().take(k) {
        row[..k].fill(0);
    }
    for (i, &active) in scratch.config_active.iter().enumerate() {
        if active == 0 {
            continue;
        }
        let from = universe.parents[i] as usize;
        for &child in &universe.children[i * delta..(i + 1) * delta] {
            scratch.succ[from][child as usize] |= active;
        }
    }
    for a in 0..k {
        scratch.pow[a][..k].copy_from_slice(&scratch.succ[a][..k]);
        scratch.diag_prev[a] = scratch.succ[a][a];
        scratch.flex[a] = 0;
    }
    // Wielandt bound for the largest possible SCC (all k labels).
    let max_walk = (k - 1) * (k - 1) + 1;
    for _ in 1..=max_walk {
        for a in 0..k {
            for b in 0..k {
                let mut lanes = 0u64;
                for m in 0..k {
                    lanes |= scratch.pow[a][m] & scratch.succ[m][b];
                }
                scratch.pow_next[a][b] = lanes;
            }
        }
        for a in 0..k {
            let diag = scratch.pow_next[a][a];
            scratch.flex[a] |= scratch.diag_prev[a] & diag;
            scratch.diag_prev[a] = diag;
        }
        std::mem::swap(&mut scratch.pow, &mut scratch.pow_next);
    }
    for a in 0..k {
        scratch.flex[a] &= scratch.allowed[a];
    }
}

/// The solvability trim (greatest self-sustaining label set), bit-sliced:
/// starting from the full Σ in every live lane, repeatedly drops labels with
/// no continuation inside the surviving set. Writes the per-label fixpoint
/// lanes to `scratch.sustaining`; a lane is solvable iff some label survives.
fn trim_sliced(
    universe: &SlicedUniverse,
    scratch: &mut BitSliceScratch,
    live: u64,
    stats: &mut BlockStats,
) {
    let k = universe.num_labels;
    for l in 0..k {
        scratch.allowed[l] = live;
    }
    let mut working = live;
    while working != 0 {
        stats.fixpoint_rounds += 1;
        stats.live_lane_rounds += u64::from(working.count_ones());
        scratch.refresh_active(universe);
        let mut changed = 0u64;
        for l in 0..k {
            let mut continued = 0u64;
            for &i in &universe.by_parent[l] {
                continued |= scratch.config_active[i as usize];
            }
            let next = scratch.allowed[l] & continued;
            changed |= scratch.allowed[l] & !next;
            scratch.allowed[l] = next;
        }
        // A lane with no change is at its fixpoint for good (the trim step is
        // a deterministic monotone function of the lane's allowed sets).
        working &= changed;
    }
    scratch.sustaining[..k].copy_from_slice(&scratch.allowed[..k]);
}

/// Algorithm 2's pruning loop, bit-sliced: iterates [`flexible_states_sliced`]
/// to a fixed point in every live lane, counting each lane's non-empty pruning
/// iterations in `scratch.iterations` (the fixpoint label lanes stay in
/// `scratch.allowed`). Mirrors [`crate::scratch::prune_fixpoint_masked`]
/// per lane.
pub fn prune_fixpoint_sliced(
    universe: &SlicedUniverse,
    scratch: &mut BitSliceScratch,
    live: u64,
    stats: &mut BlockStats,
) {
    let k = universe.num_labels;
    for l in 0..k {
        scratch.allowed[l] = live;
    }
    scratch.iterations.fill(0);
    let mut working = live;
    while working != 0 {
        stats.fixpoint_rounds += 1;
        stats.live_lane_rounds += u64::from(working.count_ones());
        flexible_states_sliced(universe, scratch);
        let mut removed = 0u64;
        for l in 0..k {
            removed |= scratch.allowed[l] & !scratch.flex[l];
            scratch.allowed[l] = scratch.flex[l];
        }
        removed &= working;
        let mut lanes = removed;
        while lanes != 0 {
            let j = lanes.trailing_zeros() as usize;
            scratch.iterations[j] += 1;
            lanes &= lanes - 1;
        }
        working = removed;
    }
}

/// `true` iff `children` can be matched one-to-one onto the slot sets (child
/// `c` fits slot `s` iff bit `c` of `slots[s]` is set) — the lane-independent
/// twin of [`crate::configuration::children_match_slots`] on label indices.
fn children_fit_slots(children: &[u8], slots: &[u16]) -> bool {
    match children.len() {
        1 => slots[0] & (1 << children[0]) != 0,
        2 => {
            let (c0, c1) = (1u16 << children[0], 1u16 << children[1]);
            (slots[0] & c0 != 0 && slots[1] & c1 != 0) || (slots[0] & c1 != 0 && slots[1] & c0 != 0)
        }
        _ => fit_backtrack(children, slots, 0, 0),
    }
}

fn fit_backtrack(children: &[u8], slots: &[u16], at: usize, used: u32) -> bool {
    if at == children.len() {
        return true;
    }
    let want = 1u16 << children[at];
    for (s, &slot) in slots.iter().enumerate() {
        if used & (1 << s) == 0
            && slot & want != 0
            && fit_backtrack(children, slots, at + 1, used | (1 << s))
        {
            return true;
        }
    }
    false
}

/// The decision form of Algorithm 3, bit-sliced: for each lane in `active`,
/// does the lane's problem restricted to `subset` (a label bitmask) admit a
/// certificate builder — with the special label `target` producible on a leaf
/// when one is given? Returns the success lanes. Mirrors
/// [`crate::scratch::exists_builder_masked`] per lane: same entry space
/// (root-label set × special-leaf flag), same fixed point, evaluated for the
/// whole block per δ-tuple.
///
/// `target`, when given, must be a member of `subset`.
pub fn exists_builder_sliced(
    universe: &SlicedUniverse,
    scratch: &mut BitSliceScratch,
    subset: u16,
    target: Option<usize>,
    active: u64,
) -> u64 {
    debug_assert_ne!(subset, 0);
    debug_assert!(target.is_none_or(|t| subset & (1 << t) != 0));
    let delta = universe.delta;

    // The restriction must have at least one configuration (Algorithm 3 on an
    // empty configuration set finds nothing), and only configurations inside
    // the subset participate at all.
    scratch.subset_configs.clear();
    let mut has_config = 0u64;
    for (i, &bits) in universe.label_bits.iter().enumerate() {
        if bits & !subset == 0 {
            scratch.subset_configs.push(i as u32);
            has_config |= scratch.config_lanes[i];
        }
    }
    let active = active & has_config;
    if active == 0 {
        return 0;
    }

    // Seed entries: one singleton per subset label, flagged iff it is the
    // target. A singleton subset is therefore decided immediately (the seed
    // entry *is* the wanted entry).
    if subset.count_ones() == 1 {
        return active;
    }
    let mut sub = subset;
    scratch.sub_list.clear();
    while sub != 0 {
        scratch.sub_list.push(sub);
        let lanes_slot = sub as usize;
        scratch.present[lanes_slot] = 0;
        scratch.present_flagged[lanes_slot] = 0;
        sub = (sub - 1) & subset;
    }
    let mut labels = subset;
    while labels != 0 {
        let l = labels.trailing_zeros() as usize;
        if target == Some(l) {
            scratch.present_flagged[1 << l] = active;
        } else {
            scratch.present[1 << l] = active;
        }
        labels &= labels - 1;
    }

    let symbols = scratch.sub_list.len();
    let mut success = 0u64;
    let mut remaining = active;
    loop {
        let mut added = false;
        scratch.tuple[..delta].fill(0);
        'tuples: loop {
            // Availability per lane: all slots present (any flag), all slots
            // present unflagged, and some slot present flagged.
            let mut all_any = remaining;
            let mut all_unflagged = remaining;
            let mut some_flagged = 0u64;
            let mut slots = [0u16; MAX_SLICE_LABELS];
            for (slot, &digit) in slots.iter_mut().zip(&scratch.tuple[..delta]) {
                let t = scratch.sub_list[digit as usize];
                *slot = t;
                let plain = scratch.present[t as usize];
                let flagged = scratch.present_flagged[t as usize];
                all_any &= plain | flagged;
                all_unflagged &= plain;
                some_flagged |= flagged;
            }
            let all_flagged = all_any & some_flagged;
            if all_any != 0 {
                // Lanes producing each parent from this tuple.
                let k = universe.num_labels;
                scratch.produced[..k].fill(0);
                for &ci in &scratch.subset_configs {
                    let i = ci as usize;
                    if children_fit_slots(universe.children_of(i), &slots[..delta]) {
                        scratch.produced[universe.parents[i] as usize] |= scratch.config_lanes[i];
                    }
                }
                // Group lanes by their exact produced set and insert entries.
                for si in 0..symbols {
                    let t = scratch.sub_list[si];
                    let mut exact_unflagged = all_unflagged;
                    let mut exact_flagged = all_flagged;
                    let mut bits = subset;
                    while bits != 0 {
                        let l = bits.trailing_zeros() as usize;
                        let produced = scratch.produced[l];
                        if t & (1 << l) != 0 {
                            exact_unflagged &= produced;
                            exact_flagged &= produced;
                        } else {
                            exact_unflagged &= !produced;
                            exact_flagged &= !produced;
                        }
                        bits &= bits - 1;
                    }
                    let new_unflagged = exact_unflagged & !scratch.present[t as usize];
                    if new_unflagged != 0 {
                        scratch.present[t as usize] |= new_unflagged;
                        added = true;
                    }
                    let new_flagged = exact_flagged & !scratch.present_flagged[t as usize];
                    if new_flagged != 0 {
                        scratch.present_flagged[t as usize] |= new_flagged;
                        added = true;
                    }
                }
            }
            // Advance the δ-digit odometer over the subset symbols.
            let mut pos = 0;
            loop {
                if pos == delta {
                    break 'tuples;
                }
                scratch.tuple[pos] += 1;
                if (scratch.tuple[pos] as usize) < symbols {
                    break;
                }
                scratch.tuple[pos] = 0;
                pos += 1;
            }
        }
        // Wanted entry: the full subset, flagged iff a target was required.
        let wanted = if target.is_some() {
            scratch.present_flagged[subset as usize]
        } else {
            scratch.present[subset as usize]
        };
        let won = wanted & remaining;
        success |= won;
        remaining &= !won;
        if !added || remaining == 0 {
            return success;
        }
    }
}

/// Lanes (within `eligible`) in which `subset` is self-sustaining: every
/// subset label heads some configuration of the lane lying fully inside the
/// subset.
fn self_sustaining_lanes(
    universe: &SlicedUniverse,
    scratch: &BitSliceScratch,
    subset: u16,
    eligible: u64,
) -> u64 {
    let mut lanes = eligible;
    let mut labels = subset;
    while labels != 0 && lanes != 0 {
        let l = labels.trailing_zeros() as usize;
        let mut continued = 0u64;
        for &i in &universe.by_parent[l] {
            if universe.label_bits[i as usize] & !subset == 0 {
                continued |= scratch.config_lanes[i as usize];
            }
        }
        lanes &= continued;
        labels &= labels - 1;
    }
    lanes
}

/// Classifies a block of up to 64 configuration masks in lockstep, mirroring
/// [`crate::classifier::classify_complexity_with`] on every lane (same
/// decision order: solvability, pruning fixpoint, Algorithm 4, Algorithm 5).
/// `verdicts` is resized to `masks.len()`; every lane is either fully decided
/// or flagged [`LaneVerdict::NeedsPolyExponent`] for the scalar exponent
/// descent (see the module docs on fallback). Returns the block's fixed-point
/// statistics.
///
/// # Panics
///
/// Panics if `masks` has more than [`LANES`] entries.
pub fn classify_block_sliced(
    universe: &SlicedUniverse,
    masks: &[u64],
    scratch: &mut BitSliceScratch,
    verdicts: &mut Vec<LaneVerdict>,
) -> BlockStats {
    assert!(masks.len() <= LANES, "a block holds at most {LANES} masks");
    let mut stats = BlockStats::default();
    verdicts.clear();
    verdicts.resize(masks.len(), LaneVerdict::Decided(Complexity::Unsolvable));
    if masks.is_empty() {
        return stats;
    }
    let all = if masks.len() == LANES {
        !0u64
    } else {
        (1u64 << masks.len()) - 1
    };
    let k = universe.num_labels;
    scratch.prepare(universe);
    scratch.transpose(universe, masks);

    // Stage 1: solvability trim. Lanes with no sustaining label are
    // unsolvable and retire.
    trim_sliced(universe, scratch, all, &mut stats);
    let mut sustain_any = 0u64;
    for l in 0..k {
        sustain_any |= scratch.sustaining[l];
    }
    let mut live = all & sustain_any;

    // Stage 2: pruning fixpoint. Lanes whose fixpoint is empty are polynomial
    // and retire (exponent 1 when pruning took at most one iteration, scalar
    // descent otherwise).
    prune_fixpoint_sliced(universe, scratch, live, &mut stats);
    let mut fix_any = 0u64;
    for l in 0..k {
        fix_any |= scratch.allowed[l];
    }
    let poly = live & !fix_any;
    let mut lanes = poly;
    while lanes != 0 {
        let j = lanes.trailing_zeros() as usize;
        verdicts[j] = if scratch.iterations[j] <= 1 {
            LaneVerdict::Decided(Complexity::Polynomial { exponent: 1 })
        } else {
            LaneVerdict::NeedsPolyExponent
        };
        lanes &= lanes - 1;
    }
    live &= !poly;

    // Stage 3: Algorithm 4 as a lane-peeled existence sweep — a lane is
    // O(log* n)-solvable iff *some* subset of Σ is self-sustaining in it and
    // admits a builder. Self-sustaining subsets are automatically subsets of
    // the lane's greatest self-sustaining set, so no per-lane subset spaces
    // are needed; decided lanes retire their bit.
    let mut log_star_found = 0u64;
    let mut undecided = live;
    for si in 0..universe.subsets_by_size.len() {
        if undecided == 0 {
            break;
        }
        let subset = universe.subsets_by_size[si];
        let eligible = self_sustaining_lanes(universe, scratch, subset, undecided);
        if eligible == 0 {
            continue;
        }
        let won = exists_builder_sliced(universe, scratch, subset, None, eligible);
        log_star_found |= won;
        undecided &= !won;
    }
    let log_lanes = live & !log_star_found;
    lanes = log_lanes;
    while lanes != 0 {
        let j = lanes.trailing_zeros() as usize;
        verdicts[j] = LaneVerdict::Decided(Complexity::Log);
        lanes &= lanes - 1;
    }

    // Stage 4: Algorithm 5, same sweep shape, only over lanes already known
    // O(log* n) that contain a special configuration at all; per subset, one
    // builder run per distinct special parent.
    let mut special_any = 0u64;
    for (i, &is_special) in universe.special.iter().enumerate() {
        if is_special {
            special_any |= scratch.config_lanes[i];
        }
    }
    let mut constant_found = 0u64;
    let mut undecided = log_star_found & special_any;
    for si in 0..universe.subsets_by_size.len() {
        if undecided == 0 {
            break;
        }
        let subset = universe.subsets_by_size[si];
        let eligible = self_sustaining_lanes(universe, scratch, subset, undecided);
        if eligible == 0 {
            continue;
        }
        // Lanes holding a special configuration with parent `p` inside the
        // subset, per parent.
        let mut parents = subset;
        while parents != 0 {
            let p = parents.trailing_zeros() as usize;
            parents &= parents - 1;
            let mut special_p = 0u64;
            for &i in &universe.by_parent[p] {
                let i = i as usize;
                if universe.special[i] && universe.label_bits[i] & !subset == 0 {
                    special_p |= scratch.config_lanes[i];
                }
            }
            let candidates = eligible & special_p & undecided;
            if candidates == 0 {
                continue;
            }
            let won = exists_builder_sliced(universe, scratch, subset, Some(p), candidates);
            constant_found |= won;
            undecided &= !won;
        }
    }
    lanes = log_star_found;
    while lanes != 0 {
        let j = lanes.trailing_zeros() as usize;
        verdicts[j] = if constant_found & (1u64 << j) != 0 {
            LaneVerdict::Decided(Complexity::Constant)
        } else {
            LaneVerdict::Decided(Complexity::LogStar)
        };
        lanes &= lanes - 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LclProblem, ProblemBuilder};
    use crate::scratch::{
        exists_builder_masked, flexible_states_masked, prune_fixpoint_masked, ClassifyScratch,
    };
    use crate::{classify_complexity_with, Complexity, Label, LabelSet};

    /// The (δ=2, 2-label) configuration universe in family mask order
    /// (child multiset outer, parent inner — the order of
    /// `lcl_problems::random::configuration_universe`).
    fn two_label_universe_list() -> Vec<(usize, [usize; 2])> {
        let mut list = Vec::new();
        for children in [[0, 0], [0, 1], [1, 1]] {
            for parent in 0..2 {
                list.push((parent, children));
            }
        }
        list
    }

    fn two_label_sliced() -> SlicedUniverse {
        let mut u = SlicedUniverse::new(2, 2);
        for (parent, children) in two_label_universe_list() {
            u.push_config(parent, &children);
        }
        u
    }

    /// The problem with the given configuration mask, labels a=0, b=1 both
    /// always declared (the lanes-per-problem invariant).
    fn problem_at(mask: u64) -> LclProblem {
        let names = ["a", "b"];
        let mut b = ProblemBuilder::new(2);
        b.label("a");
        b.label("b");
        for (i, (p, cs)) in two_label_universe_list().into_iter().enumerate() {
            if mask & (1 << i) != 0 {
                b.configuration(names[p], &[names[cs[0]], names[cs[1]]]);
            }
        }
        b.build()
    }

    fn label_set(mask: u16) -> LabelSet {
        let mut out = LabelSet::EMPTY;
        let mut bits = mask;
        while bits != 0 {
            out.insert(Label(bits.trailing_zeros() as u16));
            bits &= bits - 1;
        }
        out
    }

    #[test]
    fn sliced_flexible_states_match_masked_kernel_exhaustively() {
        let universe = two_label_sliced();
        let masks: Vec<u64> = (0..64).collect();
        let mut sliced = BitSliceScratch::new();
        sliced.prepare(&universe);
        sliced.transpose(&universe, &masks);
        let mut scalar = ClassifyScratch::new();
        for allowed_bits in 0u16..4 {
            for l in 0..2 {
                sliced.allowed[l] = if allowed_bits & (1 << l) != 0 { !0 } else { 0 };
            }
            flexible_states_sliced(&universe, &mut sliced);
            for (j, &mask) in masks.iter().enumerate() {
                let expected =
                    flexible_states_masked(&problem_at(mask), label_set(allowed_bits), &mut scalar);
                for l in 0..2u16 {
                    assert_eq!(
                        sliced.flex[l as usize] & (1 << j) != 0,
                        expected.contains(Label(l)),
                        "mask {mask}, allowed {allowed_bits:#b}, label {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn sliced_prune_fixpoint_matches_masked_kernel_exhaustively() {
        let universe = two_label_sliced();
        let masks: Vec<u64> = (0..64).collect();
        let mut sliced = BitSliceScratch::new();
        sliced.prepare(&universe);
        sliced.transpose(&universe, &masks);
        let mut stats = BlockStats::default();
        prune_fixpoint_sliced(&universe, &mut sliced, !0, &mut stats);
        let mut scalar = ClassifyScratch::new();
        for (j, &mask) in masks.iter().enumerate() {
            let (fixpoint, iterations) = prune_fixpoint_masked(&problem_at(mask), &mut scalar);
            for l in 0..2u16 {
                assert_eq!(
                    sliced.allowed[l as usize] & (1 << j) != 0,
                    fixpoint.contains(Label(l)),
                    "mask {mask}, label {l}"
                );
            }
            assert_eq!(
                sliced.iterations[j] as usize, iterations,
                "mask {mask}: iteration count"
            );
        }
        assert!(stats.fixpoint_rounds > 0);
    }

    #[test]
    fn sliced_builder_matches_masked_kernel_exhaustively() {
        let universe = two_label_sliced();
        let masks: Vec<u64> = (0..64).collect();
        let mut sliced = BitSliceScratch::new();
        sliced.prepare(&universe);
        sliced.transpose(&universe, &masks);
        let mut scalar = ClassifyScratch::new();
        for subset in 1u16..4 {
            let targets: Vec<Option<usize>> = std::iter::once(None)
                .chain((0..2).filter(|&t| subset & (1 << t) != 0).map(Some))
                .collect();
            for target in targets {
                let won = exists_builder_sliced(&universe, &mut sliced, subset, target, !0);
                for (j, &mask) in masks.iter().enumerate() {
                    let expected = exists_builder_masked(
                        &problem_at(mask),
                        label_set(subset),
                        target.map(|t| Label(t as u16)),
                        &mut scalar,
                    );
                    assert_eq!(
                        won & (1 << j) != 0,
                        expected,
                        "mask {mask}, subset {subset:#b}, target {target:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn block_classification_matches_scalar_exhaustively() {
        let universe = two_label_sliced();
        let masks: Vec<u64> = (0..64).collect();
        let mut sliced = BitSliceScratch::new();
        let mut verdicts = Vec::new();
        let stats = classify_block_sliced(&universe, &masks, &mut sliced, &mut verdicts);
        assert!(stats.fixpoint_rounds > 0);
        assert!(stats.live_lane_rounds >= stats.fixpoint_rounds);
        let mut scalar = ClassifyScratch::new();
        for (j, &mask) in masks.iter().enumerate() {
            let problem = problem_at(mask);
            let expected = classify_complexity_with(&problem, &mut scalar);
            let got = match verdicts[j] {
                LaneVerdict::Decided(c) => c,
                LaneVerdict::NeedsPolyExponent => {
                    let sustaining = crate::solvability::solvable_labels(&problem);
                    Complexity::Polynomial {
                        exponent: crate::scratch::poly_exponent_masked(
                            &problem,
                            sustaining,
                            &mut scalar,
                        ),
                    }
                }
            };
            assert_eq!(got, expected, "mask {mask}");
        }
    }

    #[test]
    fn partial_and_duplicate_blocks_agree_with_full_blocks() {
        let universe = two_label_sliced();
        let mut sliced = BitSliceScratch::new();
        let mut verdicts = Vec::new();
        // A short block with duplicate lanes: verdicts are per-lane, so
        // duplicates must agree, and lane count < 64 must work.
        let masks = [5u64, 63, 5, 0, 42];
        classify_block_sliced(&universe, &masks, &mut sliced, &mut verdicts);
        assert_eq!(verdicts.len(), masks.len());
        assert_eq!(verdicts[0], verdicts[2]);
        let mut scalar = ClassifyScratch::new();
        for (j, &mask) in masks.iter().enumerate() {
            let expected = classify_complexity_with(&problem_at(mask), &mut scalar);
            assert_eq!(verdicts[j], LaneVerdict::Decided(expected), "mask {mask}");
        }
        // The empty block is a no-op.
        let stats = classify_block_sliced(&universe, &[], &mut sliced, &mut verdicts);
        assert_eq!(verdicts.len(), 0);
        assert_eq!(stats, BlockStats::default());
    }
}
