//! Labelings of rooted trees and solution verification (Definition 4.2).
//!
//! A [`Labeling`] assigns a label (or nothing yet) to every node of a tree. The
//! independent checker [`Labeling::verify`] implements Definition 4.2 exactly: every
//! node must carry an active label, and every node with exactly δ children must form
//! an allowed configuration with them (nodes with a different number of children —
//! leaves in full δ-ary trees — are unconstrained). Solvers never share code with
//! the checker, so tests can use it as an oracle.

use lcl_trees::{NodeId, RootedTree};

use crate::configuration::Configuration;
use crate::label::Label;
use crate::problem::LclProblem;

/// A (possibly partial) assignment of labels to the nodes of a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeling {
    labels: Vec<Option<Label>>,
}

impl Labeling {
    /// Creates an empty labeling for a tree with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Labeling {
            labels: vec![None; num_nodes],
        }
    }

    /// Creates an empty labeling sized for `tree`.
    pub fn for_tree(tree: &RootedTree) -> Self {
        Self::new(tree.len())
    }

    /// Number of nodes the labeling covers.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the labeling covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of `v`, if assigned.
    #[inline]
    pub fn get(&self, v: NodeId) -> Option<Label> {
        self.labels[v.index()]
    }

    /// Assigns a label to `v` (overwriting any previous assignment).
    #[inline]
    pub fn set(&mut self, v: NodeId, label: Label) {
        self.labels[v.index()] = Some(label);
    }

    /// Removes the assignment of `v`.
    pub fn clear(&mut self, v: NodeId) {
        self.labels[v.index()] = None;
    }

    /// Returns `true` if `v` has a label.
    #[inline]
    pub fn is_set(&self, v: NodeId) -> bool {
        self.labels[v.index()].is_some()
    }

    /// Returns `true` if every node has a label.
    pub fn is_complete(&self) -> bool {
        self.labels.iter().all(|l| l.is_some())
    }

    /// Number of labeled nodes.
    pub fn assigned_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Iterates over `(node, label)` pairs of assigned nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Label)> + '_ {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|label| (NodeId(i as u32), label)))
    }

    /// Verifies that this labeling is a solution of `problem` on `tree`
    /// (Definition 4.2). Returns the first violation found.
    pub fn verify(&self, tree: &RootedTree, problem: &LclProblem) -> Result<(), SolutionError> {
        if self.labels.len() != tree.len() {
            return Err(SolutionError::WrongSize {
                expected: tree.len(),
                found: self.labels.len(),
            });
        }
        for v in tree.nodes() {
            let label = match self.get(v) {
                Some(l) => l,
                None => return Err(SolutionError::Unlabeled { node: v }),
            };
            if !problem.labels().contains(label) {
                return Err(SolutionError::InactiveLabel { node: v, label });
            }
        }
        for v in tree.nodes() {
            if tree.num_children(v) != problem.delta() {
                continue; // unconstrained (leaf of a full δ-ary tree, or irregular node)
            }
            let parent_label = self.get(v).expect("checked above");
            let child_labels: Vec<Label> = tree
                .children(v)
                .iter()
                .map(|&c| self.get(c).expect("checked above"))
                .collect();
            let config = Configuration::new(parent_label, child_labels.clone());
            if !problem.allows(&config) {
                return Err(SolutionError::ForbiddenConfiguration {
                    node: v,
                    parent_label,
                    child_labels,
                });
            }
        }
        Ok(())
    }

    /// Renders the labeling as `node=name` pairs, useful in error messages.
    pub fn display(&self, problem: &LclProblem) -> String {
        let mut parts = Vec::new();
        for (v, l) in self.iter() {
            parts.push(format!("{v}={}", problem.label_name(l)));
        }
        parts.join(" ")
    }
}

/// A violation of Definition 4.2 found by [`Labeling::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolutionError {
    /// The labeling covers a different number of nodes than the tree.
    WrongSize {
        /// Number of nodes in the tree.
        expected: usize,
        /// Number of entries in the labeling.
        found: usize,
    },
    /// A node has no label.
    Unlabeled {
        /// The unlabeled node.
        node: NodeId,
    },
    /// A node is labeled with a label outside Σ(Π).
    InactiveLabel {
        /// The offending node.
        node: NodeId,
        /// The label it carries.
        label: Label,
    },
    /// A constrained node together with its children does not form an allowed
    /// configuration.
    ForbiddenConfiguration {
        /// The constrained (parent) node.
        node: NodeId,
        /// Its label.
        parent_label: Label,
        /// The labels of its children, in port order.
        child_labels: Vec<Label>,
    },
}

impl std::fmt::Display for SolutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolutionError::WrongSize { expected, found } => {
                write!(
                    f,
                    "labeling covers {found} nodes but the tree has {expected}"
                )
            }
            SolutionError::Unlabeled { node } => write!(f, "node {node} has no label"),
            SolutionError::InactiveLabel { node, label } => {
                write!(
                    f,
                    "node {node} carries label {label} outside the active set"
                )
            }
            SolutionError::ForbiddenConfiguration { node, .. } => {
                write!(
                    f,
                    "node {node} and its children form a forbidden configuration"
                )
            }
        }
    }
}

impl std::error::Error for SolutionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_trees::generators;

    fn two_coloring() -> LclProblem {
        "1:22\n2:11\n".parse().unwrap()
    }

    #[test]
    fn complete_valid_labeling_verifies() {
        let p = two_coloring();
        let one = p.label_by_name("1").unwrap();
        let two = p.label_by_name("2").unwrap();
        let tree = generators::balanced(2, 3);
        let depths = tree.depths();
        let mut labeling = Labeling::for_tree(&tree);
        for v in tree.nodes() {
            let label = if depths[v.index()].is_multiple_of(2) {
                one
            } else {
                two
            };
            labeling.set(v, label);
        }
        assert!(labeling.is_complete());
        labeling.verify(&tree, &p).unwrap();
    }

    #[test]
    fn missing_label_is_reported() {
        let p = two_coloring();
        let tree = generators::balanced(2, 1);
        let labeling = Labeling::for_tree(&tree);
        let err = labeling.verify(&tree, &p).unwrap_err();
        assert!(matches!(err, SolutionError::Unlabeled { .. }));
    }

    #[test]
    fn forbidden_configuration_is_reported() {
        let p = two_coloring();
        let one = p.label_by_name("1").unwrap();
        let tree = generators::balanced(2, 1);
        let mut labeling = Labeling::for_tree(&tree);
        for v in tree.nodes() {
            labeling.set(v, one);
        }
        let err = labeling.verify(&tree, &p).unwrap_err();
        assert!(matches!(err, SolutionError::ForbiddenConfiguration { .. }));
    }

    #[test]
    fn leaves_are_unconstrained() {
        // Leaves may carry any active label, even one that never appears in a
        // configuration's child position.
        let p: LclProblem = "1 : 1 1\nlabels: z\n".parse().unwrap();
        let one = p.label_by_name("1").unwrap();
        let z = p.label_by_name("z").unwrap();
        let tree = generators::balanced(2, 1);
        let mut labeling = Labeling::for_tree(&tree);
        labeling.set(tree.root(), one);
        for &c in tree.children(tree.root()) {
            labeling.set(c, z);
        }
        // The root's configuration (1 : z z) is forbidden...
        assert!(labeling.verify(&tree, &p).is_err());
        // ...but labeling the root's children 1 and hanging z on nothing is fine:
        let mut ok = Labeling::for_tree(&tree);
        for v in tree.nodes() {
            ok.set(v, one);
        }
        ok.verify(&tree, &p).unwrap();
    }

    #[test]
    fn inactive_label_is_reported() {
        let p = two_coloring();
        let tree = generators::balanced(2, 1);
        let mut labeling = Labeling::for_tree(&tree);
        for v in tree.nodes() {
            labeling.set(v, Label(99));
        }
        let err = labeling.verify(&tree, &p).unwrap_err();
        assert!(matches!(err, SolutionError::InactiveLabel { .. }));
    }

    #[test]
    fn wrong_size_is_reported() {
        let p = two_coloring();
        let tree = generators::balanced(2, 2);
        let labeling = Labeling::new(3);
        let err = labeling.verify(&tree, &p).unwrap_err();
        assert!(matches!(err, SolutionError::WrongSize { .. }));
    }

    #[test]
    fn irregular_nodes_are_unconstrained() {
        // A node with 1 child in a δ=2 problem is unconstrained (Definition 4.2
        // only constrains nodes with exactly δ children).
        let p = two_coloring();
        let one = p.label_by_name("1").unwrap();
        let mut tree = RootedTree::singleton();
        tree.add_child(tree.root());
        let mut labeling = Labeling::for_tree(&tree);
        for v in tree.nodes() {
            labeling.set(v, one);
        }
        labeling.verify(&tree, &p).unwrap();
    }

    #[test]
    fn iter_and_counts() {
        let tree = generators::balanced(2, 1);
        let mut labeling = Labeling::for_tree(&tree);
        assert_eq!(labeling.assigned_count(), 0);
        labeling.set(tree.root(), Label(0));
        assert_eq!(labeling.assigned_count(), 1);
        assert_eq!(labeling.iter().count(), 1);
        labeling.clear(tree.root());
        assert_eq!(labeling.assigned_count(), 0);
        assert!(!labeling.is_complete());
    }
}
