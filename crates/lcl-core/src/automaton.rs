//! The automaton associated with the path-form of an LCL problem (Definition 4.7)
//! and the flexibility analysis of Definitions 4.8–4.9 and 4.12.
//!
//! The automaton `M(Π)` is a directed graph whose states are the labels of Π and
//! which has an edge `a → b` whenever `(a : b)` appears in the path-form of Π.
//! A state is *flexible* when it admits closed walks of every sufficiently large
//! length; equivalently, its strongly connected component contains a cycle and has
//! period (gcd of its cycle lengths) 1. The pruning procedure of Algorithm 1 removes
//! all inflexible states, and Algorithm 2's certificate is a restriction to a
//! *minimal absorbing subgraph* — a strongly connected component without outgoing
//! edges (Definition 4.12).
//!
//! State sets are [`LabelSet`] bitsets throughout, so the reachability iterations
//! (`closed_walk_lengths`, `find_walk`) advance whole frontiers with a handful of
//! word operations per step.

use crate::label::Label;
use crate::label_set::LabelSet;
use crate::problem::LclProblem;

/// The path-form automaton `M(Π)` of a problem (Definition 4.7).
#[derive(Debug, Clone)]
pub struct Automaton {
    /// The state labels in ascending order.
    states: Vec<Label>,
    /// The states as a set; `state_set.rank(l)` is `l`'s index into `states`.
    state_set: LabelSet,
    /// Successors of each state, indexed parallel to `states`.
    successors: Vec<LabelSet>,
}

/// A strongly connected component of the automaton, with its period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Component {
    /// States of the component.
    pub states: LabelSet,
    /// `true` if the component contains at least one edge (i.e. a cycle); single
    /// states without a self-loop are *trivial* components.
    pub has_cycle: bool,
    /// The gcd of the lengths of all cycles inside the component; 0 for trivial
    /// components.
    pub period: usize,
    /// `true` if no edge leaves the component (Definition 4.12's absorbing
    /// condition).
    pub is_sink: bool,
}

impl Automaton {
    /// Builds the automaton associated with the path-form of `problem`.
    pub fn of(problem: &LclProblem) -> Self {
        let state_set = problem.labels();
        let states: Vec<Label> = state_set.iter().collect();
        let mut successors = vec![LabelSet::EMPTY; states.len()];
        for c in problem.configurations() {
            let from = state_set.rank(c.parent());
            for &child in c.children() {
                successors[from].insert(child);
            }
        }
        Automaton {
            states,
            state_set,
            successors,
        }
    }

    /// The states (labels) of the automaton.
    pub fn states(&self) -> &[Label] {
        &self.states
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The successors of a state (empty if the state has no outgoing transitions or
    /// is not part of the automaton).
    #[inline]
    pub fn successors(&self, state: Label) -> LabelSet {
        if self.state_set.contains(state) {
            self.successors[self.state_set.rank(state)]
        } else {
            LabelSet::EMPTY
        }
    }

    /// Returns `true` if there is a transition `from → to`.
    pub fn has_edge(&self, from: Label, to: Label) -> bool {
        self.successors(from).contains(to)
    }

    /// Total number of transitions.
    pub fn num_edges(&self) -> usize {
        self.successors.iter().map(|s| s.len()).sum()
    }

    /// Decomposes the automaton into strongly connected components (Kosaraju's
    /// two-pass algorithm), returning one [`Component`] per SCC.
    pub fn components(&self) -> Vec<Component> {
        let n = self.states.len();
        // Forward adjacency as indices.
        let forward: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                self.successors[i]
                    .iter()
                    .map(|l| self.state_set.rank(l))
                    .collect()
            })
            .collect();
        let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, succs) in forward.iter().enumerate() {
            for &v in succs {
                reverse[v].push(u);
            }
        }
        // Pass 1: finishing order on the forward graph (iterative DFS).
        let mut visited = vec![false; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            visited[start] = true;
            while let Some((v, child_pos)) = stack.pop() {
                if child_pos < forward[v].len() {
                    stack.push((v, child_pos + 1));
                    let w = forward[v][child_pos];
                    if !visited[w] {
                        visited[w] = true;
                        stack.push((w, 0));
                    }
                } else {
                    order.push(v);
                }
            }
        }
        // Pass 2: DFS on the reverse graph in reverse finishing order.
        let mut comp_id = vec![usize::MAX; n];
        let mut num_components = 0usize;
        for &start in order.iter().rev() {
            if comp_id[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp_id[start] = num_components;
            while let Some(v) = stack.pop() {
                for &w in &reverse[v] {
                    if comp_id[w] == usize::MAX {
                        comp_id[w] = num_components;
                        stack.push(w);
                    }
                }
            }
            num_components += 1;
        }

        let mut members: Vec<LabelSet> = vec![LabelSet::EMPTY; num_components];
        for (i, &label) in self.states.iter().enumerate() {
            members[comp_id[i]].insert(label);
        }
        members
            .into_iter()
            .map(|states| {
                let has_cycle = self.component_has_cycle(states);
                let period = if has_cycle {
                    self.component_period(states)
                } else {
                    0
                };
                let is_sink = states.iter().all(|s| self.successors(s).is_subset(states));
                Component {
                    states,
                    has_cycle,
                    period,
                    is_sink,
                }
            })
            .collect()
    }

    fn component_has_cycle(&self, states: LabelSet) -> bool {
        if states.len() > 1 {
            return true;
        }
        let only = states.first().expect("non-empty component");
        self.has_edge(only, only)
    }

    /// Computes the period (gcd of cycle lengths) of a strongly connected component
    /// that contains at least one cycle, via BFS layering: the period is the gcd of
    /// `level(u) + 1 − level(v)` over all internal edges `u → v`.
    fn component_period(&self, states: LabelSet) -> usize {
        let start = states.first().expect("non-empty component");
        let mut level: Vec<Option<i64>> = vec![None; states.len()];
        level[states.rank(start)] = Some(0);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        let mut gcd: i64 = 0;
        while let Some(u) = queue.pop_front() {
            let lu = level[states.rank(u)].expect("queued states have levels");
            for v in self.successors(u) & states {
                match level[states.rank(v)] {
                    None => {
                        level[states.rank(v)] = Some(lu + 1);
                        queue.push_back(v);
                    }
                    Some(lv) => {
                        gcd = gcd_i64(gcd, (lu + 1 - lv).abs());
                    }
                }
            }
        }
        gcd.max(0) as usize
    }

    /// Definition 4.8/4.9: the set of flexible (path-flexible) states — states whose
    /// SCC contains a cycle of period 1.
    pub fn flexible_states(&self) -> LabelSet {
        let mut out = LabelSet::EMPTY;
        for comp in self.components() {
            if comp.has_cycle && comp.period == 1 {
                out |= comp.states;
            }
        }
        out
    }

    /// Definition 4.8: the flexibility of a state — the smallest `K` such that for
    /// every `k ≥ K` there is a closed walk of length exactly `k` from the state to
    /// itself. Returns `None` for inflexible states.
    ///
    /// Closed walks through a state stay inside its SCC, so the Wielandt bound
    /// `(s − 1)² + 1` on the primitivity index of its SCC (of size `s`) bounds the
    /// flexibility; a DP over walk lengths up to that bound finds the exact value.
    pub fn flexibility(&self, state: Label) -> Option<usize> {
        let comp = self
            .components()
            .into_iter()
            .find(|c| c.states.contains(state))?;
        if !comp.has_cycle || comp.period != 1 {
            return None;
        }
        let s = comp.states.len();
        let wielandt = (s.saturating_sub(1)).pow(2) + 1;
        let achievable = self.closed_walk_lengths(state, comp.states, wielandt);
        // All lengths >= wielandt are achievable (primitive component); find the
        // smallest K such that everything in [K, wielandt] is achievable, i.e. keep
        // lowering K while the length just below it is still achievable.
        let mut k = wielandt;
        while k >= 2 && achievable[k - 2] {
            k -= 1;
        }
        Some(k)
    }

    /// For each length `1..=max_len`, whether a closed walk of that length from
    /// `state` back to itself exists using only states of `within`.
    fn closed_walk_lengths(&self, state: Label, within: LabelSet, max_len: usize) -> Vec<bool> {
        // reachable = set of states reachable from `state` by a walk of length l.
        let mut reachable = LabelSet::singleton(state);
        let mut result = vec![false; max_len];
        for entry in result.iter_mut() {
            let mut next = LabelSet::EMPTY;
            for u in reachable {
                next |= self.successors(u);
            }
            next &= within;
            *entry = next.contains(state);
            reachable = next;
        }
        result
    }

    /// Returns `true` if a walk of length exactly `len` from `from` to `to` exists.
    pub fn walk_exists(&self, from: Label, to: Label, len: usize) -> bool {
        self.find_walk(from, to, len).is_some()
    }

    /// Finds a walk of length exactly `len` from `from` to `to`, returned as the
    /// sequence of `len + 1` visited states, or `None` if no such walk exists.
    pub fn find_walk(&self, from: Label, to: Label, len: usize) -> Option<Vec<Label>> {
        let mut reach = Vec::new();
        let mut walk = Vec::new();
        if self.find_walk_into(from, to, len, &mut reach, &mut walk) {
            Some(walk)
        } else {
            None
        }
    }

    /// [`Self::find_walk`] with caller-provided buffers: `walk` receives the
    /// `len + 1` visited states on success (it is cleared either way), `reach`
    /// is reused scratch. Once both buffers have grown to the caller's largest
    /// `len`, repeated calls perform no allocation — the shape the flat
    /// rake-and-compress solver needs when completing thousands of compress
    /// runs per tree.
    pub fn find_walk_into(
        &self,
        from: Label,
        to: Label,
        len: usize,
        reach: &mut Vec<LabelSet>,
        walk: &mut Vec<Label>,
    ) -> bool {
        // reach[l] = states from which `to` is reachable in exactly l steps.
        reach.clear();
        walk.clear();
        let mut current = LabelSet::singleton(to);
        reach.push(current);
        for _ in 0..len {
            let mut prev = LabelSet::EMPTY;
            for &s in &self.states {
                if !self.successors(s).is_disjoint(current) {
                    prev.insert(s);
                }
            }
            reach.push(prev);
            current = prev;
        }
        if !reach[len].contains(from) {
            return false;
        }
        let mut state = from;
        walk.push(state);
        for step in 0..len {
            let remaining = len - step - 1;
            let next = (self.successors(state) & reach[remaining])
                .first()
                .expect("walk reconstruction follows reachability sets");
            walk.push(next);
            state = next;
        }
        true
    }

    /// Returns `true` if the automaton restricted to its states is strongly
    /// connected (and non-empty).
    pub fn is_strongly_connected(&self) -> bool {
        let comps = self.components();
        comps.len() == 1 && !self.states.is_empty()
    }

    /// Definition 4.12: the states of a *minimal absorbing subgraph* — a strongly
    /// connected component without outgoing edges. Among sink components, ones that
    /// contain a cycle are preferred (Lemma 5.5 needs at least one edge); ties are
    /// broken towards the component containing the smallest label, making the choice
    /// deterministic.
    pub fn minimal_absorbing_component(&self) -> Option<LabelSet> {
        let comps = self.components();
        let mut sinks: Vec<&Component> = comps.iter().filter(|c| c.is_sink).collect();
        sinks.sort_by_key(|c| (!c.has_cycle, c.states.first().expect("non-empty")));
        sinks.first().map(|c| c.states)
    }
}

fn gcd_i64(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd_i64(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LclProblem;

    fn problem(text: &str) -> LclProblem {
        text.parse().unwrap()
    }

    /// Figure 2a: Π₀ = branch 2-coloring {1,2} combined with proper 2-coloring {a,b}.
    fn pi0() -> LclProblem {
        problem("a : b b\nb : a a\n1 : 1 2\n2 : 1 1\n")
    }

    #[test]
    fn automaton_of_pi0_matches_figure_2c() {
        let p = pi0();
        let m = Automaton::of(&p);
        let l = |n: &str| p.label_by_name(n).unwrap();
        assert_eq!(m.num_states(), 4);
        // Edges: a→b, b→a, 1→1, 1→2, 2→1.
        assert!(m.has_edge(l("a"), l("b")));
        assert!(m.has_edge(l("b"), l("a")));
        assert!(m.has_edge(l("1"), l("1")));
        assert!(m.has_edge(l("1"), l("2")));
        assert!(m.has_edge(l("2"), l("1")));
        assert!(!m.has_edge(l("a"), l("1")));
        assert_eq!(m.num_edges(), 5);
    }

    #[test]
    fn components_and_periods_of_pi0() {
        let p = pi0();
        let m = Automaton::of(&p);
        let l = |n: &str| p.label_by_name(n).unwrap();
        let comps = m.components();
        assert_eq!(comps.len(), 2);
        let ab = comps.iter().find(|c| c.states.contains(l("a"))).unwrap();
        let digits = comps.iter().find(|c| c.states.contains(l("1"))).unwrap();
        // {a, b} is 2-periodic (only even closed walks), {1, 2} is 1-periodic.
        assert_eq!(ab.period, 2);
        assert!(ab.has_cycle);
        assert_eq!(digits.period, 1);
        assert!(digits.has_cycle);
    }

    #[test]
    fn flexible_states_of_pi0_are_the_digits() {
        // Figure 2c: states a and b are inflexible (grayed out), 1 and 2 flexible.
        let p = pi0();
        let m = Automaton::of(&p);
        let l = |n: &str| p.label_by_name(n).unwrap();
        let flexible = m.flexible_states();
        assert!(flexible.contains(l("1")));
        assert!(flexible.contains(l("2")));
        assert!(!flexible.contains(l("a")));
        assert!(!flexible.contains(l("b")));
    }

    #[test]
    fn flexibility_values() {
        let p = pi0();
        let m = Automaton::of(&p);
        let l = |n: &str| p.label_by_name(n).unwrap();
        // 1 has a self-loop: closed walks of every length >= 1.
        assert_eq!(m.flexibility(l("1")), Some(1));
        // 2 has closed walks of lengths 2, 3, 4, ... (via 2→1→2, 2→1→1→2, …).
        assert_eq!(m.flexibility(l("2")), Some(2));
        assert_eq!(m.flexibility(l("a")), None);
        assert_eq!(m.flexibility(l("b")), None);
    }

    #[test]
    fn three_coloring_everything_flexible() {
        let p = problem("1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n");
        let m = Automaton::of(&p);
        assert_eq!(m.flexible_states().len(), 3);
        assert!(m.is_strongly_connected());
        for &s in m.states() {
            // Closed walks of length 2 (via another color) and 3 exist, so
            // flexibility 2; length 1 is impossible (proper coloring).
            assert_eq!(m.flexibility(s), Some(2));
        }
    }

    #[test]
    fn two_coloring_is_inflexible() {
        let p = problem("1:22\n2:11\n");
        let m = Automaton::of(&p);
        assert!(m.flexible_states().is_empty());
        let comps = m.components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].period, 2);
    }

    #[test]
    fn isolated_label_is_its_own_trivial_component() {
        let p = problem("1 : 1 1\nlabels: z\n");
        let m = Automaton::of(&p);
        let z = p.label_by_name("z").unwrap();
        let comps = m.components();
        assert_eq!(comps.len(), 2);
        let z_comp = comps.iter().find(|c| c.states.contains(z)).unwrap();
        assert!(!z_comp.has_cycle);
        assert_eq!(z_comp.period, 0);
        assert_eq!(m.flexibility(z), None);
    }

    #[test]
    fn minimal_absorbing_component_prefers_sinks_with_cycles() {
        // a → b (one way), b has a self-loop: the sink SCC is {b}.
        let p = problem("a : b b\nb : b b\n");
        let m = Automaton::of(&p);
        let b = p.label_by_name("b").unwrap();
        let mac = m.minimal_absorbing_component().unwrap();
        assert_eq!(mac.len(), 1);
        assert!(mac.contains(b));
    }

    #[test]
    fn minimal_absorbing_component_of_strongly_connected_automaton_is_everything() {
        let p = problem("1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n");
        let m = Automaton::of(&p);
        let mac = m.minimal_absorbing_component().unwrap();
        assert_eq!(mac.len(), 3);
    }

    #[test]
    fn find_walk_exact_lengths() {
        let p = pi0();
        let m = Automaton::of(&p);
        let l = |n: &str| p.label_by_name(n).unwrap();
        // 2 → 1 → 1 → 2 is a walk of length 3.
        let walk = m.find_walk(l("2"), l("2"), 3).unwrap();
        assert_eq!(walk.len(), 4);
        assert_eq!(walk[0], l("2"));
        assert_eq!(walk[3], l("2"));
        for pair in walk.windows(2) {
            assert!(m.has_edge(pair[0], pair[1]));
        }
        // No closed walk of length 1 from 2.
        assert!(m.find_walk(l("2"), l("2"), 1).is_none());
        // In the {a, b} component only even-length walks from a to a exist.
        assert!(m.walk_exists(l("a"), l("a"), 4));
        assert!(!m.walk_exists(l("a"), l("a"), 5));
    }

    #[test]
    fn walk_of_length_zero() {
        let p = pi0();
        let m = Automaton::of(&p);
        let one = p.label_by_name("1").unwrap();
        let two = p.label_by_name("2").unwrap();
        assert_eq!(m.find_walk(one, one, 0), Some(vec![one]));
        assert!(m.find_walk(one, two, 0).is_none());
    }

    #[test]
    fn flexibility_of_longer_cycles() {
        // A 2-cycle plus a 3-cycle sharing state x: period 1, flexibility follows
        // the Chicken McNugget bound (2 and 3 ⇒ every length ≥ 2 achievable).
        let p = problem("x : y\ny : x\nx : u\nu : v\nv : x\n");
        assert_eq!(p.delta(), 1);
        let m = Automaton::of(&p);
        let x = p.label_by_name("x").unwrap();
        assert_eq!(m.flexibility(x), Some(2));
    }
}
