//! Versioned binary snapshots of classification state: the canonical-form
//! memo, the accumulated sweep histograms, and a resumable sweep cursor.
//!
//! A sweep campaign larger than one process lifetime needs its state to
//! survive the process. A [`SweepSnapshot`] captures everything a sweep has
//! learned — every `canonical key → Complexity` verdict, the orbit and
//! whole-universe histograms, the bit-sliced lane statistics, and a per-shard
//! *watermark* (the next configuration mask each shard has yet to visit) — in
//! one dense little-endian byte stream:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "RTLCLSNP"
//! 8       4     format version (u32, currently 1)
//! 12      2     δ                       ┐
//! 14      2     |Σ|                     │ sweep cursor
//! 16      1     engine kind (0 scalar,  │
//!               1 bit-sliced)           │
//! 17      4     shard-range count r     │
//! 21      16·r  per range: next, hi     ┘  (u64 each; next == hi ⇒ done)
//! …       8·13  orbit histogram         ┐
//! …       8·13  universe histogram      │ SweepOutcome (13 = 5 classes
//! …       8·4   lane statistics         ┘  + 8 poly-exponent buckets)
//! …       8     memo entry count        ┐
//! …       …     per entry: key length   │ canonical-form memo
//!               (u16), key words (u16   │
//!               each), tag (u8), and    │
//!               for Polynomial the      │
//!               exponent (u32)          ┘
//! last    8     FNV-1a 64 digest of every preceding byte
//! ```
//!
//! The digest makes truncated or bit-flipped files a clean
//! [`SnapshotError`], never a silently wrong histogram; writes go through a
//! temp file plus `rename` ([`SweepSnapshot::save`]), so a reader — or a
//! resumed sweep — observes either the previous checkpoint or the new one,
//! never a torn mix, even if the writer is SIGKILLed mid-write. Everything is
//! hand-rolled over `std::fs`/`std::io`, mirroring the CLI's hand-rolled JSON:
//! the workspace stays dependency-free.

use std::fmt;
use std::io;
use std::path::Path;

use crate::classifier::Complexity;
use crate::engine::{
    CanonicalKey, ComplexityHistogram, SweepLaneStats, SweepOutcome, POLY_EXPONENT_BUCKETS,
};

/// First eight bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RTLCLSNP";

/// Current on-disk format version. Readers reject anything else.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Which sweep engine produced (and should resume) a snapshot. Stored in the
/// cursor so `--resume` never mixes block-boundary watermarks of one engine
/// with the commit granularity of the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// One scalar decision per canonical representative.
    Scalar,
    /// 64 configuration masks per block over a `SlicedUniverse`.
    Bitsliced,
}

impl EngineKind {
    /// Stable CLI / JSON name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Scalar => "scalar",
            EngineKind::Bitsliced => "bitsliced",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            EngineKind::Scalar => 0,
            EngineKind::Bitsliced => 1,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(EngineKind::Scalar),
            1 => Some(EngineKind::Bitsliced),
            _ => None,
        }
    }
}

/// One shard's remaining work: the configuration masks `next..hi`. `next` is
/// the shard's *watermark* — everything below it is already folded into the
/// snapshot's histograms and memo. `next == hi` means the shard is done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskRange {
    /// First mask not yet accounted for.
    pub next: u64,
    /// One past the shard's last mask.
    pub hi: u64,
}

impl MaskRange {
    /// Number of masks still to visit.
    pub fn remaining(&self) -> u64 {
        self.hi.saturating_sub(self.next)
    }

    /// `true` once the watermark has reached the range's end.
    pub fn is_done(&self) -> bool {
        self.next >= self.hi
    }
}

/// Where a sweep campaign stands: which family, which engine, and each
/// shard's watermark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCursor {
    /// The family's δ.
    pub delta: u16,
    /// The family's |Σ|.
    pub num_labels: u16,
    /// Engine the campaign runs on.
    pub engine: EngineKind,
    /// Per-shard watermarked mask ranges. Completed ranges stay in the list
    /// (with `next == hi`), so the shard count is stable across restarts.
    pub ranges: Vec<MaskRange>,
}

impl SweepCursor {
    /// Total masks not yet accounted for, over all shards.
    pub fn remaining_masks(&self) -> u64 {
        self.ranges.iter().map(MaskRange::remaining).sum()
    }

    /// `true` once every shard's watermark has reached its end.
    pub fn is_complete(&self) -> bool {
        self.ranges.iter().all(MaskRange::is_done)
    }
}

/// A checkpoint of a sweep campaign: cursor, accumulated outcome, and the
/// canonical-form memo of everything classified so far. See the module
/// documentation for the byte layout.
#[derive(Debug, Clone)]
pub struct SweepSnapshot {
    /// Family parameters, engine, and per-shard watermarks.
    pub cursor: SweepCursor,
    /// Histograms and lane statistics accumulated below the watermarks.
    pub outcome: SweepOutcome,
    /// `canonical key → Complexity` for every orbit accounted so far.
    pub memo: Vec<(CanonicalKey, Complexity)>,
}

/// Why a snapshot could not be read or written.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's format version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u32),
    /// The file ends before a complete record (no digest to check against).
    Truncated,
    /// The trailing digest does not match the content — truncation or
    /// corruption after the header.
    ChecksumMismatch,
    /// The digest matches but a field is out of range (a writer bug).
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot digest mismatch (truncated or corrupted file)")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64 over `bytes` — the digest in a snapshot's trailer. Public so
/// tests (and external tooling) can craft or verify files.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Complexity → on-disk tag. `Polynomial` is followed by its `u32` exponent.
fn complexity_tag(c: Complexity) -> u8 {
    match c {
        Complexity::Unsolvable => 0,
        Complexity::Constant => 1,
        Complexity::LogStar => 2,
        Complexity::Log => 3,
        Complexity::Polynomial { .. } => 4,
    }
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_histogram(out: &mut Vec<u8>, h: &ComplexityHistogram) {
    push_u64(out, h.constant);
    push_u64(out, h.log_star);
    push_u64(out, h.log);
    push_u64(out, h.polynomial);
    for &k in &h.poly_k {
        push_u64(out, k);
    }
    push_u64(out, h.unsolvable);
}

/// Little-endian reader over a byte slice; every read checks bounds so a
/// short file surfaces as [`SnapshotError::Truncated`], never a panic.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn histogram(&mut self) -> Result<ComplexityHistogram, SnapshotError> {
        let mut h = ComplexityHistogram {
            constant: self.u64()?,
            log_star: self.u64()?,
            log: self.u64()?,
            polynomial: self.u64()?,
            ..ComplexityHistogram::default()
        };
        for k in &mut h.poly_k {
            *k = self.u64()?;
        }
        h.unsolvable = self.u64()?;
        Ok(h)
    }
}

impl SweepSnapshot {
    /// A fresh campaign over the given family/engine: empty histograms, empty
    /// memo, every watermark at its range's start.
    pub fn fresh(delta: u16, num_labels: u16, engine: EngineKind, ranges: Vec<MaskRange>) -> Self {
        SweepSnapshot {
            cursor: SweepCursor {
                delta,
                num_labels,
                engine,
                ranges,
            },
            outcome: SweepOutcome::default(),
            memo: Vec::new(),
        }
    }

    /// Serializes to the on-disk byte layout, digest included.
    pub fn to_bytes(&self) -> Vec<u8> {
        to_bytes_parts(&self.cursor, &self.outcome, &[&self.memo])
    }

    /// Parses and validates a snapshot: magic, digest, version, then fields.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a64(body) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut r = Reader {
            bytes: body,
            at: SNAPSHOT_MAGIC.len(),
        };
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let delta = r.u16()?;
        let num_labels = r.u16()?;
        let engine = EngineKind::from_u8(r.u8()?).ok_or(SnapshotError::Malformed("engine kind"))?;
        let range_count = r.u32()? as usize;
        if range_count > r.remaining() / 16 {
            return Err(SnapshotError::Malformed("range count"));
        }
        let mut ranges = Vec::with_capacity(range_count);
        for _ in 0..range_count {
            let next = r.u64()?;
            let hi = r.u64()?;
            if next > hi {
                return Err(SnapshotError::Malformed("range watermark past end"));
            }
            ranges.push(MaskRange { next, hi });
        }
        let outcome = SweepOutcome {
            orbits: r.histogram()?,
            problems: r.histogram()?,
            lanes: SweepLaneStats {
                blocks: r.u64()?,
                fixpoint_rounds: r.u64()?,
                live_lane_rounds: r.u64()?,
                scalar_fallbacks: r.u64()?,
            },
        };
        let memo_count = r.u64()?;
        // Each entry is at least 3 bytes (empty key + tag); a count beyond
        // that bound cannot be real even with a valid digest.
        if memo_count > (r.remaining() / 3) as u64 {
            return Err(SnapshotError::Malformed("memo count"));
        }
        let mut memo = Vec::with_capacity(memo_count as usize);
        for _ in 0..memo_count {
            let key_len = r.u16()? as usize;
            let mut words = Vec::with_capacity(key_len);
            for _ in 0..key_len {
                words.push(r.u16()?);
            }
            let complexity = match r.u8()? {
                0 => Complexity::Unsolvable,
                1 => Complexity::Constant,
                2 => Complexity::LogStar,
                3 => Complexity::Log,
                4 => Complexity::Polynomial {
                    exponent: r.u32()? as usize,
                },
                _ => return Err(SnapshotError::Malformed("complexity tag")),
            };
            memo.push((CanonicalKey::from_words(words), complexity));
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        Ok(SweepSnapshot {
            cursor: SweepCursor {
                delta,
                num_labels,
                engine,
                ranges,
            },
            outcome,
            memo,
        })
    }

    /// Writes the snapshot atomically: serialize to `<path>.tmp` in the same
    /// directory, then `rename` over `path`. A reader never observes a
    /// partial file.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        save_bytes(path, &self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates a snapshot file.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// Serializes cursor + outcome + memo chunks (concatenated in order) to the
/// on-disk layout. The sweep drivers keep the baseline memo (loaded from a
/// prior snapshot) and the newly classified entries in separate buffers; this
/// writes both without gluing them into one allocation first.
pub(crate) fn to_bytes_parts(
    cursor: &SweepCursor,
    outcome: &SweepOutcome,
    memos: &[&[(CanonicalKey, Complexity)]],
) -> Vec<u8> {
    let memo_count: usize = memos.iter().map(|m| m.len()).sum();
    let memo_bytes: usize = memos
        .iter()
        .flat_map(|m| m.iter())
        .map(|(k, c)| 2 + 2 * k.as_words().len() + if complexity_tag(*c) == 4 { 5 } else { 1 })
        .sum();
    let mut out = Vec::with_capacity(
        SNAPSHOT_MAGIC.len()
            + 4
            + 5
            + 4
            + 16 * cursor.ranges.len()
            + 8 * (2 * (5 + POLY_EXPONENT_BUCKETS) + 4)
            + 8
            + memo_bytes
            + 8,
    );
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    push_u32(&mut out, SNAPSHOT_VERSION);
    push_u16(&mut out, cursor.delta);
    push_u16(&mut out, cursor.num_labels);
    out.push(cursor.engine.to_u8());
    push_u32(&mut out, cursor.ranges.len() as u32);
    for range in &cursor.ranges {
        push_u64(&mut out, range.next);
        push_u64(&mut out, range.hi);
    }
    push_histogram(&mut out, &outcome.orbits);
    push_histogram(&mut out, &outcome.problems);
    push_u64(&mut out, outcome.lanes.blocks);
    push_u64(&mut out, outcome.lanes.fixpoint_rounds);
    push_u64(&mut out, outcome.lanes.live_lane_rounds);
    push_u64(&mut out, outcome.lanes.scalar_fallbacks);
    push_u64(&mut out, memo_count as u64);
    for (key, complexity) in memos.iter().flat_map(|m| m.iter()) {
        let words = key.as_words();
        push_u16(&mut out, words.len() as u16);
        for &w in words {
            push_u16(&mut out, w);
        }
        out.push(complexity_tag(*complexity));
        if let Complexity::Polynomial { exponent } = *complexity {
            push_u32(&mut out, exponent as u32);
        }
    }
    let digest = fnv1a64(&out);
    push_u64(&mut out, digest);
    out
}

/// Atomic file write: `<path>.tmp` in the same directory, then `rename`.
pub(crate) fn save_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// What [`load_or_quarantine`] found at a checkpoint path.
#[derive(Debug)]
pub enum LoadOutcome {
    /// The file parsed and validated; here is the snapshot.
    Loaded(Box<SweepSnapshot>),
    /// The file was damaged (digest mismatch or truncation) and has been
    /// renamed out of the way so a fresh campaign can take its place.
    Quarantined {
        /// Where the damaged file now lives (`<path>.corrupt`).
        to: std::path::PathBuf,
        /// What was wrong with it.
        error: SnapshotError,
    },
}

/// Loads a snapshot, quarantining damaged files instead of hard-failing.
///
/// Damage — [`SnapshotError::ChecksumMismatch`] or [`SnapshotError::Truncated`]
/// — means the bytes *were* a snapshot but didn't survive intact (a torn disk,
/// a partial copy); the file is renamed to `<path>.corrupt` (clobbering any
/// previous quarantine of the same path) and reported as
/// [`LoadOutcome::Quarantined`] so the caller can continue with a fresh
/// campaign. Everything else stays a hard error: [`SnapshotError::BadMagic`]
/// says the file was never a snapshot (renaming it could destroy an unrelated
/// file the user pointed at by mistake), an unsupported version or malformed
/// field is a software mismatch worth stopping for, and I/O errors (including
/// a missing file) are the caller's policy to decide.
pub fn load_or_quarantine(path: &Path) -> Result<LoadOutcome, SnapshotError> {
    match SweepSnapshot::load(path) {
        Ok(snap) => Ok(LoadOutcome::Loaded(Box::new(snap))),
        Err(error @ (SnapshotError::ChecksumMismatch | SnapshotError::Truncated)) => {
            let mut to = path.as_os_str().to_owned();
            to.push(".corrupt");
            let to = std::path::PathBuf::from(to);
            std::fs::rename(path, &to)?;
            Ok(LoadOutcome::Quarantined { to, error })
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepSnapshot {
        let mut outcome = SweepOutcome::default();
        outcome.orbits.add(Complexity::Constant, 3);
        outcome
            .orbits
            .add(Complexity::Polynomial { exponent: 2 }, 1);
        outcome.problems.add(Complexity::Constant, 11);
        outcome
            .problems
            .add(Complexity::Polynomial { exponent: 2 }, 6);
        outcome.lanes.blocks = 2;
        outcome.lanes.fixpoint_rounds = 9;
        outcome.lanes.live_lane_rounds = 77;
        outcome.lanes.scalar_fallbacks = 1;
        SweepSnapshot {
            cursor: SweepCursor {
                delta: 2,
                num_labels: 3,
                engine: EngineKind::Bitsliced,
                ranges: vec![
                    MaskRange { next: 40, hi: 40 },
                    MaskRange { next: 55, hi: 64 },
                ],
            },
            outcome,
            memo: vec![
                (
                    CanonicalKey::from_words(vec![2, 2, 0, 1, 1]),
                    Complexity::Constant,
                ),
                (
                    CanonicalKey::from_words(vec![2, 3, 1, 0, 2]),
                    Complexity::Polynomial { exponent: 2 },
                ),
                (
                    CanonicalKey::from_words(vec![2, 1, 0]),
                    Complexity::Unsolvable,
                ),
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = SweepSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.cursor, snap.cursor);
        assert_eq!(back.outcome, snap.outcome);
        assert_eq!(back.memo, snap.memo);
        // Serialization is deterministic.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = SweepSnapshot::fresh(1, 2, EngineKind::Scalar, vec![]);
        let back = SweepSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert!(back.cursor.is_complete());
        assert_eq!(back.cursor.remaining_masks(), 0);
        assert!(back.memo.is_empty());
        assert_eq!(back.outcome, SweepOutcome::default());
    }

    #[test]
    fn cursor_progress_accounting() {
        let snap = sample();
        assert_eq!(snap.cursor.remaining_masks(), 9);
        assert!(!snap.cursor.is_complete());
        assert!(snap.cursor.ranges[0].is_done());
        assert_eq!(snap.cursor.ranges[1].remaining(), 9);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[2] ^= 0x40;
        assert!(matches!(
            SweepSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn rejects_bit_flips_anywhere_past_the_magic() {
        let good = sample().to_bytes();
        // Header, cursor, histogram, memo, digest: one flipped bit each.
        for &at in &[9usize, 13, 30, good.len() / 2, good.len() - 3] {
            let mut bytes = good.clone();
            bytes[at] ^= 1;
            assert!(
                matches!(
                    SweepSnapshot::from_bytes(&bytes),
                    Err(SnapshotError::ChecksumMismatch)
                ),
                "flip at {at}"
            );
        }
    }

    #[test]
    fn rejects_truncation() {
        let bytes = sample().to_bytes();
        // Too short to even carry magic + digest.
        assert!(matches!(
            SweepSnapshot::from_bytes(&bytes[..10]),
            Err(SnapshotError::Truncated)
        ));
        // Any strict prefix long enough to parse headers still fails the
        // digest (the trailing 8 bytes are now content, not the digest).
        for cut in [bytes.len() - 1, bytes.len() - 9, bytes.len() / 2] {
            assert!(
                matches!(
                    SweepSnapshot::from_bytes(&bytes[..cut]),
                    Err(SnapshotError::ChecksumMismatch)
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rejects_unsupported_version_with_a_valid_digest() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = bytes.len() - 8;
        let digest = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&digest.to_le_bytes());
        assert!(matches!(
            SweepSnapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_malformed_fields_behind_a_recomputed_digest() {
        // Engine kind 7 with a freshly valid digest: Malformed, not a panic.
        let mut bytes = sample().to_bytes();
        bytes[16] = 7;
        let body_len = bytes.len() - 8;
        let digest = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&digest.to_le_bytes());
        assert!(matches!(
            SweepSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Malformed("engine kind"))
        ));
    }

    #[test]
    fn save_is_atomic_and_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("rtlcl-snapshot-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.rtlcl");
        let snap = sample();
        snap.save(&path).unwrap();
        // The temp file is gone; only the renamed target remains.
        assert!(!dir.join("state.rtlcl.tmp").exists());
        let back = SweepSnapshot::load(&path).unwrap();
        assert_eq!(back.memo, snap.memo);
        // Overwriting is atomic too: the second save replaces the first.
        let fresh = SweepSnapshot::fresh(2, 3, EngineKind::Bitsliced, vec![]);
        fresh.save(&path).unwrap();
        assert!(SweepSnapshot::load(&path).unwrap().memo.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_renames_damaged_files_and_spares_foreign_ones() {
        let dir =
            std::env::temp_dir().join(format!("rtlcl-quarantine-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.rtlcl");

        // A digest-damaged snapshot is renamed to `<path>.corrupt`.
        let mut bytes = sample().to_bytes();
        let len = bytes.len();
        bytes[len / 2] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        match load_or_quarantine(&path).unwrap() {
            LoadOutcome::Quarantined { to, error } => {
                assert!(matches!(error, SnapshotError::ChecksumMismatch));
                assert_eq!(to, dir.join("state.rtlcl.corrupt"));
                assert!(to.exists());
                assert!(!path.exists());
            }
            other => panic!("expected quarantine, got {other:?}"),
        }

        // A truncated snapshot (too short for even magic + digest) likewise.
        std::fs::write(&path, &sample().to_bytes()[..10]).unwrap();
        assert!(matches!(
            load_or_quarantine(&path).unwrap(),
            LoadOutcome::Quarantined {
                error: SnapshotError::Truncated,
                ..
            }
        ));

        // A file that was never a snapshot is NOT renamed: BadMagic stays a
        // hard error and the file stays put.
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        assert!(matches!(
            load_or_quarantine(&path),
            Err(SnapshotError::BadMagic)
        ));
        assert!(path.exists());

        // A valid file loads.
        sample().save(&path).unwrap();
        assert!(matches!(
            load_or_quarantine(&path).unwrap(),
            LoadOutcome::Loaded(_)
        ));

        // A missing file is an Io error, the caller's policy to handle.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            load_or_quarantine(&path),
            Err(SnapshotError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
