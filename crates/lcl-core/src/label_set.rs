//! Fixed-width bitsets of [`Label`]s — the hot-path set representation.
//!
//! Every decision layer of the classifier (the solvability fixed point, the
//! path-form automaton, Algorithm 2's pruning loop, and the subset searches of
//! Algorithms 4–5) is a loop over label-set operations. A [`LabelSet`] packs a
//! set of labels into a single `u128`, so union, intersection, difference,
//! subset tests, and membership are all one or two machine instructions and the
//! type is `Copy` — no allocation anywhere on the hot path. Iteration yields
//! labels in ascending index order, matching the ordering of the former
//! `BTreeSet<Label>` representation, so human-readable output is unchanged.
//!
//! Ordered-set shims ([`LabelSet::to_btree`], [`LabelSet::from_btree`]) are kept
//! for report output and interop with external code that wants a `BTreeSet`.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

use crate::label::Label;

/// A set of labels stored as a 128-bit bitmask. Supports labels with indices
/// `0..128`; [`crate::problem::LclProblem`] enforces this bound at construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LabelSet {
    bits: u128,
}

impl LabelSet {
    /// The largest label index a `LabelSet` can hold, plus one.
    pub const CAPACITY: usize = 128;

    /// The empty set.
    pub const EMPTY: LabelSet = LabelSet { bits: 0 };

    /// Creates an empty set.
    #[inline]
    pub const fn new() -> Self {
        Self::EMPTY
    }

    /// The set `{label}`.
    ///
    /// # Panics
    ///
    /// Panics if the label index is `>= 128`.
    #[inline]
    pub fn singleton(label: Label) -> Self {
        let mut s = Self::EMPTY;
        s.insert(label);
        s
    }

    /// The set `{0, 1, …, n − 1}` of the first `n` labels.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "LabelSet supports at most 128 labels");
        if n == Self::CAPACITY {
            LabelSet { bits: u128::MAX }
        } else {
            LabelSet {
                bits: (1u128 << n) - 1,
            }
        }
    }

    /// Builds a set directly from a bitmask. Bit `i` corresponds to `Label(i)`.
    #[inline]
    pub const fn from_bits(bits: u128) -> Self {
        LabelSet { bits }
    }

    /// The underlying bitmask.
    #[inline]
    pub const fn bits(self) -> u128 {
        self.bits
    }

    #[inline]
    fn mask(label: Label) -> u128 {
        assert!(
            label.index() < Self::CAPACITY,
            "label {} outside LabelSet capacity of 128",
            label.index()
        );
        1u128 << label.index()
    }

    /// Adds a label. Returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, label: Label) -> bool {
        let m = Self::mask(label);
        let fresh = self.bits & m == 0;
        self.bits |= m;
        fresh
    }

    /// Removes a label. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, label: Label) -> bool {
        let m = Self::mask(label);
        let present = self.bits & m != 0;
        self.bits &= !m;
        present
    }

    /// Membership test. Labels outside the capacity are never members.
    #[inline]
    pub fn contains(self, label: Label) -> bool {
        label.index() < Self::CAPACITY && self.bits & (1u128 << label.index()) != 0
    }

    /// Number of labels in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// `true` if the set has no labels.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: LabelSet) -> LabelSet {
        LabelSet {
            bits: self.bits | other.bits,
        }
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: LabelSet) -> LabelSet {
        LabelSet {
            bits: self.bits & other.bits,
        }
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(self, other: LabelSet) -> LabelSet {
        LabelSet {
            bits: self.bits & !other.bits,
        }
    }

    /// `true` if every label of `self` is in `other`.
    #[inline]
    pub fn is_subset(self, other: LabelSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// `true` if every label of `other` is in `self`.
    #[inline]
    pub fn is_superset(self, other: LabelSet) -> bool {
        other.is_subset(self)
    }

    /// `true` if the sets share no label.
    #[inline]
    pub fn is_disjoint(self, other: LabelSet) -> bool {
        self.bits & other.bits == 0
    }

    /// The smallest label of the set, if any.
    #[inline]
    pub fn first(self) -> Option<Label> {
        if self.bits == 0 {
            None
        } else {
            Some(Label(self.bits.trailing_zeros() as u16))
        }
    }

    /// The number of set members strictly smaller than `label` — the dense rank
    /// used to index per-state arrays built from a set's ascending iteration.
    ///
    /// # Panics
    ///
    /// Panics if the label index is `>= 128` (a masked shift would silently
    /// return a wrong rank otherwise).
    #[inline]
    pub fn rank(self, label: Label) -> usize {
        assert!(
            label.index() < Self::CAPACITY,
            "label {} outside LabelSet capacity of 128",
            label.index()
        );
        let below = (1u128 << label.index()) - 1;
        (self.bits & below).count_ones() as usize
    }

    /// Keeps only the labels for which `keep` returns `true`.
    pub fn retain(&mut self, mut keep: impl FnMut(Label) -> bool) {
        for label in self.iter() {
            if !keep(label) {
                self.remove(label);
            }
        }
    }

    /// Iterates over the labels in ascending index order.
    #[inline]
    pub fn iter(self) -> LabelSetIter {
        LabelSetIter { bits: self.bits }
    }

    /// Converts to an ordered `BTreeSet` (shim for report output and interop).
    pub fn to_btree(self) -> BTreeSet<Label> {
        self.iter().collect()
    }

    /// Builds a `LabelSet` from an ordered set (shim for interop).
    pub fn from_btree(set: &BTreeSet<Label>) -> Self {
        set.iter().copied().collect()
    }

    /// Enumerates every subset of `self` (including the empty set and `self`
    /// itself), in an unspecified order. There are `2^len` of them.
    pub fn subsets(self) -> Subsets {
        Subsets {
            mask: self.bits,
            next: Some(self.bits),
        }
    }
}

impl fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Label> for LabelSet {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> Self {
        let mut s = LabelSet::EMPTY;
        for l in iter {
            s.insert(l);
        }
        s
    }
}

impl Extend<Label> for LabelSet {
    fn extend<I: IntoIterator<Item = Label>>(&mut self, iter: I) {
        for l in iter {
            self.insert(l);
        }
    }
}

impl From<&BTreeSet<Label>> for LabelSet {
    fn from(set: &BTreeSet<Label>) -> Self {
        Self::from_btree(set)
    }
}

impl IntoIterator for LabelSet {
    type Item = Label;
    type IntoIter = LabelSetIter;
    fn into_iter(self) -> LabelSetIter {
        self.iter()
    }
}

impl BitOr for LabelSet {
    type Output = LabelSet;
    fn bitor(self, rhs: LabelSet) -> LabelSet {
        self.union(rhs)
    }
}

impl BitOrAssign for LabelSet {
    fn bitor_assign(&mut self, rhs: LabelSet) {
        self.bits |= rhs.bits;
    }
}

impl BitAnd for LabelSet {
    type Output = LabelSet;
    fn bitand(self, rhs: LabelSet) -> LabelSet {
        self.intersection(rhs)
    }
}

impl BitAndAssign for LabelSet {
    fn bitand_assign(&mut self, rhs: LabelSet) {
        self.bits &= rhs.bits;
    }
}

impl Sub for LabelSet {
    type Output = LabelSet;
    fn sub(self, rhs: LabelSet) -> LabelSet {
        self.difference(rhs)
    }
}

impl SubAssign for LabelSet {
    fn sub_assign(&mut self, rhs: LabelSet) {
        self.bits &= !rhs.bits;
    }
}

/// Ascending-order iterator over the labels of a [`LabelSet`].
#[derive(Debug, Clone)]
pub struct LabelSetIter {
    bits: u128,
}

impl Iterator for LabelSetIter {
    type Item = Label;

    #[inline]
    fn next(&mut self) -> Option<Label> {
        if self.bits == 0 {
            return None;
        }
        let i = self.bits.trailing_zeros();
        self.bits &= self.bits - 1;
        Some(Label(i as u16))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for LabelSetIter {}

/// Iterator over all subsets of a [`LabelSet`] (see [`LabelSet::subsets`]).
#[derive(Debug, Clone)]
pub struct Subsets {
    mask: u128,
    next: Option<u128>,
}

impl Iterator for Subsets {
    type Item = LabelSet;

    fn next(&mut self) -> Option<LabelSet> {
        let current = self.next?;
        // Standard sub-mask enumeration, descending: next = (current - 1) & mask.
        self.next = if current == 0 {
            None
        } else {
            Some((current - 1) & self.mask)
        };
        Some(LabelSet::from_bits(current))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(indices: &[u16]) -> LabelSet {
        indices.iter().map(|&i| Label(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = LabelSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Label(3)));
        assert!(!s.insert(Label(3)));
        assert!(s.contains(Label(3)));
        assert!(!s.contains(Label(4)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Label(3)));
        assert!(!s.remove(Label(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3]);
        assert_eq!(a.union(b), set(&[0, 1, 2, 3]));
        assert_eq!(a.intersection(b), set(&[2]));
        assert_eq!(a.difference(b), set(&[0, 1]));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
        assert_eq!(a - b, a.difference(b));
        assert!(set(&[1, 2]).is_subset(a));
        assert!(!b.is_subset(a));
        assert!(a.is_superset(set(&[0])));
        assert!(set(&[0]).is_disjoint(set(&[1])));
    }

    #[test]
    fn iteration_is_ascending() {
        let s = set(&[5, 1, 127, 64]);
        let order: Vec<u16> = s.iter().map(|l| l.0).collect();
        assert_eq!(order, vec![1, 5, 64, 127]);
        assert_eq!(s.iter().len(), 4);
        assert_eq!(s.first(), Some(Label(1)));
    }

    #[test]
    fn rank_counts_smaller_members() {
        let s = set(&[2, 5, 9]);
        assert_eq!(s.rank(Label(2)), 0);
        assert_eq!(s.rank(Label(5)), 1);
        assert_eq!(s.rank(Label(9)), 2);
        assert_eq!(s.rank(Label(7)), 2);
    }

    #[test]
    fn btree_roundtrip() {
        let s = set(&[0, 7, 100]);
        let b = s.to_btree();
        assert_eq!(b.len(), 3);
        assert_eq!(LabelSet::from_btree(&b), s);
        assert_eq!(LabelSet::from(&b), s);
    }

    #[test]
    fn first_n_and_capacity_edges() {
        assert_eq!(LabelSet::first_n(0), LabelSet::EMPTY);
        assert_eq!(LabelSet::first_n(3), set(&[0, 1, 2]));
        assert_eq!(LabelSet::first_n(128).len(), 128);
        let mut full = LabelSet::first_n(128);
        assert!(full.contains(Label(127)));
        assert!(full.remove(Label(127)));
        assert_eq!(full.len(), 127);
    }

    #[test]
    #[should_panic(expected = "outside LabelSet capacity")]
    fn oversized_label_panics_on_insert() {
        let mut s = LabelSet::new();
        s.insert(Label(128));
    }

    #[test]
    fn oversized_label_is_never_contained() {
        assert!(!LabelSet::first_n(128).contains(Label(200)));
    }

    #[test]
    fn subsets_enumerate_all() {
        let s = set(&[1, 4, 6]);
        let subs: Vec<LabelSet> = s.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert!(subs.contains(&LabelSet::EMPTY));
        assert!(subs.contains(&s));
        assert!(subs.contains(&set(&[1, 6])));
        for sub in subs {
            assert!(sub.is_subset(s));
        }
    }

    #[test]
    fn retain_filters() {
        let mut s = set(&[0, 1, 2, 3]);
        s.retain(|l| l.0 % 2 == 0);
        assert_eq!(s, set(&[0, 2]));
    }

    #[test]
    fn display_and_debug() {
        let s = set(&[0, 2]);
        assert_eq!(format!("{s}"), "{#0, #2}");
        assert_eq!(format!("{s:?}"), "{#0, #2}");
    }
}
