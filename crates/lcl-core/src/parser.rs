//! Text format for LCL problems.
//!
//! The format mirrors the notation of the paper: one configuration per line, the
//! parent label, a colon, then the δ child labels. Child labels may be separated by
//! whitespace (`1 : 2 3`, multi-character label names allowed) or written compactly
//! when all labels are single characters (`1:23`). Blank lines and `#` comments are
//! ignored. A final `labels: x y z` line may declare labels that appear in no
//! configuration (so Σ round-trips exactly).
//!
//! ```
//! use lcl_core::LclProblem;
//!
//! // The maximal independent set problem of Section 1.3:
//! let mis: LclProblem = "
//!     1 : a a
//!     1 : a b
//!     1 : b b
//!     a : b b
//!     b : b 1
//!     b : 1 1
//! ".parse().unwrap();
//! assert_eq!(mis.delta(), 2);
//! assert_eq!(mis.num_configurations(), 6);
//! ```

use std::fmt;

use crate::configuration::Configuration;
use crate::label::AlphabetBuilder;
use crate::label_set::LabelSet;
use crate::problem::LclProblem;

/// Errors produced while parsing a problem description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The description contains no configurations and no `labels:` line.
    Empty,
    /// A line has no `:` separator.
    MissingColon {
        /// 1-based line number.
        line: usize,
    },
    /// A line has an empty parent or child part.
    MissingLabels {
        /// 1-based line number.
        line: usize,
    },
    /// Two configuration lines declare a different number of children.
    InconsistentDelta {
        /// 1-based line number of the offending configuration.
        line: usize,
        /// Number of children expected from earlier lines.
        expected: usize,
        /// Number of children found on this line.
        found: usize,
    },
    /// The description uses more distinct labels than a [`LabelSet`] can hold.
    TooManyLabels {
        /// Number of distinct labels found.
        found: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "problem description contains no configurations"),
            ParseError::MissingColon { line } => {
                write!(f, "line {line}: expected `parent : children`, found no `:`")
            }
            ParseError::MissingLabels { line } => {
                write!(f, "line {line}: missing parent or child labels")
            }
            ParseError::InconsistentDelta {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: configuration has {found} children but earlier lines have {expected}"
            ),
            ParseError::TooManyLabels { found } => write!(
                f,
                "problem uses {found} distinct labels, the classifier supports at most {}",
                LabelSet::CAPACITY
            ),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a problem from its textual description. See the module documentation for
/// the accepted format.
pub fn parse_problem(input: &str) -> Result<LclProblem, ParseError> {
    let mut alphabet = AlphabetBuilder::new();
    let mut labels = Vec::new();
    let mut configurations = Vec::new();
    let mut delta: Option<usize> = None;

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("labels:") {
            for name in rest.split_whitespace() {
                labels.push(alphabet.intern(name));
            }
            continue;
        }
        let (parent_part, children_part) = match line.split_once(':') {
            Some(parts) => parts,
            None => return Err(ParseError::MissingColon { line: line_no }),
        };
        let parent_name = parent_part.trim();
        let children_part = children_part.trim();
        if parent_name.is_empty() || children_part.is_empty() {
            return Err(ParseError::MissingLabels { line: line_no });
        }
        let child_names: Vec<String> = if children_part.contains(char::is_whitespace) {
            children_part
                .split_whitespace()
                .map(|s| s.to_string())
                .collect()
        } else if children_part.chars().count() > 1 {
            // Compact single-character form, e.g. `1:23`.
            children_part.chars().map(|c| c.to_string()).collect()
        } else {
            vec![children_part.to_string()]
        };
        match delta {
            None => delta = Some(child_names.len()),
            Some(d) if d != child_names.len() => {
                return Err(ParseError::InconsistentDelta {
                    line: line_no,
                    expected: d,
                    found: child_names.len(),
                })
            }
            _ => {}
        }
        let parent = alphabet.intern(parent_name);
        labels.push(parent);
        let children: Vec<_> = child_names
            .iter()
            .map(|n| {
                let l = alphabet.intern(n);
                labels.push(l);
                l
            })
            .collect();
        configurations.push(Configuration::new(parent, children));
    }

    let delta = match delta {
        Some(d) => d,
        None if !labels.is_empty() => 1,
        None => return Err(ParseError::Empty),
    };
    if alphabet.len() > LabelSet::CAPACITY {
        return Err(ParseError::TooManyLabels {
            found: alphabet.len(),
        });
    }
    let labels: LabelSet = labels.into_iter().collect();
    Ok(LclProblem::new(
        delta,
        alphabet.finish(),
        labels,
        configurations,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spaced_form() {
        let p = parse_problem("1 : 2 2\n2 : 1 1\n").unwrap();
        assert_eq!(p.delta(), 2);
        assert_eq!(p.num_labels(), 2);
        assert_eq!(p.num_configurations(), 2);
    }

    #[test]
    fn parses_compact_form() {
        // The 2-coloring problem (2) written as in the paper.
        let p = parse_problem("1:22\n2:11").unwrap();
        assert_eq!(p.delta(), 2);
        assert_eq!(p.num_configurations(), 2);
        let one = p.label_by_name("1").unwrap();
        let two = p.label_by_name("2").unwrap();
        assert!(p.allows_parts(one, &[two, two]));
        assert!(p.allows_parts(two, &[one, one]));
    }

    #[test]
    fn parses_multichar_labels() {
        let p = parse_problem("a1 : b2 b2\nb2 : a1 a1").unwrap();
        assert_eq!(p.num_labels(), 2);
        assert!(p.label_by_name("a1").is_some());
        assert!(p.label_by_name("b2").is_some());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let p = parse_problem("# a comment\n\n1 : 1 1  # trailing comment\n").unwrap();
        assert_eq!(p.num_configurations(), 1);
        assert_eq!(p.num_labels(), 1);
    }

    #[test]
    fn delta_one_configurations() {
        let p = parse_problem("a : b\nb : a\n").unwrap();
        assert_eq!(p.delta(), 1);
        assert_eq!(p.num_configurations(), 2);
    }

    #[test]
    fn duplicate_configurations_collapse() {
        let p = parse_problem("1 : 2 3\n1 : 3 2\n").unwrap();
        assert_eq!(p.num_configurations(), 1);
    }

    #[test]
    fn labels_line_declares_unused_labels() {
        let p = parse_problem("1 : 1 1\nlabels: x y\n").unwrap();
        assert_eq!(p.num_labels(), 3);
        assert!(p.label_by_name("x").is_some());
    }

    #[test]
    fn error_missing_colon() {
        let err = parse_problem("1 2 3").unwrap_err();
        assert_eq!(err, ParseError::MissingColon { line: 1 });
    }

    #[test]
    fn error_inconsistent_delta() {
        let err = parse_problem("1 : 2 2\n1 : 2\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::InconsistentDelta {
                line: 2,
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn error_empty_input() {
        assert_eq!(
            parse_problem("  \n# nothing\n").unwrap_err(),
            ParseError::Empty
        );
        assert!(parse_problem("").is_err());
    }

    #[test]
    fn error_missing_labels() {
        assert_eq!(
            parse_problem(" : 1 1").unwrap_err(),
            ParseError::MissingLabels { line: 1 }
        );
        assert_eq!(
            parse_problem("1 :   ").unwrap_err(),
            ParseError::MissingLabels { line: 1 }
        );
    }

    #[test]
    fn error_display_is_informative() {
        let err = parse_problem("oops").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn error_too_many_labels_via_labels_line() {
        // One over the LabelSet capacity: one configuration label plus 128
        // extras declared through a `labels:` line.
        let mut input = String::from("z : z z\nlabels:");
        for i in 1..=crate::LabelSet::CAPACITY {
            input.push_str(&format!(" x{i}"));
        }
        let err = parse_problem(&input).unwrap_err();
        assert_eq!(
            err,
            ParseError::TooManyLabels {
                found: crate::LabelSet::CAPACITY + 1
            }
        );
        assert!(err.to_string().contains("128"));
    }

    #[test]
    fn error_too_many_labels_via_configurations() {
        // The same overflow reached through (spaced-form) configuration lines
        // alone: 129 distinct labels.
        let mut input = String::new();
        for i in 0..=crate::LabelSet::CAPACITY {
            input.push_str(&format!("y{i} : y{i} y{i}\n"));
        }
        assert!(matches!(
            parse_problem(&input).unwrap_err(),
            ParseError::TooManyLabels { .. }
        ));
        // Exactly at capacity still parses.
        let mut input = String::new();
        for i in 0..crate::LabelSet::CAPACITY {
            input.push_str(&format!("y{i} : y{i} y{i}\n"));
        }
        let p = parse_problem(&input).unwrap();
        assert_eq!(p.num_labels(), crate::LabelSet::CAPACITY);
    }

    #[test]
    fn error_malformed_configurations_do_not_panic() {
        // A grab-bag of malformed inputs: every one must surface a ParseError
        // variant, never a panic.
        for (input, expected_line) in [
            (":", 1),
            (": :", 1),
            ("1 :", 1),
            (" : ", 1),
            ("1 : 2 2\n:\n", 2),
            ("# only\n1 2\n", 2),
        ] {
            let err = parse_problem(input).unwrap_err();
            let line = match err {
                ParseError::MissingColon { line } => line,
                ParseError::MissingLabels { line } => line,
                other => panic!("unexpected variant {other:?} for {input:?}"),
            };
            assert_eq!(line, expected_line, "input {input:?}");
        }
        // Inconsistent delta between spaced and compact forms.
        assert!(matches!(
            parse_problem("1 : 2 2\n2:111\n").unwrap_err(),
            ParseError::InconsistentDelta {
                line: 2,
                expected: 2,
                found: 3
            }
        ));
    }

    #[test]
    fn error_empty_variants() {
        for input in ["", "   ", "\n\n", "# a\n# b\n", "  # c"] {
            assert_eq!(
                parse_problem(input).unwrap_err(),
                ParseError::Empty,
                "input {input:?}"
            );
        }
        // A bare `labels:` line with no configurations is delta-less but not
        // empty: it parses as a delta-1 problem with no configurations.
        let p = parse_problem("labels: a b\n").unwrap();
        assert_eq!(p.delta(), 1);
        assert_eq!(p.num_configurations(), 0);
    }
}
