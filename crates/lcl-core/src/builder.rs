//! Algorithm 3 (`findUnrestrictedCertificate`): certificate builders, and their
//! conversion into explicit uniform certificates (the constructive content of
//! Lemma 6.9).
//!
//! A *certificate builder* records, for ever larger sets of "possible root labels",
//! how each set can be produced from δ previously produced sets through an allowed
//! configuration. Algorithm 3 succeeds when the full label set of the (restricted)
//! problem is producible; Theorem 6.8 shows this happens exactly when a uniform
//! certificate (Definition 6.1) exists, and Lemma 6.9 converts a builder into such a
//! certificate. The conversion implemented here follows the same plan — build the
//! set-labeled shape tree, instantiate one concrete tree per certificate label, make
//! the depth uniform, and (for certificates for O(1) solvability) push a leaf
//! carrying the special label down to the deepest level by grafting a decorated
//! closed walk — and the result is always re-checked against Definition 6.1 by the
//! caller's tests.

use std::collections::{BTreeMap, BTreeSet};

use crate::certificate::{CertificateTree, LogStarCertificate};
use crate::configuration::{assign_children_to_slots, children_match_slots};
use crate::label::Label;
use crate::label_set::LabelSet;
use crate::problem::LclProblem;

/// One element of the set `R` maintained by Algorithm 3: a set of labels that can
/// all be produced as roots of identically-leaf-labeled trees, plus the indicator
/// of whether such trees can contain the special label `a` on a leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootSetEntry {
    /// The producible root labels.
    pub labels: LabelSet,
    /// Whether the corresponding trees can be built with the special label on a
    /// leaf. Always `false` when Algorithm 3 is run without a special label.
    pub has_special_leaf: bool,
}

/// How a derived [`RootSetEntry`] was produced: the δ entries used as child slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derivation {
    /// Indices (into [`CertificateBuilder::entries`]) of the δ child entries.
    pub child_indices: Vec<usize>,
}

/// The output of Algorithm 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateBuilder {
    /// δ of the problem the builder was computed for.
    pub delta: usize,
    /// The special label `a`, if one was requested.
    pub target: Option<Label>,
    /// All entries of `R`, in insertion order (the first `|Σ|` are the singletons).
    pub entries: Vec<RootSetEntry>,
    /// For each entry, how it was derived (`None` for the initial singletons).
    pub derivations: Vec<Option<Derivation>>,
    /// Index of the successful entry `(Σ(Π'), a ≠ ε)`.
    pub success_index: usize,
}

impl CertificateBuilder {
    /// The labels of the successful entry, i.e. the certificate labels Σ_T.
    pub fn certificate_labels(&self) -> LabelSet {
        self.entries[self.success_index].labels
    }
}

/// Algorithm 3: searches for a certificate builder for `problem`, optionally
/// requiring that the special label `target` can appear on a certificate leaf.
///
/// `problem` is usually a restriction of the original problem to a candidate label
/// set Σ' (Algorithms 4 and 5 drive the search over subsets). Returns `None` when no
/// builder exists.
pub fn find_unrestricted_certificate(
    problem: &LclProblem,
    target: Option<Label>,
) -> Option<CertificateBuilder> {
    if problem.configurations().is_empty() || problem.labels().is_empty() {
        return None;
    }
    if let Some(t) = target {
        if !problem.labels().contains(t) {
            return None;
        }
    }
    let delta = problem.delta();
    let mut entries: Vec<RootSetEntry> = Vec::new();
    let mut derivations: Vec<Option<Derivation>> = Vec::new();
    let mut seen: BTreeSet<(LabelSet, bool)> = BTreeSet::new();

    for label in problem.labels() {
        let entry = RootSetEntry {
            labels: LabelSet::singleton(label),
            has_special_leaf: Some(label) == target,
        };
        seen.insert((entry.labels, entry.has_special_leaf));
        entries.push(entry);
        derivations.push(None);
    }

    // Fixed-point loop: repeatedly try every δ-tuple of existing entries.
    loop {
        let mut added = false;
        let snapshot_len = entries.len();
        let mut tuple = vec![0usize; delta];
        'tuples: loop {
            // Evaluate the current tuple.
            let slot_sets: Vec<LabelSet> = tuple.iter().map(|&i| entries[i].labels).collect();
            let mut produced = LabelSet::EMPTY;
            for config in problem.configurations() {
                if produced.contains(config.parent()) {
                    continue;
                }
                if children_match_slots(config.children(), &slot_sets) {
                    produced.insert(config.parent());
                }
            }
            if !produced.is_empty() {
                let flag = tuple.iter().any(|&i| entries[i].has_special_leaf);
                let key = (produced, flag);
                if !seen.contains(&key) {
                    seen.insert(key);
                    entries.push(RootSetEntry {
                        labels: produced,
                        has_special_leaf: flag,
                    });
                    derivations.push(Some(Derivation {
                        child_indices: tuple.clone(),
                    }));
                    added = true;
                }
            }
            // Advance the tuple (odometer over `snapshot_len` symbols).
            let mut pos = 0;
            loop {
                if pos == delta {
                    break 'tuples;
                }
                tuple[pos] += 1;
                if tuple[pos] < snapshot_len {
                    break;
                }
                tuple[pos] = 0;
                pos += 1;
            }
        }
        if !added {
            break;
        }
    }

    let wanted_flag = target.is_some();
    let success_index = entries
        .iter()
        .position(|e| e.labels == problem.labels() && e.has_special_leaf == wanted_flag)?;
    Some(CertificateBuilder {
        delta,
        target,
        entries,
        derivations,
        success_index,
    })
}

/// Errors while materializing a certificate builder into explicit trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateBuildError {
    /// The certificate trees would exceed the configured node budget. The decision
    /// (O(log* n) vs Ω(log n)) is unaffected; only the explicit trees are withheld.
    TooLarge {
        /// Required depth of the certificate trees.
        depth: usize,
        /// Number of nodes each tree would need.
        nodes: usize,
        /// The configured budget.
        budget: usize,
    },
}

impl std::fmt::Display for CertificateBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateBuildError::TooLarge {
                depth,
                nodes,
                budget,
            } => write!(
                f,
                "certificate trees of depth {depth} need {nodes} nodes, over the budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for CertificateBuildError {}

/// Internal shape-tree node used during materialization: a node of the set-labeled
/// tree of Lemma 6.9.
#[derive(Debug, Clone)]
struct ShapeNode {
    entry: usize,
    children: Vec<usize>,
    depth: usize,
    on_trail: bool,
}

/// Materializes a certificate builder (computed for the restriction `problem` of the
/// original problem to the certificate labels) into a uniform certificate.
///
/// `max_nodes` bounds the size of each certificate tree; the depth of the produced
/// certificate is the depth of the builder's derivation tree, extended when a
/// special label must be pushed to the leaf level.
pub fn build_log_star_certificate(
    problem: &LclProblem,
    builder: &CertificateBuilder,
    max_nodes: usize,
) -> Result<LogStarCertificate, CertificateBuildError> {
    let delta = builder.delta;
    let sigma_t = builder.certificate_labels();
    debug_assert_eq!(sigma_t, problem.labels());

    // Case 1: a single certificate label σ. The builder's success implies C(Π') is
    // non-empty, and every configuration of the restriction is (σ : σ … σ).
    if sigma_t.len() == 1 {
        let sigma = sigma_t.first().expect("non-empty");
        let mut labels = vec![sigma];
        labels.extend(std::iter::repeat_n(sigma, delta));
        let tree = CertificateTree::new(delta, 1, labels);
        return Ok(LogStarCertificate {
            labels: sigma_t,
            depth: 1,
            trees: BTreeMap::from([(sigma, tree)]),
        });
    }

    // Step A: build the shape tree from the successful entry.
    let mut shape: Vec<ShapeNode> = Vec::new();
    build_shape(
        builder,
        builder.success_index,
        0,
        builder.target.is_some(),
        &mut shape,
    );

    let d0 = shape
        .iter()
        .filter(|n| n.children.is_empty())
        .map(|n| n.depth)
        .max()
        .expect("shape tree has leaves");
    debug_assert!(d0 >= 1, "multi-label certificates have depth at least 1");

    // Step B: locate the designated special leaf and extract its depth.
    let trail_leaf = shape
        .iter()
        .position(|n| n.on_trail && n.children.is_empty());
    let d_a = trail_leaf.map(|i| shape[i].depth);

    // Step C: final depth. Without a special label the shape depth suffices; with
    // one, the special leaf is pushed down by whole multiples of its own depth
    // (grafting the closed walk) until it is the deepest node.
    let depth = match d_a {
        None => d0,
        Some(da) => {
            debug_assert!(da >= 1);
            if d0 <= da {
                da
            } else {
                da * d0.div_ceil(da)
            }
        }
    };
    let nodes = CertificateTree::node_count(delta, depth);
    if nodes > max_nodes {
        return Err(CertificateBuildError::TooLarge {
            depth,
            nodes,
            budget: max_nodes,
        });
    }

    // Step D: concrete label assignment of the shape tree for each root label, plus
    // the decorated closed walk read off the tree rooted at the special label.
    let mut trees = BTreeMap::new();
    let walk = match (builder.target, trail_leaf) {
        (Some(a), Some(_)) => {
            let assignment = assign_shape(problem, builder, &shape, a);
            Some(extract_walk(problem, builder, &shape, &assignment))
        }
        _ => None,
    };
    for sigma in sigma_t {
        let assignment = assign_shape(problem, builder, &shape, sigma);
        let tree = emit_tree(
            problem,
            &shape,
            &assignment,
            walk.as_ref(),
            trail_leaf,
            delta,
            depth,
        );
        trees.insert(sigma, tree);
    }

    Ok(LogStarCertificate {
        labels: sigma_t,
        depth,
        trees,
    })
}

/// Recursively expands the shape tree below the given entry. Returns the index of
/// the created node.
fn build_shape(
    builder: &CertificateBuilder,
    entry: usize,
    depth: usize,
    on_trail: bool,
    shape: &mut Vec<ShapeNode>,
) -> usize {
    let node_index = shape.len();
    shape.push(ShapeNode {
        entry,
        children: Vec::new(),
        depth,
        on_trail,
    });
    let is_singleton = builder.entries[entry].labels.len() == 1;
    let singleton_is_target = is_singleton
        && builder.target.is_some()
        && builder.entries[entry].labels.first() == builder.target;
    // A node is expanded if it is not a singleton, or if it lies on the trail
    // towards the special label but is a *derived* singleton of a different label
    // (base singletons with the special flag are the special label itself).
    let expand = if !is_singleton {
        true
    } else {
        on_trail && !singleton_is_target && builder.derivations[entry].is_some()
    };
    if !expand {
        return node_index;
    }
    let derivation = builder.derivations[entry]
        .as_ref()
        .expect("non-singleton entries are always derived");
    // Pick which child continues the trail: any child whose entry has the special
    // flag (exists because flags are ORs of the children's flags).
    let trail_child = if on_trail {
        derivation
            .child_indices
            .iter()
            .position(|&c| builder.entries[c].has_special_leaf)
    } else {
        None
    };
    let mut children = Vec::with_capacity(derivation.child_indices.len());
    for (slot, &child_entry) in derivation.child_indices.iter().enumerate() {
        let child_on_trail = trail_child == Some(slot);
        let child_index = build_shape(builder, child_entry, depth + 1, child_on_trail, shape);
        children.push(child_index);
    }
    shape[node_index].children = children;
    node_index
}

/// Assigns a concrete label to every shape node for the tree rooted at `root_label`.
fn assign_shape(
    problem: &LclProblem,
    builder: &CertificateBuilder,
    shape: &[ShapeNode],
    root_label: Label,
) -> Vec<Label> {
    let mut assignment = vec![Label(u16::MAX); shape.len()];
    assignment[0] = root_label;
    // Shape nodes are stored in DFS order, so parents precede children; walk in
    // index order and assign each node's children when the node is visited.
    for (index, node) in shape.iter().enumerate() {
        if node.children.is_empty() {
            // Leaves are singletons; force their label (also covers the root of a
            // single-node shape, which cannot happen for multi-label certificates).
            if index != 0 {
                continue;
            }
        }
        let label = assignment[index];
        if node.children.is_empty() {
            continue;
        }
        let slot_sets: Vec<LabelSet> = node
            .children
            .iter()
            .map(|&c| builder.entries[shape[c].entry].labels)
            .collect();
        let (_, child_assignment) = problem
            .configurations_with_parent(label)
            .find_map(|config| {
                assign_children_to_slots(config.children(), &slot_sets)
                    .map(|assignment| (config, assignment))
            })
            .expect("Algorithm 3 derivations always admit a configuration assignment");
        for (&child_shape, &child_label) in node.children.iter().zip(child_assignment.iter()) {
            assignment[child_shape] = child_label;
        }
    }
    // Singleton leaves that were never assigned through a parent (possible only for
    // the root, handled above) keep their forced singleton value.
    for (index, node) in shape.iter().enumerate() {
        if assignment[index] == Label(u16::MAX) {
            let entry = &builder.entries[node.entry];
            debug_assert_eq!(entry.labels.len(), 1);
            assignment[index] = entry.labels.first().expect("singleton");
        }
    }
    assignment
}

/// One step of the decorated closed walk used to push the special label to the
/// deepest level: the labels of the δ children of the step's node, and which child
/// continues the walk.
#[derive(Debug, Clone)]
struct WalkStep {
    child_labels: Vec<Label>,
    trail_slot: usize,
}

/// Reads the decorated closed walk (from the special label back to itself) off the
/// concrete tree rooted at the special label.
fn extract_walk(
    problem: &LclProblem,
    builder: &CertificateBuilder,
    shape: &[ShapeNode],
    assignment_for_target: &[Label],
) -> Vec<WalkStep> {
    let _ = problem;
    let mut steps = Vec::new();
    let mut current = 0usize; // the root is always on the trail when a target is set
    loop {
        let node = &shape[current];
        if node.children.is_empty() {
            break;
        }
        let trail_slot = node
            .children
            .iter()
            .position(|&c| shape[c].on_trail)
            .expect("trail continues through exactly one child");
        let child_labels: Vec<Label> = node
            .children
            .iter()
            .map(|&c| assignment_for_target[c])
            .collect();
        let next = node.children[trail_slot];
        steps.push(WalkStep {
            child_labels,
            trail_slot,
        });
        current = next;
        let _ = builder;
    }
    steps
}

/// What generates a subtree position while emitting the final complete trees.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// A node of the shape tree.
    Shape(usize),
    /// A node on a grafted copy of the closed walk (`step` ∈ 1..=walk length).
    Walk(usize),
    /// A padding chain below a fixed label.
    Pad(Label),
}

/// Emits the complete δ-ary certificate tree of the given depth for one root label.
fn emit_tree(
    problem: &LclProblem,
    shape: &[ShapeNode],
    assignment: &[Label],
    walk: Option<&Vec<WalkStep>>,
    trail_leaf: Option<usize>,
    delta: usize,
    depth: usize,
) -> CertificateTree {
    let total = CertificateTree::node_count(delta, depth);
    let mut labels: Vec<Label> = vec![Label(u16::MAX); total];
    let sigma_t = problem.labels();

    let padding_config = |label: Label| -> Vec<Label> {
        problem
            .continuation_within(label, sigma_t)
            .expect("every certificate label has a continuation within Σ_T")
            .children()
            .to_vec()
    };

    // Depth-first emission over (position, depth, source).
    let mut stack: Vec<(usize, usize, Source)> = vec![(0, 0, Source::Shape(0))];
    while let Some((pos, d, source)) = stack.pop() {
        let label = match source {
            Source::Shape(node) => assignment[node],
            Source::Walk(step) => {
                let walk = walk.expect("walk sources only occur with a special label");
                if step == walk.len() {
                    // Completed one traversal: back at the special label.
                    assignment[trail_leaf.expect("trail leaf exists")]
                } else {
                    // The label of the walk node at this step is the trail child of
                    // the previous step.
                    walk[step - 1].child_labels[walk[step - 1].trail_slot]
                }
            }
            Source::Pad(l) => l,
        };
        labels[pos] = label;
        if d == depth {
            continue;
        }
        let first_child_pos = delta * pos + 1;
        match source {
            Source::Shape(node) if !shape[node].children.is_empty() => {
                for (slot, &child) in shape[node].children.iter().enumerate() {
                    stack.push((first_child_pos + slot, d + 1, Source::Shape(child)));
                }
            }
            Source::Shape(node) if trail_leaf == Some(node) => {
                // Designated special leaf above the final depth: graft the walk.
                let walk = walk.expect("special leaf implies a walk");
                let step = &walk[0];
                for (slot, &child_label) in step.child_labels.iter().enumerate() {
                    let child_source = if slot == step.trail_slot {
                        Source::Walk(1)
                    } else {
                        Source::Pad(child_label)
                    };
                    stack.push((first_child_pos + slot, d + 1, child_source));
                }
            }
            Source::Shape(_) | Source::Pad(_) => {
                // A leaf of the shape tree (or a padding node) above the final
                // depth: pad with an arbitrary continuation inside Σ_T.
                let children = padding_config(label);
                for (slot, &child_label) in children.iter().enumerate() {
                    stack.push((first_child_pos + slot, d + 1, Source::Pad(child_label)));
                }
            }
            Source::Walk(step_index) => {
                let walk = walk.expect("walk sources only occur with a special label");
                let step = if step_index == walk.len() {
                    &walk[0] // restart the walk below the special label
                } else {
                    &walk[step_index]
                };
                let next_index = if step_index == walk.len() {
                    1
                } else {
                    step_index + 1
                };
                for (slot, &child_label) in step.child_labels.iter().enumerate() {
                    let child_source = if slot == step.trail_slot {
                        Source::Walk(next_index)
                    } else {
                        Source::Pad(child_label)
                    };
                    stack.push((first_child_pos + slot, d + 1, child_source));
                }
            }
        }
    }
    debug_assert!(labels.iter().all(|&l| l != Label(u16::MAX)));
    CertificateTree::new(delta, depth, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn restricted(problem: &LclProblem) -> LclProblem {
        problem.restrict_to(problem.labels())
    }

    fn three_coloring() -> LclProblem {
        "1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n"
            .parse()
            .unwrap()
    }

    fn mis() -> LclProblem {
        "1 : a a\n1 : a b\n1 : b b\na : b b\nb : b 1\nb : 1 1\n"
            .parse()
            .unwrap()
    }

    #[test]
    fn builder_found_for_three_coloring() {
        let p = three_coloring();
        let builder = find_unrestricted_certificate(&p, None).expect("3-coloring is O(log* n)");
        assert_eq!(builder.certificate_labels().len(), 3);
        assert_eq!(builder.entries.len(), builder.derivations.len());
        // The initial singletons come first and have no derivation.
        assert!(builder.derivations[..3].iter().all(|d| d.is_none()));
        assert!(builder.derivations[builder.success_index].is_some());
    }

    #[test]
    fn builder_materializes_into_valid_certificate_for_three_coloring() {
        let p = three_coloring();
        let builder = find_unrestricted_certificate(&p, None).unwrap();
        let cert = build_log_star_certificate(&restricted(&p), &builder, 1_000_000).unwrap();
        cert.verify(&p).unwrap();
        assert!(cert.depth >= 1);
        assert_eq!(cert.trees.len(), 3);
    }

    #[test]
    fn builder_not_found_for_two_coloring() {
        // 2-coloring is Θ(n): the full label set {1, 2} is never producible because
        // any fixed leaf labeling forces the root's parity.
        let p: LclProblem = "1:22\n2:11\n".parse().unwrap();
        assert!(find_unrestricted_certificate(&p, None).is_none());
    }

    #[test]
    fn builder_not_found_for_branch_two_coloring() {
        // Problem (5) has complexity Θ(log n), so no O(log* n) certificate exists.
        let p: LclProblem = "1 : 1 2\n2 : 1 1\n".parse().unwrap();
        assert!(find_unrestricted_certificate(&p, None).is_none());
    }

    #[test]
    fn builder_with_special_label_for_mis() {
        let p = mis();
        let b = p.label_by_name("b").unwrap();
        let builder = find_unrestricted_certificate(&p, Some(b)).expect("MIS is O(1)");
        assert!(builder.entries[builder.success_index].has_special_leaf);
        let cert = build_log_star_certificate(&restricted(&p), &builder, 1_000_000).unwrap();
        cert.verify(&p).unwrap();
        assert!(
            cert.has_leaf_labeled(b),
            "special label must appear on a leaf"
        );
    }

    #[test]
    fn builder_without_special_label_for_mis() {
        let p = mis();
        let builder = find_unrestricted_certificate(&p, None).unwrap();
        let cert = build_log_star_certificate(&restricted(&p), &builder, 1_000_000).unwrap();
        cert.verify(&p).unwrap();
    }

    #[test]
    fn missing_target_label_fails() {
        let p = three_coloring();
        assert!(find_unrestricted_certificate(&p, Some(Label(77))).is_none());
    }

    #[test]
    fn single_label_certificate() {
        let p: LclProblem = "x : x x\n".parse().unwrap();
        let x = p.label_by_name("x").unwrap();
        let builder = find_unrestricted_certificate(&p, Some(x)).unwrap();
        let cert = build_log_star_certificate(&p, &builder, 1_000).unwrap();
        cert.verify(&p).unwrap();
        assert_eq!(cert.depth, 1);
        assert!(cert.has_leaf_labeled(x));
    }

    #[test]
    fn empty_problem_has_no_builder() {
        let p: LclProblem = "labels: a b\n".parse().unwrap();
        assert!(find_unrestricted_certificate(&p, None).is_none());
    }

    #[test]
    fn node_budget_is_respected() {
        let p = three_coloring();
        let builder = find_unrestricted_certificate(&p, None).unwrap();
        let err = build_log_star_certificate(&restricted(&p), &builder, 2).unwrap_err();
        assert!(matches!(err, CertificateBuildError::TooLarge { .. }));
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn delta_three_coloring_builder() {
        // 4-coloring with δ = 3 is O(log* n); the builder and materialization must
        // handle δ > 2.
        let mut b = LclProblem::builder(3);
        let names = ["1", "2", "3", "4"];
        for p in 0..4 {
            for x in 0..4 {
                for y in x..4 {
                    for z in y..4 {
                        if x != p && y != p && z != p {
                            b.configuration(names[p], &[names[x], names[y], names[z]]);
                        }
                    }
                }
            }
        }
        let p = b.build();
        let builder = find_unrestricted_certificate(&p, None).expect("4-coloring is O(log* n)");
        let cert = build_log_star_certificate(&restricted(&p), &builder, 5_000_000).unwrap();
        cert.verify(&p).unwrap();
    }
}
