//! Allowed configurations (Definition 4.1).
//!
//! A configuration `x : y₁ y₂ … y_δ` states that an internal node labeled `x` may
//! have children labeled `y₁, …, y_δ` *in some order*. Configurations are therefore
//! stored in a canonical form with the child labels sorted, so two configurations
//! that differ only in child order compare equal.

use crate::label::{Alphabet, Label};
use crate::label_set::LabelSet;

/// A single allowed configuration: the parent label together with the multiset of
/// child labels (stored sorted).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Configuration {
    parent: Label,
    children: Vec<Label>,
}

impl Configuration {
    /// Creates a configuration, sorting the children into canonical order.
    pub fn new(parent: Label, mut children: Vec<Label>) -> Self {
        children.sort_unstable();
        Configuration { parent, children }
    }

    /// The parent label (`x` in `x : y₁ … y_δ`).
    #[inline]
    pub fn parent(&self) -> Label {
        self.parent
    }

    /// The child labels in canonical (sorted) order.
    #[inline]
    pub fn children(&self) -> &[Label] {
        &self.children
    }

    /// The number of children, i.e. the δ this configuration is meant for.
    #[inline]
    pub fn delta(&self) -> usize {
        self.children.len()
    }

    /// Iterates over all labels used by the configuration (parent first).
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        std::iter::once(self.parent).chain(self.children.iter().copied())
    }

    /// Returns `true` if every label of the configuration is contained in `set`.
    pub fn uses_only<F>(&self, set: F) -> bool
    where
        F: FnMut(Label) -> bool,
    {
        self.labels().all(set)
    }

    /// Returns `true` if the parent label also occurs among the children — the
    /// shape `(a : b₁, …, a, …, b_δ)` required of the *special configuration* in a
    /// certificate for O(1) solvability (Definition 7.1).
    pub fn parent_repeats_in_children(&self) -> bool {
        self.children.contains(&self.parent)
    }

    /// Returns `true` if this configuration matches the unordered multiset
    /// `{observed_children}`. Both sides are compared as multisets.
    pub fn matches_children(&self, observed: &[Label]) -> bool {
        if observed.len() != self.children.len() {
            return false;
        }
        let mut sorted = observed.to_vec();
        sorted.sort_unstable();
        sorted == self.children
    }

    /// Formats the configuration with label names, e.g. `a : b b 1`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let children: Vec<&str> = self.children.iter().map(|&c| alphabet.name(c)).collect();
        format!("{} : {}", alphabet.name(self.parent), children.join(" "))
    }
}

/// `true` if `sorted` (non-decreasing, the canonical child order of a
/// [`Configuration`]) and `observed` (any order) are equal as multisets.
/// Allocation-free: equal lengths plus matching multiplicity of every group of
/// `sorted` already implies multiset equality, so a run-length walk with an
/// O(δ) count per group suffices.
pub fn multiset_eq_sorted(sorted: &[Label], observed: &[Label]) -> bool {
    if sorted.len() != observed.len() {
        return false;
    }
    let mut i = 0;
    while i < sorted.len() {
        let value = sorted[i];
        let mut run = 0usize;
        while i < sorted.len() && sorted[i] == value {
            run += 1;
            i += 1;
        }
        if observed.iter().filter(|&&l| l == value).count() != run {
            return false;
        }
    }
    true
}

/// Checks whether the multiset of `children` of a configuration can be assigned to
/// the `slots` (one child per slot) such that every child label is a member of the
/// set placed in its slot. This is the matching step of Algorithm 3: a configuration
/// `(σ : c₁, …, c_δ)` is compatible with a δ-tuple of root-label sets
/// `(r₁, …, r_δ)` iff such an assignment exists.
///
/// The used-slot state is a `u128` bitmask (δ ≤ 128 always holds for problems over
/// a 128-label alphabet's configuration tables; a slice-based fallback covers the
/// theoretical δ > 128 case), so the backtracking allocates nothing — this runs in
/// the innermost loop of the classifier's subset searches.
pub fn children_match_slots(children: &[Label], slots: &[LabelSet]) -> bool {
    debug_assert_eq!(children.len(), slots.len());
    if slots.len() <= 128 {
        return backtrack_mask(children, slots, 0, 0);
    }
    let mut used = vec![false; children.len()];
    backtrack_slice(children, slots, &mut used, 0)
}

fn backtrack_mask(children: &[Label], slots: &[LabelSet], used: u128, child_idx: usize) -> bool {
    if child_idx == children.len() {
        return true;
    }
    for (slot, set) in slots.iter().enumerate() {
        if used & (1u128 << slot) != 0 || !set.contains(children[child_idx]) {
            continue;
        }
        if backtrack_mask(children, slots, used | (1u128 << slot), child_idx + 1) {
            return true;
        }
    }
    false
}

fn backtrack_slice(
    children: &[Label],
    slots: &[LabelSet],
    used: &mut [bool],
    child_idx: usize,
) -> bool {
    if child_idx == children.len() {
        return true;
    }
    for slot in 0..slots.len() {
        if used[slot] || !slots[slot].contains(children[child_idx]) {
            continue;
        }
        used[slot] = true;
        if backtrack_slice(children, slots, used, child_idx + 1) {
            return true;
        }
        used[slot] = false;
    }
    false
}

/// Finds one concrete assignment of `children` to `slots` (see
/// [`children_match_slots`]); returns for each slot the child label assigned to it.
pub fn assign_children_to_slots(children: &[Label], slots: &[LabelSet]) -> Option<Vec<Label>> {
    debug_assert_eq!(children.len(), slots.len());
    let n = children.len();
    let mut assignment: Vec<Option<Label>> = vec![None; n];
    fn backtrack(
        children: &[Label],
        slots: &[LabelSet],
        assignment: &mut [Option<Label>],
        child_idx: usize,
    ) -> bool {
        if child_idx == children.len() {
            return true;
        }
        for slot in 0..slots.len() {
            if assignment[slot].is_some() || !slots[slot].contains(children[child_idx]) {
                continue;
            }
            assignment[slot] = Some(children[child_idx]);
            if backtrack(children, slots, assignment, child_idx + 1) {
                return true;
            }
            assignment[slot] = None;
        }
        false
    }
    if backtrack(children, slots, &mut assignment, 0) {
        Some(assignment.into_iter().map(|a| a.unwrap()).collect())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(labels: &[u16]) -> LabelSet {
        labels.iter().map(|&l| Label(l)).collect()
    }

    #[test]
    fn children_are_canonicalized() {
        let a = Configuration::new(Label(0), vec![Label(2), Label(1)]);
        let b = Configuration::new(Label(0), vec![Label(1), Label(2)]);
        assert_eq!(a, b);
        assert_eq!(a.children(), &[Label(1), Label(2)]);
        assert_eq!(a.delta(), 2);
    }

    #[test]
    fn parent_repeats_detection() {
        let with = Configuration::new(Label(1), vec![Label(1), Label(2)]);
        let without = Configuration::new(Label(1), vec![Label(0), Label(2)]);
        assert!(with.parent_repeats_in_children());
        assert!(!without.parent_repeats_in_children());
    }

    #[test]
    fn matches_children_is_order_insensitive() {
        let c = Configuration::new(Label(0), vec![Label(1), Label(2)]);
        assert!(c.matches_children(&[Label(2), Label(1)]));
        assert!(c.matches_children(&[Label(1), Label(2)]));
        assert!(!c.matches_children(&[Label(1), Label(1)]));
        assert!(!c.matches_children(&[Label(1)]));
    }

    #[test]
    fn display_uses_names() {
        let alpha = Alphabet::new(["1", "a", "b"]);
        let c = Configuration::new(Label(1), vec![Label(2), Label(0)]);
        assert_eq!(c.display(&alpha), "a : 1 b");
    }

    #[test]
    fn multiset_eq_sorted_matches_sorting() {
        let cases: &[(&[u16], &[u16], bool)] = &[
            (&[1, 1, 2], &[2, 1, 1], true),
            (&[1, 1, 2], &[1, 2, 2], false),
            (&[1, 2], &[1, 2, 2], false),
            (&[], &[], true),
            (&[3], &[3], true),
            (&[3], &[4], false),
            (&[0, 0, 0], &[0, 0, 0], true),
        ];
        for &(sorted, observed, expected) in cases {
            let s: Vec<Label> = sorted.iter().map(|&i| Label(i)).collect();
            let o: Vec<Label> = observed.iter().map(|&i| Label(i)).collect();
            assert_eq!(
                multiset_eq_sorted(&s, &o),
                expected,
                "{sorted:?} vs {observed:?}"
            );
        }
    }

    #[test]
    fn matching_simple_cases() {
        let r1 = set(&[1, 2]);
        let r2 = set(&[3]);
        let slots = vec![r1, r2];
        assert!(children_match_slots(&[Label(1), Label(3)], &slots));
        assert!(children_match_slots(&[Label(3), Label(2)], &slots));
        assert!(!children_match_slots(&[Label(1), Label(2)], &slots));
        assert!(!children_match_slots(&[Label(3), Label(3)], &slots));
    }

    #[test]
    fn matching_with_duplicates() {
        let r1 = set(&[5]);
        let r2 = set(&[5, 6]);
        let slots = vec![r1, r2];
        assert!(children_match_slots(&[Label(5), Label(5)], &slots));
        assert!(children_match_slots(&[Label(5), Label(6)], &slots));
        assert!(!children_match_slots(&[Label(6), Label(6)], &slots));
    }

    #[test]
    fn assignment_returns_per_slot_labels() {
        let r1 = set(&[1]);
        let r2 = set(&[2]);
        let slots = vec![r1, r2];
        let assignment = assign_children_to_slots(&[Label(2), Label(1)], &slots).unwrap();
        assert_eq!(assignment, vec![Label(1), Label(2)]);
        assert!(assign_children_to_slots(&[Label(1), Label(1)], &slots).is_none());
    }

    #[test]
    fn matching_three_slots() {
        let r1 = set(&[1, 2]);
        let r2 = set(&[2]);
        let r3 = set(&[1, 3]);
        let slots = vec![r1, r2, r3];
        assert!(children_match_slots(
            &[Label(1), Label(2), Label(3)],
            &slots
        ));
        assert!(children_match_slots(
            &[Label(2), Label(2), Label(1)],
            &slots
        ));
        assert!(!children_match_slots(
            &[Label(1), Label(1), Label(3)],
            &slots
        ));
    }
}
