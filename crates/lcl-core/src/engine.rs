//! The batch classification engine: canonical forms, memoization, and parallel
//! sweeps over whole problem families.
//!
//! The PODC 2021 classifier decides one problem at a time; the follow-up
//! "Efficient Classification of Local Problems in Regular Trees" (Balliu et al.,
//! 2022) shows what becomes possible once the decision procedure is fast enough
//! to sweep entire problem families. This module provides that workload:
//!
//! * [`canonical_form`] — a label-permutation-invariant key for a problem. Two
//!   problems that differ only by renaming labels share a key, and the
//!   complexity class is invariant under renaming, so the key is a sound
//!   memoization handle.
//! * [`ClassificationEngine`] — a thread-safe classifier front end with a
//!   canonical-form memo cache, a sequential batch API, and a parallel batch
//!   API ([`ClassificationEngine::classify_batch`]) that fans work out over
//!   `std::thread::scope` workers (the workspace builds without external
//!   crates, so no rayon; the work-stealing loop below is a few lines).
//!
//! Batch results are always identical to running [`crate::classify`] on each
//! problem individually — the engine tests assert this over the whole catalog
//! and over large random families.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::bitslice::{
    classify_block_sliced, BitSliceScratch, LaneVerdict, LaneWidth, LaneWord, SlicedUniverse,
};
use crate::classifier::{
    classify_complexity_with, classify_with_config, ClassifierConfig, Complexity,
};
use crate::problem::LclProblem;
use crate::scratch::ClassifyScratch;
use crate::snapshot::{self, MaskRange, SnapshotError, SweepCursor, SweepSnapshot};

/// A label-permutation-invariant fingerprint of a problem.
///
/// The encoding is `[delta, k, c₀ …]` where `k` is the number of labels used in
/// configurations and the configurations are relabeled through the permutation
/// of used labels that minimizes the sorted encoding. Labels that appear in no
/// configuration are irrelevant to the complexity class (they are never
/// self-sustaining and never enter a certificate), so they are excluded; two
/// problems with the same configurations but different orphan labels share a
/// key on purpose.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalKey(Vec<u16>);

impl CanonicalKey {
    /// The raw 16-bit words of the key — the flat `[delta, k, rows…]`
    /// encoding. Opaque outside serialization: the snapshot layer writes
    /// these verbatim and rebuilds the key with [`Self::from_words`].
    pub fn as_words(&self) -> &[u16] {
        &self.0
    }

    /// Rebuilds a key from [`Self::as_words`] output. The words are trusted —
    /// keys only meet other keys, so a mangled word vector can only fail to
    /// match, never misclassify.
    pub fn from_words(words: Vec<u16>) -> Self {
        CanonicalKey(words)
    }
}

/// Number of used labels up to which the canonicalizer tries every permutation.
/// Beyond this, it falls back to the identity relabeling (still dense), which
/// dedups exact duplicates but not renamings. `8! = 40320` permutations of an
/// 18-configuration problem is well under a millisecond; `9!` starts to rival
/// the classification itself on easy problems.
pub const MAX_CANONICAL_LABELS: usize = 8;

/// Computes the [`CanonicalKey`] of a problem. See the type's documentation for
/// what the key identifies.
///
/// Each configuration is packed into one `u128` (δ + 1 slots of 16 bits, which
/// covers δ ≤ 7; larger δ skips the permutation search), so trying a
/// permutation is a relabel-and-sort over a flat `Vec<u128>` with no per-row
/// allocation.
pub fn canonical_form(problem: &LclProblem) -> CanonicalKey {
    let used = problem.used_labels();
    let k = used.len();
    let delta = problem.delta();
    let slots = delta + 1;

    // Rows in dense indices (used label -> 0..k by ascending index), once.
    let rows_dense: Vec<Vec<u16>> = problem
        .configurations()
        .iter()
        .map(|c| {
            let mut row = Vec::with_capacity(slots);
            row.push(used.rank(c.parent()) as u16);
            row.extend(c.children().iter().map(|&l| used.rank(l) as u16));
            row
        })
        .collect();

    // Encodes all rows under one relabeling into `out` (packed, sorted).
    let encode_packed = |perm: &[u16], out: &mut Vec<u128>| {
        out.clear();
        let mut children = [0u16; 8];
        for row in &rows_dense {
            for (slot, &d) in row[1..].iter().enumerate() {
                children[slot] = perm[d as usize];
            }
            children[..delta].sort_unstable();
            let mut packed = perm[row[0] as usize] as u128;
            for &c in &children[..delta] {
                packed = (packed << 16) | c as u128;
            }
            out.push(packed);
        }
        out.sort_unstable();
    };

    let identity: Vec<u16> = (0..k as u16).collect();
    let mut best: Vec<u128> = Vec::with_capacity(rows_dense.len());
    if slots <= 8 && k <= MAX_CANONICAL_LABELS && k > 1 {
        encode_packed(&identity, &mut best);
        let mut candidate: Vec<u128> = Vec::with_capacity(rows_dense.len());
        let mut perm = identity.clone();
        permute(&mut perm, 0, &mut |perm| {
            encode_packed(perm, &mut candidate);
            if candidate < best {
                std::mem::swap(&mut best, &mut candidate);
            }
        });
    } else if slots <= 8 {
        encode_packed(&identity, &mut best);
    } else {
        // δ ≥ 8: rows don't fit one u128; use the lossless flat encoding under
        // the identity relabeling (exact dedup only, no renaming dedup).
        let mut rows: Vec<Vec<u16>> = rows_dense
            .iter()
            .map(|row| {
                let mut r = row.clone();
                r[1..].sort_unstable();
                r
            })
            .collect();
        rows.sort_unstable();
        let mut flat: Vec<u16> = Vec::with_capacity(2 + rows.len() * slots);
        flat.push(delta as u16);
        flat.push(k as u16);
        for row in &rows {
            flat.extend_from_slice(row);
        }
        return CanonicalKey(flat);
    }

    canonical_key_from_packed_rows(delta, k, &best)
}

/// Builds a [`CanonicalKey`] directly from the winning packed-row encoding: the
/// sorted `u128` rows of the minimizing relabeling, each packing `delta + 1`
/// 16-bit slots (parent highest, children ascending) as [`canonical_form`]'s
/// permutation search produces them. This is the key's *definition* unpacked —
/// callers that find the minimizing relabeling by other means (the mask-direct
/// fast path in `lcl-problems`' `CanonicalFamily`) get a key identical to
/// `canonical_form`'s for the same problem.
pub fn canonical_key_from_packed_rows(
    delta: usize,
    num_used: usize,
    sorted_packed: &[u128],
) -> CanonicalKey {
    let slots = delta + 1;
    let mut flat: Vec<u16> = Vec::with_capacity(2 + sorted_packed.len() * slots);
    flat.push(delta as u16);
    flat.push(num_used as u16);
    for &packed in sorted_packed {
        for slot in (0..slots).rev() {
            flat.push((packed >> (16 * slot)) as u16);
        }
    }
    CanonicalKey(flat)
}

/// Calls `visit` with every permutation of `items[at..]` (Heap-style recursion).
fn permute(items: &mut [u16], at: usize, visit: &mut impl FnMut(&[u16])) {
    if at == items.len() {
        visit(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, visit);
        items.swap(at, i);
    }
}

/// Number of independent shards of the engine's canonical-form memo. A power
/// of two (the shard index is a hash masked with `MEMO_SHARDS − 1`), sized so
/// that end-of-sweep merges from `available_parallelism` workers and the
/// daemon's concurrent `/classify` traffic rarely collide on one lock.
const MEMO_SHARDS: usize = 16;

/// The engine's memo cache, split into [`MEMO_SHARDS`] independently locked
/// maps keyed by a hash of the canonical key. Point lookups and inserts take
/// exactly one shard lock; bulk merges bucket their entries first and take
/// each destination lock once — so concurrent workers draining private memos
/// stall each other only on the (rare) shard they both touch, not on one
/// global mutex.
#[derive(Debug)]
struct ShardedMemo {
    shards: Vec<Mutex<HashMap<CanonicalKey, Complexity>>>,
}

impl ShardedMemo {
    fn new() -> Self {
        ShardedMemo {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// FNV-1a over the key's raw words — cheap, stable across processes, and
    /// independent of `HashMap`'s seeded hasher, so shard assignment is
    /// deterministic.
    fn shard_of(key: &CanonicalKey) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in key.as_words() {
            h ^= u64::from(w);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) & (MEMO_SHARDS - 1)
    }

    fn get(&self, key: &CanonicalKey) -> Option<Complexity> {
        self.shards[Self::shard_of(key)]
            .lock()
            .expect("engine cache poisoned")
            .get(key)
            .copied()
    }

    fn insert(&self, key: CanonicalKey, value: Complexity) -> Option<Complexity> {
        self.shards[Self::shard_of(&key)]
            .lock()
            .expect("engine cache poisoned")
            .insert(key, value)
    }

    /// Bulk merge: buckets `entries` by shard, then takes each destination
    /// lock exactly once.
    fn extend<E>(&self, entries: E)
    where
        E: IntoIterator<Item = (CanonicalKey, Complexity)>,
    {
        let mut buckets: Vec<Vec<(CanonicalKey, Complexity)>> =
            (0..MEMO_SHARDS).map(|_| Vec::new()).collect();
        for (key, value) in entries {
            buckets[Self::shard_of(&key)].push((key, value));
        }
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if !bucket.is_empty() {
                shard.lock().expect("engine cache poisoned").extend(bucket);
            }
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("engine cache poisoned").len())
            .sum()
    }

    /// Every entry, sorted by key — deterministic regardless of shard count
    /// and hash-map iteration order.
    fn export_sorted(&self) -> Vec<(CanonicalKey, Complexity)> {
        let mut entries: Vec<(CanonicalKey, Complexity)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("engine cache poisoned");
            entries.extend(shard.iter().map(|(k, &c)| (k.clone(), c)));
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        entries
    }
}

/// Statistics of an engine's lifetime, taken with [`ClassificationEngine::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Number of problems answered from the canonical-form cache.
    pub cache_hits: usize,
    /// Number of problems that ran the full decision procedure.
    pub cache_misses: usize,
}

impl EngineStats {
    /// Total problems classified through the engine.
    pub fn total(&self) -> usize {
        self.cache_hits + self.cache_misses
    }
}

/// A thread-safe, memoizing front end to the classifier, built for sweeping
/// problem families.
///
/// ```
/// use lcl_core::engine::ClassificationEngine;
/// use lcl_core::{classify, Complexity, LclProblem};
///
/// let engine = ClassificationEngine::new();
/// let mis: LclProblem = "1:aa\n1:ab\n1:bb\na:bb\nb:b1\nb:11\n".parse().unwrap();
/// let renamed: LclProblem = "2:xx\n2:xy\n2:yy\nx:yy\ny:y2\ny:22\n".parse().unwrap();
/// assert_eq!(engine.classify(&mis), Complexity::Constant);
/// // The renamed copy is answered from the cache via its canonical form.
/// assert_eq!(engine.classify(&renamed), Complexity::Constant);
/// assert_eq!(engine.stats().cache_hits, 1);
/// ```
#[derive(Debug)]
pub struct ClassificationEngine {
    config: ClassifierConfig,
    canonicalize: bool,
    cache: ShardedMemo,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Default for ClassificationEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassificationEngine {
    /// An engine with the default [`ClassifierConfig`].
    pub fn new() -> Self {
        Self::with_config(ClassifierConfig::default())
    }

    /// An engine with an explicit configuration; the configuration is threaded
    /// into every report the engine produces.
    pub fn with_config(config: ClassifierConfig) -> Self {
        ClassificationEngine {
            config,
            canonicalize: true,
            cache: ShardedMemo::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Disables (or re-enables) canonical-form memoization. With memoization off
    /// every call runs the full decision procedure; useful for benchmarking the
    /// raw classifier.
    pub fn set_memoization(&mut self, on: bool) {
        self.canonicalize = on;
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ClassifierConfig {
        &self.config
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Classifies one problem, answering from the canonical-form cache when a
    /// renaming-equivalent problem has been classified before. Cache misses run
    /// the zero-allocation decision path on the calling thread's scratch.
    pub fn classify(&self, problem: &LclProblem) -> Complexity {
        crate::scratch::with_thread_scratch(|scratch| self.classify_with(problem, scratch))
    }

    /// [`Self::classify`] with an explicit [`ClassifyScratch`]: what the batch
    /// workers and the sweep driver use (one scratch per worker thread, so
    /// cache misses never contend on anything but the memo map).
    pub fn classify_with(&self, problem: &LclProblem, scratch: &mut ClassifyScratch) -> Complexity {
        if !self.canonicalize {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return classify_complexity_with(problem, scratch);
        }
        let key = canonical_form(problem);
        if let Some(hit) = self.cache.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        let complexity = classify_complexity_with(problem, scratch);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key, complexity);
        complexity
    }

    /// Classifies one problem and returns the full report (certificates, pruning
    /// trace). Full reports are label-specific, so they are never cached; the
    /// complexity verdict still populates the cache for later [`Self::classify`]
    /// calls (and a verdict already in the cache counts as a hit).
    pub fn classify_full(&self, problem: &LclProblem) -> crate::ClassificationReport {
        let report = classify_with_config(problem, &self.config);
        if self.canonicalize {
            let key = canonical_form(problem);
            if self.cache.insert(key, report.complexity).is_some() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        report
    }

    /// Classifies every problem on the calling thread, in order.
    pub fn classify_batch_sequential(&self, problems: &[LclProblem]) -> Vec<Complexity> {
        problems.iter().map(|p| self.classify(p)).collect()
    }

    /// Classifies every problem using all available cores, sharing the memo
    /// cache across workers. The result at index `i` is the classification of
    /// `problems[i]`, identical to what [`crate::classify`] returns for it.
    /// Each worker owns a private [`ClassifyScratch`], so cache misses allocate
    /// nothing once the buffers are warm.
    pub fn classify_batch(&self, problems: &[LclProblem]) -> Vec<Complexity> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(problems.len().max(1));
        if workers <= 1 || problems.len() <= 1 {
            return self.classify_batch_sequential(problems);
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Complexity>>> =
            problems.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = ClassifyScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= problems.len() {
                            break;
                        }
                        let complexity = self.classify_with(&problems[i], &mut scratch);
                        *slots[i].lock().expect("result slot poisoned") = Some(complexity);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index was processed")
            })
            .collect()
    }

    /// Sharded sweep over a canonical-first problem stream: the backbone of the
    /// `rtlcl sweep` workload ("classify the entire (δ, Σ) universe").
    ///
    /// `shard(s)` must yield the `s`-th shard of the canonical stream — exactly
    /// one representative per label-permutation orbit, each with its orbit
    /// size; `lcl-problems`' `CanonicalFamily::shard` produces such streams by
    /// partitioning the configuration-mask space. Shards are pulled by up to
    /// `available_parallelism` workers over `std::thread::scope`.
    ///
    /// Canonical representatives are pairwise *non*-equivalent, so the shared
    /// memo could never hit during the sweep; workers therefore classify with a
    /// private scratch and record verdicts into a **private** memo map (no lock
    /// contention on the hot path), merged into the engine cache once per
    /// worker at the end. After a sweep the cache is warm for the whole family:
    /// any later [`Self::classify`] of any member of the family is a hit.
    pub fn sweep_sharded<I, F>(&self, shards: usize, shard: F) -> SweepOutcome
    where
        I: Iterator<Item = OrbitProblem>,
        F: Fn(usize) -> I + Sync,
    {
        let shards = shards.max(1);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(shards);
        let next = AtomicUsize::new(0);
        let merged: Mutex<SweepOutcome> = Mutex::new(SweepOutcome::default());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = ClassifyScratch::new();
                    let mut local_memo: HashMap<CanonicalKey, Complexity> = HashMap::new();
                    let mut outcome = SweepOutcome::default();
                    let mut classified = 0usize;
                    loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        if s >= shards {
                            break;
                        }
                        for item in shard(s) {
                            let complexity = classify_complexity_with(&item.problem, &mut scratch);
                            classified += 1;
                            if self.canonicalize {
                                local_memo.insert(canonical_form(&item.problem), complexity);
                            }
                            outcome.orbits.add(complexity, 1);
                            outcome.problems.add(complexity, item.orbit_size);
                        }
                    }
                    self.misses.fetch_add(classified, Ordering::Relaxed);
                    if !local_memo.is_empty() {
                        self.cache.extend(local_memo);
                    }
                    merged
                        .lock()
                        .expect("sweep outcome poisoned")
                        .merge(&outcome);
                });
            }
        });
        merged.into_inner().expect("sweep outcome poisoned")
    }

    /// Bit-sliced variant of [`Self::sweep_sharded`]: the canonical stream
    /// arrives as [`MaskBlock`]s of ≤ `width.lanes()` configuration masks over
    /// one shared [`SlicedUniverse`], and every block runs
    /// [`crate::bitslice::classify_block_sliced`] — all lanes in lockstep —
    /// instead of that many scalar decisions. `width` picks the lane word at
    /// runtime ([`crate::bitslice::calibrate_lane_width`] probes for the
    /// fastest); the caller's block stream must pack at most `width.lanes()`
    /// masks per block.
    ///
    /// `blocks(s)` yields the `s`-th shard's blocks (`CanonicalFamily::blocks`
    /// produces them). `problem_of(mask)` materializes one lane's problem —
    /// only called for the rare scalar-fallback lanes
    /// ([`LaneVerdict::NeedsPolyExponent`], the exact polynomial-exponent
    /// descent). `key_of(mask)` is the lane's canonical memo key, identical to
    /// [`canonical_form`] of the materialized problem (`CanonicalFamily`
    /// computes it mask-directly); it is only called when memoization is on.
    /// Memo merge and worker structure match the scalar sweep: private scratch
    /// and memo per worker, one merge at the end, cache warm for the whole
    /// family afterwards.
    pub fn sweep_sharded_bitsliced<I, F, P, K>(
        &self,
        universe: &SlicedUniverse,
        width: LaneWidth,
        shards: usize,
        blocks: F,
        problem_of: P,
        key_of: K,
    ) -> SweepOutcome
    where
        I: Iterator<Item = MaskBlock>,
        F: Fn(usize) -> I + Sync,
        P: Fn(u64) -> LclProblem + Sync,
        K: Fn(u64) -> CanonicalKey + Sync,
    {
        match width {
            LaneWidth::W64 => self.sweep_sharded_bitsliced_w::<u64, _, _, _, _>(
                universe, shards, blocks, problem_of, key_of,
            ),
            LaneWidth::W128 => self.sweep_sharded_bitsliced_w::<[u64; 2], _, _, _, _>(
                universe, shards, blocks, problem_of, key_of,
            ),
            LaneWidth::W256 => self.sweep_sharded_bitsliced_w::<[u64; 4], _, _, _, _>(
                universe, shards, blocks, problem_of, key_of,
            ),
            LaneWidth::W512 => self.sweep_sharded_bitsliced_w::<[u64; 8], _, _, _, _>(
                universe, shards, blocks, problem_of, key_of,
            ),
        }
    }

    /// [`Self::sweep_sharded_bitsliced`] monomorphized over the lane word.
    fn sweep_sharded_bitsliced_w<W: LaneWord, I, F, P, K>(
        &self,
        universe: &SlicedUniverse,
        shards: usize,
        blocks: F,
        problem_of: P,
        key_of: K,
    ) -> SweepOutcome
    where
        I: Iterator<Item = MaskBlock>,
        F: Fn(usize) -> I + Sync,
        P: Fn(u64) -> LclProblem + Sync,
        K: Fn(u64) -> CanonicalKey + Sync,
    {
        let shards = shards.max(1);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(shards);
        let next = AtomicUsize::new(0);
        let merged: Mutex<SweepOutcome> = Mutex::new(SweepOutcome::default());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = ClassifyScratch::new();
                    let mut sliced = BitSliceScratch::<W>::new();
                    let mut verdicts = Vec::new();
                    let mut local_memo: HashMap<CanonicalKey, Complexity> = HashMap::new();
                    let mut outcome = SweepOutcome::default();
                    let mut classified = 0usize;
                    loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        if s >= shards {
                            break;
                        }
                        for block in blocks(s) {
                            debug_assert_eq!(block.masks.len(), block.orbit_sizes.len());
                            let stats = classify_block_sliced(
                                universe,
                                &block.masks,
                                &mut sliced,
                                &mut verdicts,
                            );
                            outcome.lanes.blocks += 1;
                            outcome.lanes.fixpoint_rounds += stats.fixpoint_rounds;
                            outcome.lanes.live_lane_rounds += stats.live_lane_rounds;
                            classified += block.masks.len();
                            for (j, &mask) in block.masks.iter().enumerate() {
                                let complexity = match verdicts[j] {
                                    LaneVerdict::Decided(c) => c,
                                    LaneVerdict::NeedsPolyExponent => {
                                        outcome.lanes.scalar_fallbacks += 1;
                                        let problem = problem_of(mask);
                                        let sustaining =
                                            crate::solvability::solvable_labels(&problem);
                                        Complexity::Polynomial {
                                            exponent: crate::scratch::poly_exponent_masked(
                                                &problem,
                                                sustaining,
                                                &mut scratch,
                                            ),
                                        }
                                    }
                                };
                                if self.canonicalize {
                                    local_memo.insert(key_of(mask), complexity);
                                }
                                outcome.orbits.add(complexity, 1);
                                outcome.problems.add(complexity, block.orbit_sizes[j]);
                            }
                        }
                    }
                    self.misses.fetch_add(classified, Ordering::Relaxed);
                    if !local_memo.is_empty() {
                        self.cache.extend(local_memo);
                    }
                    merged
                        .lock()
                        .expect("sweep outcome poisoned")
                        .merge(&outcome);
                });
            }
        });
        merged.into_inner().expect("sweep outcome poisoned")
    }

    /// Snapshot view of the canonical-form memo: every cached
    /// `key → Complexity`, sorted by key so exports are deterministic
    /// regardless of hash-map iteration order.
    pub fn export_memo(&self) -> Vec<(CanonicalKey, Complexity)> {
        self.cache.export_sorted()
    }

    /// Merges memo entries (e.g. a loaded [`SweepSnapshot`]'s memo) into the
    /// cache: the warm-boot path. Every later classification of a covered
    /// problem — under any label renaming — is answered as a cache hit.
    pub fn import_memo<E>(&self, entries: E)
    where
        E: IntoIterator<Item = (CanonicalKey, Complexity)>,
    {
        self.cache.extend(entries);
    }

    /// Number of canonical forms currently memoized.
    pub fn memo_len(&self) -> usize {
        self.cache.len()
    }

    /// The engine's memo as a memo-only [`SweepSnapshot`]: an empty, complete
    /// cursor (no sweep campaign attached) carrying every cached verdict.
    /// This is the daemon's persistence format — the same file format, digest,
    /// and atomic-write path as sweep checkpoints, readable by
    /// `rtlcl snapshot info` and [`Self::warm_boot`].
    pub fn memo_snapshot(&self) -> SweepSnapshot {
        SweepSnapshot {
            cursor: SweepCursor {
                delta: 0,
                num_labels: 0,
                engine: crate::snapshot::EngineKind::Scalar,
                ranges: Vec::new(),
            },
            outcome: SweepOutcome::default(),
            memo: self.export_memo(),
        }
    }

    /// Atomically writes [`Self::memo_snapshot`] to `path` (temp file +
    /// rename, like every snapshot write). Returns the number of memo entries
    /// flushed.
    pub fn save_memo(&self, path: &Path) -> Result<usize, SnapshotError> {
        let snapshot = self.memo_snapshot();
        snapshot.save(path)?;
        Ok(snapshot.memo.len())
    }

    /// Loads a snapshot from `path` and merges its memo into the cache — the
    /// restart path of a long-lived engine. Any snapshot works (a daemon memo
    /// flush or a sweep checkpoint; only the memo is taken). Returns the
    /// number of entries imported.
    pub fn warm_boot(&self, path: &Path) -> Result<usize, SnapshotError> {
        let snapshot = SweepSnapshot::load(path)?;
        let count = snapshot.memo.len();
        self.import_memo(snapshot.memo);
        Ok(count)
    }

    /// Resumable, checkpointing variant of [`Self::sweep_sharded`].
    ///
    /// `state` is where the campaign stands — [`SweepSnapshot::fresh`] for a
    /// new sweep, or a loaded checkpoint to continue one. The snapshot's
    /// cursor is authoritative: `shard_of(range)` must yield the canonical
    /// orbit stream of the masks `range.next..range.hi`
    /// (`CanonicalFamily::orbits_in`), and the stored ranges — not a new
    /// shard split — define the work, so a campaign can be resumed under any
    /// worker count and still commit the exact same chunks.
    ///
    /// Workers classify privately and fold finished chunks into the shared
    /// state under one lock: histograms, new memo entries, and the range's
    /// watermark advance together, so every intermediate checkpoint is a
    /// consistent prefix of the sweep. With [`SweepCheckpoint::path`] set,
    /// the state is written atomically (temp file + rename) every
    /// [`SweepCheckpoint::every_orbits`] processed orbits and once more at
    /// the end — killing the process at any instant loses at most the
    /// uncommitted tail, and `state = SweepSnapshot::load(path)?` continues
    /// to histograms identical to an uninterrupted run.
    ///
    /// Orbits whose canonical key is already in `state.memo` are answered
    /// from it without running the decision procedure (the warm-boot
    /// re-sweep path; they count as engine cache hits). Returns the final
    /// snapshot and whether the cursor completed —
    /// [`SweepCheckpoint::orbit_limit`] stops early with a valid, resumable
    /// snapshot. The engine cache is warm for everything in the returned
    /// snapshot's memo afterwards.
    pub fn sweep_resumable<I, F>(
        &self,
        state: SweepSnapshot,
        shard_of: F,
        ckpt: &SweepCheckpoint<'_>,
    ) -> Result<(SweepSnapshot, bool), SnapshotError>
    where
        I: Iterator<Item = OrbitProblem>,
        F: Fn(MaskRange) -> I + Sync,
    {
        let baseline_map: HashMap<CanonicalKey, Complexity> = if self.canonicalize {
            state.memo.iter().cloned().collect()
        } else {
            HashMap::new()
        };
        let (shared, ranges) = ResumeShared::start(state);
        let pending = ranges.iter().filter(|r| !r.is_done()).count();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(pending.max(1));
        // Commit granularity: small enough that an orbit limit stops promptly,
        // large enough that the shared lock stays cold.
        let chunk_cap = ckpt.orbit_limit.map_or(64, |limit| limit.clamp(1, 64));
        if pending > 0 {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut scratch = ClassifyScratch::new();
                        let mut hits = 0usize;
                        let mut misses = 0usize;
                        'ranges: loop {
                            if shared.stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let ri = shared.next_range.fetch_add(1, Ordering::Relaxed);
                            if ri >= ranges.len() {
                                break;
                            }
                            let range = ranges[ri];
                            if range.is_done() {
                                continue;
                            }
                            let mut chunk = SweepOutcome::default();
                            let mut chunk_memo = Vec::new();
                            let mut orbits = 0u64;
                            for item in shard_of(range) {
                                let key = self.canonicalize.then(|| canonical_form(&item.problem));
                                let complexity = match key
                                    .as_ref()
                                    .and_then(|k| baseline_map.get(k))
                                {
                                    Some(&hit) => {
                                        hits += 1;
                                        hit
                                    }
                                    None => {
                                        let c =
                                            classify_complexity_with(&item.problem, &mut scratch);
                                        misses += 1;
                                        if let Some(k) = key {
                                            chunk_memo.push((k, c));
                                        }
                                        c
                                    }
                                };
                                chunk.orbits.add(complexity, 1);
                                chunk.problems.add(complexity, item.orbit_size);
                                orbits += 1;
                                if orbits >= chunk_cap {
                                    shared.commit(
                                        ckpt,
                                        ri,
                                        item.mask + 1,
                                        &chunk,
                                        &mut chunk_memo,
                                        orbits,
                                    );
                                    chunk = SweepOutcome::default();
                                    orbits = 0;
                                    if shared.stop.load(Ordering::Relaxed) {
                                        // Watermark committed; the rest of
                                        // this range stays pending.
                                        break 'ranges;
                                    }
                                }
                            }
                            // Stream exhausted: trailing non-canonical masks
                            // are accounted by advancing to the range's end.
                            shared.commit(ckpt, ri, range.hi, &chunk, &mut chunk_memo, orbits);
                        }
                        self.hits.fetch_add(hits, Ordering::Relaxed);
                        self.misses.fetch_add(misses, Ordering::Relaxed);
                    });
                }
            });
        }
        self.finish_resumable(shared, ckpt)
    }

    /// Resumable, checkpointing variant of [`Self::sweep_sharded_bitsliced`];
    /// the bit-sliced sibling of [`Self::sweep_resumable`] (see there for the
    /// cursor/checkpoint/warm-boot contract). `blocks_of(range)` must yield
    /// the [`MaskBlock`]s of `range.next..range.hi`
    /// (`CanonicalFamily::blocks_in`); commits happen at block boundaries
    /// using each block's [`MaskBlock::next_mask`] watermark. Block formation
    /// depends only on the starting mask and the lane width, so an
    /// interrupted-and-resumed campaign *at the same width* classifies the
    /// exact same block sequence as an uninterrupted one — lane statistics
    /// included. Resuming at a *different* width repacks the remaining masks
    /// into differently sized blocks: histograms and memo still converge to
    /// the identical final state (verdicts are per-lane and width-invariant),
    /// only the lane statistics differ. Blocks whose lanes are all covered by
    /// `state.memo` are answered from it without classification (such blocks
    /// add nothing to the lane statistics).
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_resumable_bitsliced<I, F, P, K>(
        &self,
        universe: &SlicedUniverse,
        width: LaneWidth,
        state: SweepSnapshot,
        blocks_of: F,
        problem_of: P,
        key_of: K,
        ckpt: &SweepCheckpoint<'_>,
    ) -> Result<(SweepSnapshot, bool), SnapshotError>
    where
        I: Iterator<Item = MaskBlock>,
        F: Fn(MaskRange) -> I + Sync,
        P: Fn(u64) -> LclProblem + Sync,
        K: Fn(u64) -> CanonicalKey + Sync,
    {
        match width {
            LaneWidth::W64 => self.sweep_resumable_bitsliced_w::<u64, _, _, _, _>(
                universe, state, blocks_of, problem_of, key_of, ckpt,
            ),
            LaneWidth::W128 => self.sweep_resumable_bitsliced_w::<[u64; 2], _, _, _, _>(
                universe, state, blocks_of, problem_of, key_of, ckpt,
            ),
            LaneWidth::W256 => self.sweep_resumable_bitsliced_w::<[u64; 4], _, _, _, _>(
                universe, state, blocks_of, problem_of, key_of, ckpt,
            ),
            LaneWidth::W512 => self.sweep_resumable_bitsliced_w::<[u64; 8], _, _, _, _>(
                universe, state, blocks_of, problem_of, key_of, ckpt,
            ),
        }
    }

    /// [`Self::sweep_resumable_bitsliced`] monomorphized over the lane word.
    fn sweep_resumable_bitsliced_w<W: LaneWord, I, F, P, K>(
        &self,
        universe: &SlicedUniverse,
        state: SweepSnapshot,
        blocks_of: F,
        problem_of: P,
        key_of: K,
        ckpt: &SweepCheckpoint<'_>,
    ) -> Result<(SweepSnapshot, bool), SnapshotError>
    where
        I: Iterator<Item = MaskBlock>,
        F: Fn(MaskRange) -> I + Sync,
        P: Fn(u64) -> LclProblem + Sync,
        K: Fn(u64) -> CanonicalKey + Sync,
    {
        let baseline_map: HashMap<CanonicalKey, Complexity> = if self.canonicalize {
            state.memo.iter().cloned().collect()
        } else {
            HashMap::new()
        };
        let (shared, ranges) = ResumeShared::start(state);
        let pending = ranges.iter().filter(|r| !r.is_done()).count();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(pending.max(1));
        if pending > 0 {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut scratch = ClassifyScratch::new();
                        let mut sliced = BitSliceScratch::<W>::new();
                        let mut verdicts = Vec::new();
                        let mut keys: Vec<CanonicalKey> = Vec::new();
                        let mut hits = 0usize;
                        let mut misses = 0usize;
                        'ranges: loop {
                            if shared.stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let ri = shared.next_range.fetch_add(1, Ordering::Relaxed);
                            if ri >= ranges.len() {
                                break;
                            }
                            let range = ranges[ri];
                            if range.is_done() {
                                continue;
                            }
                            for block in blocks_of(range) {
                                debug_assert_eq!(block.masks.len(), block.orbit_sizes.len());
                                let mut chunk = SweepOutcome::default();
                                let mut chunk_memo = Vec::new();
                                keys.clear();
                                if self.canonicalize {
                                    keys.extend(block.masks.iter().map(|&m| key_of(m)));
                                }
                                let all_hit = !keys.is_empty()
                                    && !baseline_map.is_empty()
                                    && keys.iter().all(|k| baseline_map.contains_key(k));
                                if all_hit {
                                    for (j, key) in keys.iter().enumerate() {
                                        let complexity = baseline_map[key];
                                        hits += 1;
                                        chunk.orbits.add(complexity, 1);
                                        chunk.problems.add(complexity, block.orbit_sizes[j]);
                                    }
                                } else {
                                    let stats = classify_block_sliced(
                                        universe,
                                        &block.masks,
                                        &mut sliced,
                                        &mut verdicts,
                                    );
                                    chunk.lanes.blocks += 1;
                                    chunk.lanes.fixpoint_rounds += stats.fixpoint_rounds;
                                    chunk.lanes.live_lane_rounds += stats.live_lane_rounds;
                                    for (j, &mask) in block.masks.iter().enumerate() {
                                        let computed = match verdicts[j] {
                                            LaneVerdict::Decided(c) => c,
                                            LaneVerdict::NeedsPolyExponent => {
                                                chunk.lanes.scalar_fallbacks += 1;
                                                let problem = problem_of(mask);
                                                let sustaining =
                                                    crate::solvability::solvable_labels(&problem);
                                                Complexity::Polynomial {
                                                    exponent: crate::scratch::poly_exponent_masked(
                                                        &problem,
                                                        sustaining,
                                                        &mut scratch,
                                                    ),
                                                }
                                            }
                                        };
                                        let mut complexity = computed;
                                        if self.canonicalize {
                                            match baseline_map.get(&keys[j]) {
                                                Some(&known) => {
                                                    hits += 1;
                                                    complexity = known;
                                                }
                                                None => {
                                                    misses += 1;
                                                    chunk_memo.push((keys[j].clone(), computed));
                                                }
                                            }
                                        } else {
                                            misses += 1;
                                        }
                                        chunk.orbits.add(complexity, 1);
                                        chunk.problems.add(complexity, block.orbit_sizes[j]);
                                    }
                                }
                                shared.commit(
                                    ckpt,
                                    ri,
                                    block.next_mask,
                                    &chunk,
                                    &mut chunk_memo,
                                    block.masks.len() as u64,
                                );
                                if shared.stop.load(Ordering::Relaxed) {
                                    break 'ranges;
                                }
                            }
                            shared.commit(
                                ckpt,
                                ri,
                                range.hi,
                                &SweepOutcome::default(),
                                &mut Vec::new(),
                                0,
                            );
                        }
                        self.hits.fetch_add(hits, Ordering::Relaxed);
                        self.misses.fetch_add(misses, Ordering::Relaxed);
                    });
                }
            });
        }
        self.finish_resumable(shared, ckpt)
    }

    /// Drains the shared state of a resumable sweep: surfaces deferred write
    /// errors, warms the engine cache with everything the snapshot knows, and
    /// writes the final checkpoint.
    fn finish_resumable(
        &self,
        shared: ResumeShared,
        ckpt: &SweepCheckpoint<'_>,
    ) -> Result<(SweepSnapshot, bool), SnapshotError> {
        let mut committed = shared
            .committed
            .into_inner()
            .expect("resumable sweep state poisoned");
        if let Some(e) = committed.write_error.take() {
            return Err(SnapshotError::Io(e));
        }
        if self.canonicalize {
            self.cache.extend(
                committed
                    .baseline
                    .iter()
                    .chain(committed.new_memo.iter())
                    .cloned(),
            );
        }
        let ResumeCommitted {
            cursor,
            outcome,
            baseline: mut memo,
            mut new_memo,
            ..
        } = committed;
        memo.append(&mut new_memo);
        let completed = cursor.is_complete();
        let snapshot = SweepSnapshot {
            cursor,
            outcome,
            memo,
        };
        if let Some(path) = ckpt.path {
            snapshot.save(path)?;
        }
        Ok((snapshot, completed))
    }
}

/// Checkpoint policy of a resumable sweep ([`ClassificationEngine::sweep_resumable`],
/// [`ClassificationEngine::sweep_resumable_bitsliced`]).
#[derive(Debug, Clone, Copy)]
pub struct SweepCheckpoint<'a> {
    /// Snapshot file, written atomically (temp file + rename) during the sweep
    /// and once at the end. `None` keeps the campaign in memory only.
    pub path: Option<&'a Path>,
    /// Processed orbits between two checkpoint writes (clamped to ≥ 1).
    pub every_orbits: u64,
    /// Stop pulling work after this many processed orbits, leaving a valid,
    /// resumable snapshot — the hook behind bounded-budget campaigns and the
    /// resume-equivalence tests. Workers stop at the next commit boundary, so
    /// slightly more orbits than the limit may be processed.
    pub orbit_limit: Option<u64>,
}

impl Default for SweepCheckpoint<'_> {
    fn default() -> Self {
        SweepCheckpoint {
            path: None,
            every_orbits: 4096,
            orbit_limit: None,
        }
    }
}

/// Shared state of one resumable sweep call.
struct ResumeShared {
    committed: Mutex<ResumeCommitted>,
    stop: AtomicBool,
    next_range: AtomicUsize,
}

/// Everything committed so far, guarded by one lock so histograms, memo, and
/// watermarks only ever advance together (each checkpoint is a consistent
/// prefix of the sweep).
struct ResumeCommitted {
    cursor: SweepCursor,
    outcome: SweepOutcome,
    /// Memo loaded with the starting snapshot; immutable during the sweep
    /// (lookups go through a hash map built before the workers start).
    baseline: Vec<(CanonicalKey, Complexity)>,
    /// Entries classified by this call, in commit order.
    new_memo: Vec<(CanonicalKey, Complexity)>,
    /// Orbits processed by this call (classified or answered from the memo).
    processed: u64,
    /// Orbits processed since the last checkpoint write.
    since_write: u64,
    /// First checkpoint-write failure; stops the sweep and is surfaced at the
    /// end (the in-memory result is still consistent).
    write_error: Option<std::io::Error>,
}

impl ResumeShared {
    fn start(state: SweepSnapshot) -> (Self, Vec<MaskRange>) {
        let ranges = state.cursor.ranges.clone();
        (
            ResumeShared {
                committed: Mutex::new(ResumeCommitted {
                    cursor: state.cursor,
                    outcome: state.outcome,
                    baseline: state.memo,
                    new_memo: Vec::new(),
                    processed: 0,
                    since_write: 0,
                    write_error: None,
                }),
                stop: AtomicBool::new(false),
                next_range: AtomicUsize::new(0),
            },
            ranges,
        )
    }

    /// Folds one finished chunk into the shared state under the lock:
    /// histograms, memo entries, and the range's watermark advance together;
    /// then applies the orbit-limit stop and the periodic checkpoint write.
    fn commit(
        &self,
        ckpt: &SweepCheckpoint<'_>,
        range: usize,
        watermark: u64,
        chunk: &SweepOutcome,
        chunk_memo: &mut Vec<(CanonicalKey, Complexity)>,
        orbits: u64,
    ) {
        let mut c = self
            .committed
            .lock()
            .expect("resumable sweep state poisoned");
        c.outcome.merge(chunk);
        c.new_memo.append(chunk_memo);
        let slot = &mut c.cursor.ranges[range];
        if watermark > slot.next {
            slot.next = watermark;
        }
        c.processed += orbits;
        c.since_write += orbits;
        if ckpt.orbit_limit.is_some_and(|limit| c.processed >= limit) {
            self.stop.store(true, Ordering::Relaxed);
        }
        if let Some(path) = ckpt.path {
            if c.write_error.is_none() && c.since_write >= ckpt.every_orbits.max(1) {
                c.since_write = 0;
                let bytes =
                    snapshot::to_bytes_parts(&c.cursor, &c.outcome, &[&c.baseline, &c.new_memo]);
                if let Err(e) = snapshot::save_bytes(path, &bytes) {
                    c.write_error = Some(e);
                    self.stop.store(true, Ordering::Relaxed);
                }
            }
        }
    }
}

/// One unit of a bit-sliced sweep: up to `width.lanes()` canonical
/// configuration masks (64–512, depending on the [`LaneWidth`] the sweep
/// runs at) over one shared [`SlicedUniverse`], with the orbit size of each
/// mask's representative (parallel arrays, one lane per mask).
#[derive(Debug, Clone, Default)]
pub struct MaskBlock {
    /// The configuration masks, one lane each.
    pub masks: Vec<u64>,
    /// `orbit_sizes[j]` is the label-permutation orbit size of `masks[j]`.
    pub orbit_sizes: Vec<u64>,
    /// Resume watermark once this block is committed: the first mask of the
    /// enumeration *after* this block (resuming from it reproduces the
    /// remaining block sequence exactly).
    pub next_mask: u64,
}

/// One item of a canonical-first sweep: a representative problem together with
/// the size of its label-permutation orbit (how many members of the full
/// universe it stands for).
#[derive(Debug, Clone)]
pub struct OrbitProblem {
    /// The representative's configuration mask in its family's enumeration —
    /// the resume watermark is `mask + 1` once the orbit is committed.
    pub mask: u64,
    /// The orbit's representative.
    pub problem: LclProblem,
    /// Number of distinct problems in the orbit.
    pub orbit_size: u64,
}

/// Number of per-exponent buckets kept for `Polynomial` verdicts: exponents
/// `1..POLY_EXPONENT_BUCKETS` get their own bucket, everything at or above
/// the last index is pooled into the final `poly_{POLY_EXPONENT_BUCKETS}+`
/// bucket (a depth-8 chain needs at least 8 labels, beyond every family the
/// sweeps enumerate).
pub const POLY_EXPONENT_BUCKETS: usize = 8;

/// Display names of the per-exponent buckets, aligned with
/// [`ComplexityHistogram::poly_k`].
const POLY_BUCKET_NAMES: [&str; POLY_EXPONENT_BUCKETS] = [
    "poly_1", "poly_2", "poly_3", "poly_4", "poly_5", "poly_6", "poly_7", "poly_8+",
];

/// Counts per complexity class (the four classes of the paper plus
/// unsolvable). `Polynomial` verdicts are counted both in the pooled
/// `polynomial` total (matching [`Complexity::short_name`]) and in the
/// per-exponent `poly_k` buckets for their exact Θ(n^{1/k}) exponent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComplexityHistogram {
    /// O(1) problems.
    pub constant: u64,
    /// Θ(log* n) problems.
    pub log_star: u64,
    /// Θ(log n) problems.
    pub log: u64,
    /// Θ(n^{1/k}) problems, pooled over every exponent.
    pub polynomial: u64,
    /// Θ(n^{1/k}) problems by exact exponent: index `k − 1`, with every
    /// exponent ≥ [`POLY_EXPONENT_BUCKETS`] pooled into the last bucket.
    pub poly_k: [u64; POLY_EXPONENT_BUCKETS],
    /// Unsolvable problems.
    pub unsolvable: u64,
}

impl ComplexityHistogram {
    /// Adds `weight` problems of the given class.
    pub fn add(&mut self, complexity: Complexity, weight: u64) {
        match complexity {
            Complexity::Constant => self.constant += weight,
            Complexity::LogStar => self.log_star += weight,
            Complexity::Log => self.log += weight,
            Complexity::Polynomial { exponent } => {
                self.polynomial += weight;
                self.poly_k[exponent.clamp(1, POLY_EXPONENT_BUCKETS) - 1] += weight;
            }
            Complexity::Unsolvable => self.unsolvable += weight,
        }
    }

    /// Adds every count of `other`.
    pub fn merge(&mut self, other: &ComplexityHistogram) {
        self.constant += other.constant;
        self.log_star += other.log_star;
        self.log += other.log;
        self.polynomial += other.polynomial;
        for (mine, theirs) in self.poly_k.iter_mut().zip(other.poly_k.iter()) {
            *mine += theirs;
        }
        self.unsolvable += other.unsolvable;
    }

    /// Total count over all classes.
    pub fn total(&self) -> u64 {
        self.constant + self.log_star + self.log + self.polynomial + self.unsolvable
    }

    /// The counts keyed by [`Complexity::short_name`], in complexity order.
    /// Per-exponent polynomial counts are in [`Self::poly_exponent_entries`].
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("O(1)", self.constant),
            ("log*", self.log_star),
            ("log", self.log),
            ("poly", self.polynomial),
            ("unsolvable", self.unsolvable),
        ]
    }

    /// The per-exponent polynomial buckets, `poly_1` (Θ(n)) through
    /// `poly_8+`, in exponent order. Their sum equals `polynomial`.
    pub fn poly_exponent_entries(&self) -> [(&'static str, u64); POLY_EXPONENT_BUCKETS] {
        let mut out = [("", 0u64); POLY_EXPONENT_BUCKETS];
        for (slot, (name, &count)) in out
            .iter_mut()
            .zip(POLY_BUCKET_NAMES.iter().zip(self.poly_k.iter()))
        {
            *slot = (name, count);
        }
        out
    }
}

/// Lane-utilization statistics of a bit-sliced sweep
/// ([`ClassificationEngine::sweep_sharded_bitsliced`]); all-zero for scalar
/// sweeps. Watched so lane-packing regressions (sparser blocks, more scalar
/// fallbacks) show up in `rtlcl sweep` output instead of only in wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepLaneStats {
    /// Number of blocks classified (each ≤ the sweep's lane width).
    pub blocks: u64,
    /// Total fixed-point rounds (trim + pruning) across all blocks.
    pub fixpoint_rounds: u64,
    /// Sum over those rounds of the live lanes entering each round.
    pub live_lane_rounds: u64,
    /// Lanes that fell back to the scalar polynomial-exponent descent.
    pub scalar_fallbacks: u64,
}

impl SweepLaneStats {
    /// Average number of live lanes per fixed-point round (0.0 when no
    /// rounds ran — e.g. a scalar sweep).
    pub fn avg_live_lanes(&self) -> f64 {
        if self.fixpoint_rounds == 0 {
            0.0
        } else {
            self.live_lane_rounds as f64 / self.fixpoint_rounds as f64
        }
    }

    /// Adds every count of `other`.
    pub fn merge(&mut self, other: &SweepLaneStats) {
        self.blocks += other.blocks;
        self.fixpoint_rounds += other.fixpoint_rounds;
        self.live_lane_rounds += other.live_lane_rounds;
        self.scalar_fallbacks += other.scalar_fallbacks;
    }
}

/// The result of [`ClassificationEngine::sweep_sharded`]: per-class counts of
/// the canonical representatives (`orbits`) and of the full universe they
/// stand for (`problems`, each orbit weighted by its size).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepOutcome {
    /// One count per canonical representative (= per label-permutation orbit).
    pub orbits: ComplexityHistogram,
    /// Counts over the whole universe: each orbit contributes its size.
    pub problems: ComplexityHistogram,
    /// Lane utilization (zero unless the sweep ran bit-sliced).
    pub lanes: SweepLaneStats,
}

impl SweepOutcome {
    /// Merges another outcome (shard results are disjoint, so addition).
    pub fn merge(&mut self, other: &SweepOutcome) {
        self.orbits.merge(&other.orbits);
        self.problems.merge(&other.problems);
        self.lanes.merge(&other.lanes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;

    fn problem(text: &str) -> LclProblem {
        text.parse().unwrap()
    }

    #[test]
    fn canonical_form_is_renaming_invariant() {
        let a = problem("1:22\n2:11\n");
        let b = problem("x:yy\ny:xx\n");
        assert_eq!(canonical_form(&a), canonical_form(&b));
        let c = problem("1:12\n2:11\n");
        assert_ne!(canonical_form(&a), canonical_form(&c));
    }

    #[test]
    fn canonical_form_ignores_orphan_labels() {
        let a = problem("1:11\n");
        let b = problem("1:11\nlabels: z w\n");
        assert_eq!(canonical_form(&a), canonical_form(&b));
        // Complexity really is the same, so sharing a key is sound.
        assert_eq!(classify(&a).complexity, classify(&b).complexity);
    }

    #[test]
    fn canonical_form_distinguishes_delta() {
        let a = problem("1:1\n");
        let b = problem("1:11\n");
        assert_ne!(canonical_form(&a), canonical_form(&b));
    }

    #[test]
    fn canonical_form_handles_nontrivial_permutations() {
        // MIS with two different namings and different textual orders.
        let a = problem("1:aa\n1:ab\n1:bb\na:bb\nb:b1\nb:11\n");
        let b = problem("y:y2\ny:22\nx:yy\n2:xx\n2:xy\n2:yy\n");
        assert_eq!(canonical_form(&a), canonical_form(&b));
    }

    #[test]
    fn engine_memoizes_renamed_problems() {
        let engine = ClassificationEngine::new();
        assert_eq!(
            engine.classify(&problem("1:22\n2:11\n")),
            Complexity::Polynomial { exponent: 1 }
        );
        assert_eq!(
            engine.classify(&problem("a:bb\nb:aa\n")),
            Complexity::Polynomial { exponent: 1 }
        );
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn engine_without_memoization_reclassifies() {
        let mut engine = ClassificationEngine::new();
        engine.set_memoization(false);
        let p = problem("1:22\n2:11\n");
        engine.classify(&p);
        engine.classify(&p);
        assert_eq!(engine.stats().cache_hits, 0);
        assert_eq!(engine.stats().cache_misses, 2);
    }

    #[test]
    fn batch_matches_sequential_classify() {
        let texts = [
            "1:22\n2:11\n",
            "1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n",
            "1:aa\n1:ab\n1:bb\na:bb\nb:b1\nb:11\n",
            "1 : 1 2\n2 : 1 1\n",
            "a : b b\nb : c c\n",
            "x : x x\n",
        ];
        let problems: Vec<LclProblem> = texts.iter().map(|t| problem(t)).collect();
        let expected: Vec<Complexity> = problems.iter().map(|p| classify(p).complexity).collect();
        let engine = ClassificationEngine::new();
        assert_eq!(engine.classify_batch_sequential(&problems), expected);
        let engine = ClassificationEngine::new();
        assert_eq!(engine.classify_batch(&problems), expected);
    }

    #[test]
    fn classify_full_populates_the_cache() {
        let engine = ClassificationEngine::new();
        let p = problem("1:aa\n1:ab\n1:bb\na:bb\nb:b1\nb:11\n");
        let report = engine.classify_full(&p);
        assert_eq!(report.complexity, Complexity::Constant);
        assert_eq!(engine.classify(&p), Complexity::Constant);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn empty_batch() {
        let engine = ClassificationEngine::new();
        assert!(engine.classify_batch(&[]).is_empty());
    }

    #[test]
    fn memo_snapshot_round_trips_through_warm_boot() {
        let dir = std::env::temp_dir().join(format!("rtlcl-memo-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("memo.rtlcl");

        let engine = ClassificationEngine::new();
        engine.classify(&problem("1:22\n2:11\n"));
        engine.classify(&problem("1:aa\n1:ab\n1:bb\na:bb\nb:b1\nb:11\n"));
        assert_eq!(engine.save_memo(&path).unwrap(), 2);

        // The memo-only snapshot has a complete, empty cursor: `snapshot info`
        // and `load` treat it like any finished campaign.
        let snap = engine.memo_snapshot();
        assert!(snap.cursor.is_complete());
        assert_eq!(snap.cursor.remaining_masks(), 0);
        assert_eq!(snap.memo.len(), 2);

        // A fresh engine warm-boots from it and answers renamed copies from
        // the cache without reclassifying.
        let fresh = ClassificationEngine::new();
        assert_eq!(fresh.warm_boot(&path).unwrap(), 2);
        assert_eq!(fresh.memo_len(), 2);
        assert_eq!(
            fresh.classify(&problem("a:bb\nb:aa\n")),
            Complexity::Polynomial { exponent: 1 }
        );
        assert_eq!(fresh.stats().cache_hits, 1);
        assert_eq!(fresh.stats().cache_misses, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn histogram_pools_large_poly_exponents_into_the_last_bucket() {
        // Exponents at or above POLY_EXPONENT_BUCKETS are clamped into the
        // final bucket, which therefore reads "poly_8+" — not "poly_8".
        let mut h = ComplexityHistogram::default();
        h.add(Complexity::Polynomial { exponent: 1 }, 2);
        h.add(Complexity::Polynomial { exponent: 8 }, 3);
        h.add(Complexity::Polynomial { exponent: 9 }, 5);
        h.add(Complexity::Polynomial { exponent: 100 }, 7);
        assert_eq!(h.polynomial, 17);
        assert_eq!(h.poly_k[0], 2);
        assert_eq!(h.poly_k[POLY_EXPONENT_BUCKETS - 1], 15);
        assert_eq!(h.poly_k[1..POLY_EXPONENT_BUCKETS - 1], [0; 6]);
        let entries = h.poly_exponent_entries();
        assert_eq!(entries[0], ("poly_1", 2));
        assert_eq!(entries[POLY_EXPONENT_BUCKETS - 1], ("poly_8+", 15));
        assert_eq!(h.poly_k.iter().sum::<u64>(), h.polynomial);
    }
}
