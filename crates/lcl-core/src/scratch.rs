//! Reusable scratch buffers and masked decision kernels — the zero-allocation
//! classification hot path.
//!
//! # The scratch-buffer contract
//!
//! A cache-miss classification through [`crate::classifier::classify_complexity_with`]
//! performs **no `LclProblem` clone and no per-subset problem reconstruction**:
//! every stage of the decision procedure (the solvability fixed point, Algorithm
//! 2's pruning loop, and the subset searches of Algorithms 4–5) operates on the
//! *parent* problem's dense configuration tables, restricted by **masking** with a
//! [`LabelSet`] instead of materializing a restricted [`LclProblem`]. The only
//! mutable state the kernels need — dense successor/predecessor tables for the
//! masked path-form automaton, BFS queues, and the entry list of Algorithm 3's
//! fixed point — lives in a [`ClassifyScratch`] that callers thread through the
//! stages.
//!
//! The contract is *amortized* zero allocation: the buffers grow to a
//! high-water mark on the first classifications and are then reused (`clear()`
//! retains capacity), so a warmed-up scratch serves every further cache-miss
//! classification without touching the allocator. The
//! `crates/lcl-core/tests/zero_alloc.rs` integration test pins this down with a
//! counting global allocator.
//!
//! Three ways to get a scratch:
//!
//! * [`ClassifyScratch::new`] — own one explicitly and pass it to
//!   [`crate::classifier::classify_complexity_with`] (what the engine's batch
//!   workers and the sweep driver do: one scratch per worker thread, no sharing,
//!   no locks);
//! * [`with_thread_scratch`] — borrow the calling thread's lazily initialized
//!   scratch (what the plain [`crate::classify_complexity`] wrapper and the
//!   full-report certificate searches use);
//! * implicitly via [`crate::classify`] / [`crate::classify_complexity`], which
//!   route through the thread-local.
//!
//! # Masked kernels
//!
//! * [`flexible_states_masked`] — Algorithm 1 (path-flexible states of the
//!   restriction to `allowed`) without building the restriction or an
//!   [`crate::automaton::Automaton`];
//! * [`prune_fixpoint_masked`] — Algorithm 2's pruning loop as a pure
//!   [`LabelSet`] iteration; agrees with
//!   [`crate::log_certificate::find_log_certificate`] on the fixpoint labels and
//!   the iteration count `k` (asserted by differential tests below);
//! * [`exists_builder_masked`] — the decision form of Algorithm 3: does the
//!   restriction to `subset` admit a certificate builder (optionally producing
//!   the special label on a leaf)? No entries are kept beyond the producible
//!   root-set list, and no derivations are recorded.
//! * [`trim_masked`] — Lemma 5.28's `trim`: the greatest subset of `allowed`
//!   in which every label heads a configuration lying fully inside the subset
//!   (equals `solvable_labels(problem.restrict_to(allowed))` without the
//!   restriction);
//! * [`poly_exponent_masked`] — the exact Θ(n^{1/k}) exponent of a
//!   polynomial-region problem: the depth of the longest trim/flexible-SCC
//!   descent (Lemma 5.29), run as an explicit DFS over [`LabelSet`] frames so
//!   the batch hot path stays allocation-free. The report path's
//!   [`crate::poly::find_poly_certificate`] materializes the witnessing chain;
//!   differential tests assert the two agree on the exponent.

use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::ops::Range;

use crate::configuration::children_match_slots;
use crate::label::Label;
use crate::label_set::LabelSet;
use crate::problem::LclProblem;

/// Reusable buffers for the masked decision kernels. See the module
/// documentation for the ownership contract.
#[derive(Debug, Default)]
pub struct ClassifyScratch {
    /// Masked-automaton successors, indexed by `allowed.rank(state)`.
    succ: Vec<LabelSet>,
    /// Masked-automaton predecessors, same indexing.
    pred: Vec<LabelSet>,
    /// BFS levels for the period computation (`i64::MIN` = unvisited).
    level: Vec<i64>,
    /// BFS queue for the period computation.
    queue: VecDeque<Label>,
    /// Algorithm 3's entry list: producible root-label sets plus the
    /// special-leaf flag.
    entries: Vec<(LabelSet, bool)>,
    /// Dedup set over `entries` (bitmask + flag).
    seen: HashSet<(u128, bool)>,
    /// Odometer over entry indices (one digit per child slot).
    tuple: Vec<usize>,
    /// The root-label sets selected by the current odometer state.
    slot_sets: Vec<LabelSet>,
    /// Flexible SCCs collected by [`flexible_sccs_masked`] (arena-style: the
    /// exponent DFS truncates back to each call's start index).
    sccs: Vec<LabelSet>,
    /// Open frames of the exponent DFS.
    poly_frames: Vec<PolyFrame>,
    /// Trimmed child sets of the open frames (arena-style, truncated on pop).
    poly_children: Vec<LabelSet>,
}

/// One open frame of the exponent DFS: the trimmed child sets it still has to
/// descend into, and the best depth found below it so far.
#[derive(Debug, Clone, Copy)]
struct PolyFrame {
    /// Start of this frame's children in `poly_children`.
    children_start: u32,
    /// End of this frame's children in `poly_children`.
    children_end: u32,
    /// Next child to descend into.
    next: u32,
    /// `max(1, 1 + depth(child))` over the children processed so far.
    best: u32,
}

impl ClassifyScratch {
    /// Creates an empty scratch. Buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<ClassifyScratch> = RefCell::new(ClassifyScratch::new());
}

/// Runs `f` with the calling thread's scratch. The closure must not re-enter
/// `with_thread_scratch` (the kernels never do; they take the scratch as an
/// explicit parameter).
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut ClassifyScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Reflexive-transitive closure of `start` under `adj` (dense over `allowed`),
/// staying inside `allowed`. Pure bitset frontier expansion, no allocation.
fn reach(start: Label, adj: &[LabelSet], allowed: LabelSet) -> LabelSet {
    let mut seen = LabelSet::singleton(start);
    let mut frontier = seen;
    while !frontier.is_empty() {
        let mut next = LabelSet::EMPTY;
        for u in frontier {
            next |= adj[allowed.rank(u)];
        }
        next &= allowed;
        frontier = next - seen;
        seen |= frontier;
    }
    seen
}

fn gcd_i64(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd_i64(b, a % b)
    }
}

/// The period (gcd of cycle lengths) of the strongly connected component `comp`
/// of the masked automaton, via BFS layering — the masked twin of
/// [`crate::automaton::Automaton`]'s period computation.
fn component_period(comp: LabelSet, allowed: LabelSet, scratch: &mut ClassifyScratch) -> usize {
    let start = comp.first().expect("non-empty component");
    for u in comp {
        scratch.level[allowed.rank(u)] = i64::MIN;
    }
    scratch.level[allowed.rank(start)] = 0;
    scratch.queue.clear();
    scratch.queue.push_back(start);
    let mut gcd: i64 = 0;
    while let Some(u) = scratch.queue.pop_front() {
        let lu = scratch.level[allowed.rank(u)];
        for v in scratch.succ[allowed.rank(u)] & comp {
            let lv = scratch.level[allowed.rank(v)];
            if lv == i64::MIN {
                scratch.level[allowed.rank(v)] = lu + 1;
                scratch.queue.push_back(v);
            } else {
                gcd = gcd_i64(gcd, (lu + 1 - lv).abs());
            }
        }
    }
    gcd.max(0) as usize
}

/// Fills the masked successor/predecessor tables (and sizes the BFS level
/// buffer) for the path-form automaton of the restriction to `allowed`.
fn build_masked_tables(problem: &LclProblem, allowed: LabelSet, scratch: &mut ClassifyScratch) {
    let n = allowed.len();
    scratch.succ.clear();
    scratch.succ.resize(n, LabelSet::EMPTY);
    scratch.pred.clear();
    scratch.pred.resize(n, LabelSet::EMPTY);
    scratch.level.clear();
    scratch.level.resize(n, i64::MIN);
    // Per-parent configuration ranges: configurations whose parent is already
    // outside the mask are never touched (the exponent DFS calls this on
    // ever-smaller sets, where most parents are masked out).
    for parent in allowed {
        let from = allowed.rank(parent);
        for i in problem.parent_config_range(parent) {
            if !problem.configuration_label_set(i).is_subset(allowed) {
                continue;
            }
            for &child in problem.configurations()[i].children() {
                scratch.succ[from].insert(child);
                scratch.pred[allowed.rank(child)].insert(parent);
            }
        }
    }
}

/// Algorithm 1, masked: the path-flexible states of the restriction of
/// `problem` to `allowed`, computed directly on the parent problem's dense
/// tables. Equivalent to
/// `Automaton::of(&problem.restrict_to(allowed)).flexible_states()` without
/// building either the restriction or the automaton.
pub fn flexible_states_masked(
    problem: &LclProblem,
    allowed: LabelSet,
    scratch: &mut ClassifyScratch,
) -> LabelSet {
    if allowed.is_empty() {
        return LabelSet::EMPTY;
    }
    build_masked_tables(problem, allowed, scratch);

    let mut assigned = LabelSet::EMPTY;
    let mut flexible = LabelSet::EMPTY;
    for v in allowed {
        if assigned.contains(v) {
            continue;
        }
        let fwd = reach(v, &scratch.succ, allowed);
        let bwd = reach(v, &scratch.pred, allowed);
        let comp = fwd & bwd;
        assigned |= comp;
        let has_cycle = comp.len() > 1 || scratch.succ[allowed.rank(v)].contains(v);
        if has_cycle && component_period(comp, allowed, scratch) == 1 {
            flexible |= comp;
        }
    }
    flexible
}

/// Lemma 5.29's flexible-SCC enumeration, masked: appends every flexible
/// (period-1, cycle-containing) strongly connected component of the masked
/// automaton of the restriction to `allowed` onto `scratch.sccs` and returns
/// the appended range. Callers truncate `scratch.sccs` back to `range.start`
/// once done, so the buffer acts as a stack arena for the exponent DFS.
fn flexible_sccs_masked(
    problem: &LclProblem,
    allowed: LabelSet,
    scratch: &mut ClassifyScratch,
) -> Range<usize> {
    let start = scratch.sccs.len();
    if allowed.is_empty() {
        return start..start;
    }
    build_masked_tables(problem, allowed, scratch);
    let mut assigned = LabelSet::EMPTY;
    for v in allowed {
        if assigned.contains(v) {
            continue;
        }
        let fwd = reach(v, &scratch.succ, allowed);
        let bwd = reach(v, &scratch.pred, allowed);
        let comp = fwd & bwd;
        assigned |= comp;
        let has_cycle = comp.len() > 1 || scratch.succ[allowed.rank(v)].contains(v);
        if has_cycle && component_period(comp, allowed, scratch) == 1 {
            scratch.sccs.push(comp);
        }
    }
    start..scratch.sccs.len()
}

/// Lemma 5.28's `trim`, masked: the greatest subset `T ⊆ allowed` such that
/// every label of `T` heads a configuration whose labels all lie in `T`.
/// Equals `solvable_labels(&problem.restrict_to(allowed))` without
/// materializing the restriction; a pure [`LabelSet`] iteration, no scratch.
pub fn trim_masked(problem: &LclProblem, allowed: LabelSet) -> LabelSet {
    let mut cur = allowed & problem.labels();
    loop {
        // Per-parent configuration ranges with first-match early exit — the
        // same shape as `solvable_labels`, restricted to the mask.
        let next: LabelSet = cur
            .iter()
            .filter(|&l| problem.has_continuation_within(l, cur))
            .collect();
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

/// The exact Θ(n^{1/k}) exponent of a polynomial-region problem — the depth of
/// the longest trim/flexible-SCC descent starting from the self-sustaining
/// label set (the `max_depth` recursion over Lemmas 5.28–5.29):
///
/// * `depth(S) = max(1, max over flexible SCCs C of M(Π|S) with trim(C) ≠ ∅
///   of 1 + depth(trim(C)))` for trimmed non-empty `S`;
/// * the exponent is `depth(trim(Σ))`.
///
/// The caller guarantees the problem is in the polynomial region (solvable,
/// Algorithm 2 fixpoint empty); `sustaining` is the precomputed
/// [`crate::solvable_labels`] set. In that region every flexible SCC is a
/// *proper* subset of its level (a full-set flexible SCC would be a
/// certificate for O(log n)), so the descent strictly shrinks and terminates.
///
/// Runs as an explicit DFS over scratch frames: no recursion, no allocation
/// once the arenas are warm. Agrees with the chain materialized by
/// [`crate::poly::find_poly_certificate`].
pub fn poly_exponent_masked(
    problem: &LclProblem,
    sustaining: LabelSet,
    scratch: &mut ClassifyScratch,
) -> usize {
    debug_assert!(!sustaining.is_empty(), "polynomial problems are solvable");
    debug_assert_eq!(sustaining, trim_masked(problem, problem.labels()));
    scratch.poly_frames.clear();
    scratch.poly_children.clear();
    scratch.sccs.clear();
    push_poly_frame(problem, sustaining, scratch);
    loop {
        let frame = *scratch.poly_frames.last().expect("frame stack non-empty");
        if frame.next < frame.children_end {
            scratch.poly_frames.last_mut().expect("checked").next += 1;
            let child = scratch.poly_children[frame.next as usize];
            push_poly_frame(problem, child, scratch);
            continue;
        }
        scratch.poly_frames.pop();
        scratch
            .poly_children
            .truncate(frame.children_start as usize);
        match scratch.poly_frames.last_mut() {
            Some(parent) => parent.best = parent.best.max(1 + frame.best),
            None => return frame.best as usize,
        }
    }
}

/// Opens a DFS frame for the trimmed non-empty set `set`: enumerates the
/// flexible SCCs of its masked automaton and stores the non-empty trims of the
/// proper ones as the frame's children.
fn push_poly_frame(problem: &LclProblem, set: LabelSet, scratch: &mut ClassifyScratch) {
    let scc_range = flexible_sccs_masked(problem, set, scratch);
    let children_start = scratch.poly_children.len();
    for i in scc_range.clone() {
        let comp = scratch.sccs[i];
        if comp == set {
            // A trimmed set that is one flexible SCC is a certificate for
            // O(log n) solvability — unreachable in the polynomial region.
            debug_assert!(false, "log-certificate restriction inside the poly descent");
            continue;
        }
        if comp.len() == 1 {
            // A flexible singleton has a self-loop; a non-empty trim would
            // need the all-self configuration, making Π|{l} a certificate for
            // O(log n) — impossible in the polynomial region. Skipping the
            // trim here is the hot-path shortcut for the (common) problems
            // whose flexible SCCs are all singletons.
            debug_assert!(trim_masked(problem, comp).is_empty());
            continue;
        }
        let trimmed = trim_masked(problem, comp);
        if !trimmed.is_empty() {
            scratch.poly_children.push(trimmed);
        }
    }
    scratch.sccs.truncate(scc_range.start);
    scratch.poly_frames.push(PolyFrame {
        children_start: children_start as u32,
        children_end: scratch.poly_children.len() as u32,
        next: children_start as u32,
        best: 1,
    });
}

/// Algorithm 2's pruning loop, masked: iterates [`flexible_states_masked`] to a
/// fixed point and returns `(fixpoint labels, number of non-empty pruning
/// iterations)`. Agrees with [`crate::log_certificate::find_log_certificate`]
/// on both components (the restriction of a problem is fully determined by the
/// surviving label set, so comparing label sets is equivalent to comparing
/// restricted problems).
pub fn prune_fixpoint_masked(
    problem: &LclProblem,
    scratch: &mut ClassifyScratch,
) -> (LabelSet, usize) {
    let mut allowed = problem.labels();
    let mut iterations = 0usize;
    loop {
        let flexible = flexible_states_masked(problem, allowed, scratch);
        if flexible == allowed {
            return (allowed, iterations);
        }
        if !(allowed - flexible).is_empty() {
            iterations += 1;
        }
        allowed = flexible;
    }
}

/// The decision form of Algorithm 3, masked: `true` iff the restriction of
/// `problem` to `subset` admits a certificate builder — with the special label
/// `target` producible on a certificate leaf when one is given. Mirrors
/// [`crate::builder::find_unrestricted_certificate`] on
/// `problem.restrict_to(subset)` exactly (same entry insertion order, hence the
/// same answer), but iterates the parent problem's configurations under a
/// subset mask and records no derivations.
pub fn exists_builder_masked(
    problem: &LclProblem,
    subset: LabelSet,
    target: Option<Label>,
    scratch: &mut ClassifyScratch,
) -> bool {
    // `restrict_to` intersects with the active label set; mirror that here so
    // the equivalence holds for any subset, not just subsets of Σ(Π).
    let subset = subset & problem.labels();
    if subset.is_empty() {
        return false;
    }
    if let Some(t) = target {
        if !subset.contains(t) {
            return false;
        }
    }
    // The restricted problem must have at least one configuration (Algorithm 3
    // on an empty configuration set finds nothing).
    let any_config = problem
        .configurations()
        .iter()
        .enumerate()
        .any(|(i, _)| problem.configuration_label_set(i).is_subset(subset));
    if !any_config {
        return false;
    }

    let delta = problem.delta();
    let wanted = (subset, target.is_some());
    let ClassifyScratch {
        entries,
        seen,
        tuple,
        slot_sets,
        ..
    } = scratch;
    entries.clear();
    seen.clear();
    for label in subset {
        let entry = (LabelSet::singleton(label), Some(label) == target);
        if entry == wanted {
            return true;
        }
        seen.insert((entry.0.bits(), entry.1));
        entries.push(entry);
    }

    // Fixed-point loop: repeatedly try every δ-tuple of existing entries.
    loop {
        let mut added = false;
        let snapshot_len = entries.len();
        tuple.clear();
        tuple.resize(delta, 0);
        'tuples: loop {
            slot_sets.clear();
            for &i in tuple.iter() {
                slot_sets.push(entries[i].0);
            }
            let mut produced = LabelSet::EMPTY;
            for (ci, config) in problem.configurations().iter().enumerate() {
                if !problem.configuration_label_set(ci).is_subset(subset) {
                    continue;
                }
                if produced.contains(config.parent()) {
                    continue;
                }
                if children_match_slots(config.children(), slot_sets) {
                    produced.insert(config.parent());
                }
            }
            if !produced.is_empty() {
                let flag = tuple.iter().any(|&i| entries[i].1);
                if seen.insert((produced.bits(), flag)) {
                    if (produced, flag) == wanted {
                        return true;
                    }
                    entries.push((produced, flag));
                    added = true;
                }
            }
            // Advance the tuple (odometer over `snapshot_len` symbols).
            let mut pos = 0;
            loop {
                if pos == delta {
                    break 'tuples;
                }
                tuple[pos] += 1;
                if tuple[pos] < snapshot_len {
                    break;
                }
                tuple[pos] = 0;
                pos += 1;
            }
        }
        if !added {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Automaton;
    use crate::builder::find_unrestricted_certificate;
    use crate::classifier::{classify, classify_complexity_with};
    use crate::log_certificate::find_log_certificate;
    use crate::problem::ProblemBuilder;

    fn problem(text: &str) -> LclProblem {
        text.parse().unwrap()
    }

    /// Every problem over δ = 2 and two labels: the exhaustive differential
    /// workload for the masked kernels.
    fn full_two_label_family() -> Vec<LclProblem> {
        let names = ["a", "b"];
        // All (parent, sorted child pair) configurations: 2 × 3 = 6.
        let universe: Vec<(usize, [usize; 2])> = (0..2)
            .flat_map(|p| [(p, [0, 0]), (p, [0, 1]), (p, [1, 1])])
            .collect();
        (0u32..1 << universe.len())
            .map(|mask| {
                let mut b = ProblemBuilder::new(2);
                b.label("a");
                b.label("b");
                for (i, (p, cs)) in universe.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        b.configuration(names[*p], &[names[cs[0]], names[cs[1]]]);
                    }
                }
                b.build()
            })
            .collect()
    }

    #[test]
    fn masked_flexible_states_match_automaton_on_restrictions() {
        let mut scratch = ClassifyScratch::new();
        for p in full_two_label_family() {
            for allowed in p.labels().subsets() {
                let masked = flexible_states_masked(&p, allowed, &mut scratch);
                let rebuilt = Automaton::of(&p.restrict_to(allowed)).flexible_states();
                assert_eq!(
                    masked,
                    rebuilt,
                    "problem {:?}, allowed {allowed}",
                    p.to_text()
                );
            }
        }
    }

    #[test]
    fn masked_prune_matches_find_log_certificate() {
        let mut scratch = ClassifyScratch::new();
        let extra = [
            "a : b b\nb : a a\n1 : 1 2\n2 : 1 1\n",
            crate::test_fixtures::SECTION_8_DEPTH_TWO,
            "1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n",
        ];
        let mut all = full_two_label_family();
        all.extend(extra.iter().map(|t| problem(t)));
        for p in all {
            let (fixpoint, iterations) = prune_fixpoint_masked(&p, &mut scratch);
            let analysis = find_log_certificate(&p);
            assert_eq!(fixpoint, analysis.fixpoint.labels(), "{}", p.to_text());
            assert_eq!(iterations, analysis.iterations(), "{}", p.to_text());
        }
    }

    #[test]
    fn masked_builder_decision_matches_restricted_search() {
        let mut scratch = ClassifyScratch::new();
        for p in full_two_label_family() {
            for subset in p.labels().subsets() {
                let restricted = p.restrict_to(subset);
                // Without a target.
                let expected = find_unrestricted_certificate(&restricted, None).is_some();
                assert_eq!(
                    exists_builder_masked(&p, subset, None, &mut scratch),
                    expected,
                    "problem {:?}, subset {subset}",
                    p.to_text()
                );
                // With every possible target.
                for t in subset {
                    let expected = find_unrestricted_certificate(&restricted, Some(t)).is_some();
                    assert_eq!(
                        exists_builder_masked(&p, subset, Some(t), &mut scratch),
                        expected,
                        "problem {:?}, subset {subset}, target {t}",
                        p.to_text()
                    );
                }
            }
            // Subsets reaching outside Σ(Π) behave like their intersection
            // with Σ(Π), mirroring `restrict_to`.
            let widened = p.labels() | LabelSet::singleton(Label(100));
            assert_eq!(
                exists_builder_masked(&p, widened, None, &mut scratch),
                find_unrestricted_certificate(&p.restrict_to(widened), None).is_some(),
                "problem {:?}, widened subset",
                p.to_text()
            );
        }
    }

    #[test]
    fn scratch_classification_matches_full_classifier_exhaustively() {
        let mut scratch = ClassifyScratch::new();
        for p in full_two_label_family() {
            assert_eq!(
                classify_complexity_with(&p, &mut scratch),
                classify(&p).complexity,
                "{}",
                p.to_text()
            );
        }
    }

    #[test]
    fn trim_masked_matches_solvable_labels_of_restrictions() {
        for p in full_two_label_family() {
            for subset in p.labels().subsets() {
                assert_eq!(
                    trim_masked(&p, subset),
                    crate::solvability::solvable_labels(&p.restrict_to(subset)),
                    "problem {:?}, subset {subset}",
                    p.to_text()
                );
            }
        }
    }

    #[test]
    fn masked_flexible_sccs_match_automaton_components() {
        let mut scratch = ClassifyScratch::new();
        for p in full_two_label_family() {
            for allowed in p.labels().subsets() {
                let range = flexible_sccs_masked(&p, allowed, &mut scratch);
                let mut masked: Vec<LabelSet> = scratch.sccs[range.clone()].to_vec();
                scratch.sccs.truncate(range.start);
                masked.sort_by_key(|s| s.first());
                let mut rebuilt: Vec<LabelSet> = Automaton::of(&p.restrict_to(allowed))
                    .components()
                    .into_iter()
                    .filter(|c| c.has_cycle && c.period == 1)
                    .map(|c| c.states)
                    .collect();
                rebuilt.sort_by_key(|s| s.first());
                assert_eq!(
                    masked,
                    rebuilt,
                    "problem {:?}, allowed {allowed}",
                    p.to_text()
                );
            }
        }
    }

    #[test]
    fn masked_exponent_matches_certificate_chain_on_deep_problems() {
        let mut scratch = ClassifyScratch::new();
        let deep = [
            // Θ(n): 2-coloring on trees and paths.
            "1:22\n2:11\n",
            "1:2\n2:1\n",
            // Θ(√n): the Section 8 construction with k = 2.
            crate::test_fixtures::SECTION_8_DEPTH_TWO,
        ];
        for text in deep {
            let p = problem(text);
            let cert = crate::poly::find_poly_certificate(&p).expect("polynomial problem");
            let sustaining = crate::solvability::solvable_labels(&p);
            assert_eq!(
                poly_exponent_masked(&p, sustaining, &mut scratch),
                cert.exponent(),
                "{text}"
            );
        }
    }
}
