//! LCL problems Π = (δ, Σ, C) on rooted regular trees (Definition 4.1).
//!
//! A problem owns an interned *core*: configurations are stored sorted in a
//! dense `Vec`, grouped by parent label through a per-label index range built
//! once at construction time, and every configuration carries a precomputed
//! [`LabelSet`] of the labels it uses. Together with the bitset representation
//! of Σ this makes the classifier's hot queries — "does `label` have a
//! continuation below within `allowed`?", "which configurations survive a
//! restriction?" — run in O(1) per configuration with no allocation.

use std::fmt;
use std::sync::Arc;

use crate::configuration::Configuration;
use crate::label::{Alphabet, AlphabetBuilder, Label};
use crate::label_set::LabelSet;

/// An LCL problem in the rooted-regular-tree formalism of the paper: the number of
/// children `δ`, a finite set of labels `Σ`, and a set of allowed configurations `C`.
///
/// Problems are immutable after construction. The *active* label set Σ may be a
/// subset of the shared [`Alphabet`]: restrictions (Definition 4.3) keep the same
/// alphabet so label identities and names are stable across the whole analysis.
/// At most [`LabelSet::CAPACITY`] (128) alphabet entries are supported.
#[derive(Debug, Clone)]
pub struct LclProblem {
    delta: usize,
    alphabet: Arc<Alphabet>,
    labels: LabelSet,
    /// Sorted and deduplicated; configurations with equal parents are contiguous.
    configurations: Vec<Configuration>,
    /// For each alphabet label index, the range of `configurations` whose parent
    /// is that label.
    parent_ranges: Vec<(u32, u32)>,
    /// For each configuration, the set of labels it uses (parent and children).
    config_sets: Vec<LabelSet>,
    /// Union of all configuration label sets.
    used_labels: LabelSet,
}

impl PartialEq for LclProblem {
    fn eq(&self, other: &Self) -> bool {
        // The index structures are functions of the three defining fields.
        self.delta == other.delta
            && self.labels == other.labels
            && self.configurations == other.configurations
            && (Arc::ptr_eq(&self.alphabet, &other.alphabet) || self.alphabet == other.alphabet)
    }
}

impl Eq for LclProblem {}

impl LclProblem {
    /// Creates a problem from its parts. `configurations` may be in any order and
    /// contain duplicates; they are canonicalized here.
    ///
    /// # Panics
    ///
    /// Panics if a configuration uses a label outside `labels`, has the wrong number
    /// of children, if a label index is outside the alphabet, or if the alphabet has
    /// more than 128 entries.
    pub fn new(
        delta: usize,
        alphabet: Arc<Alphabet>,
        labels: LabelSet,
        configurations: Vec<Configuration>,
    ) -> Self {
        assert!(delta >= 1, "delta must be at least 1");
        assert!(
            alphabet.len() <= LabelSet::CAPACITY,
            "alphabet has {} labels, LabelSet supports at most {}",
            alphabet.len(),
            LabelSet::CAPACITY
        );
        for l in labels.iter() {
            assert!(l.index() < alphabet.len(), "label {l} outside the alphabet");
        }
        let mut configurations = configurations;
        configurations.sort_unstable();
        configurations.dedup();
        for c in &configurations {
            assert_eq!(
                c.delta(),
                delta,
                "configuration {} has {} children, expected {delta}",
                c.display(&alphabet),
                c.delta()
            );
            for l in c.labels() {
                assert!(
                    labels.contains(l),
                    "configuration {} uses label {} not in the active label set",
                    c.display(&alphabet),
                    alphabet.name(l)
                );
            }
        }
        Self::from_canonical(delta, alphabet, labels, configurations)
    }

    /// Builds the dense index for already-sorted, validated configurations.
    fn from_canonical(
        delta: usize,
        alphabet: Arc<Alphabet>,
        labels: LabelSet,
        configurations: Vec<Configuration>,
    ) -> Self {
        debug_assert!(configurations.windows(2).all(|w| w[0] < w[1]));
        let mut parent_ranges = vec![(0u32, 0u32); alphabet.len()];
        let mut config_sets = Vec::with_capacity(configurations.len());
        let mut used_labels = LabelSet::EMPTY;
        let mut i = 0usize;
        while i < configurations.len() {
            let parent = configurations[i].parent();
            let start = i;
            while i < configurations.len() && configurations[i].parent() == parent {
                let set: LabelSet = configurations[i].labels().collect();
                used_labels |= set;
                config_sets.push(set);
                i += 1;
            }
            parent_ranges[parent.index()] = (start as u32, i as u32);
        }
        LclProblem {
            delta,
            alphabet,
            labels,
            configurations,
            parent_ranges,
            config_sets,
            used_labels,
        }
    }

    /// Starts a [`ProblemBuilder`] for a problem with the given δ.
    pub fn builder(delta: usize) -> ProblemBuilder {
        ProblemBuilder::new(delta)
    }

    /// The number of children of internal nodes.
    #[inline]
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The shared alphabet mapping labels to names.
    #[inline]
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// The active label set Σ(Π).
    #[inline]
    pub fn labels(&self) -> LabelSet {
        self.labels
    }

    /// The active label set as an ordered `BTreeSet` (conversion shim).
    pub fn labels_btree(&self) -> std::collections::BTreeSet<Label> {
        self.labels.to_btree()
    }

    /// The allowed configurations C(Π), sorted with equal parents contiguous.
    #[inline]
    pub fn configurations(&self) -> &[Configuration] {
        &self.configurations
    }

    /// The precomputed label set of the configuration at `index` (parallel to
    /// [`Self::configurations`]).
    #[inline]
    pub fn configuration_label_set(&self, index: usize) -> LabelSet {
        self.config_sets[index]
    }

    /// The labels that appear in at least one configuration.
    #[inline]
    pub fn used_labels(&self) -> LabelSet {
        self.used_labels
    }

    /// Number of active labels.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Number of allowed configurations.
    pub fn num_configurations(&self) -> usize {
        self.configurations.len()
    }

    /// A problem is *empty* when it has no allowed configurations or no labels;
    /// the pruning loop of Algorithm 2 bottoms out on empty problems.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty() || self.configurations.is_empty()
    }

    /// Returns the name of a label, panicking if it is not in the alphabet.
    pub fn label_name(&self, label: Label) -> &str {
        self.alphabet.name(label)
    }

    /// Looks up an active label by name.
    pub fn label_by_name(&self, name: &str) -> Option<Label> {
        self.alphabet
            .label(name)
            .filter(|&l| self.labels.contains(l))
    }

    #[inline]
    fn parent_range(&self, label: Label) -> std::ops::Range<usize> {
        match self.parent_ranges.get(label.index()) {
            Some(&(a, b)) => a as usize..b as usize,
            None => 0..0,
        }
    }

    /// The configurations whose parent is `label`.
    pub fn configurations_with_parent(
        &self,
        label: Label,
    ) -> impl Iterator<Item = &Configuration> + '_ {
        self.configurations[self.parent_range(label)].iter()
    }

    /// Definition 4.4: `label` has a *continuation below* if some configuration has
    /// it as the parent.
    pub fn has_continuation_below(&self, label: Label) -> bool {
        !self.parent_range(label).is_empty()
    }

    /// Definition 4.5: `label` has a continuation below *with labels in `allowed`*
    /// if some configuration `(label : σ₁ … σ_δ)` uses only labels from `allowed`
    /// (including `label` itself). A single subset test per configuration.
    #[inline]
    pub fn has_continuation_within(&self, label: Label, allowed: LabelSet) -> bool {
        if !allowed.contains(label) {
            return false;
        }
        self.parent_range(label)
            .any(|i| self.config_sets[i].is_subset(allowed))
    }

    /// Returns a configuration witnessing [`Self::has_continuation_within`], if any.
    pub fn continuation_within(&self, label: Label, allowed: LabelSet) -> Option<&Configuration> {
        if !allowed.contains(label) {
            return None;
        }
        self.parent_range(label)
            .find(|&i| self.config_sets[i].is_subset(allowed))
            .map(|i| &self.configurations[i])
    }

    /// Definition 4.3: the restriction of the problem to the labels in `subset`.
    /// Only configurations entirely within `subset` survive.
    pub fn restrict_to(&self, subset: LabelSet) -> LclProblem {
        let labels = self.labels & subset;
        // Filtering a sorted sequence keeps it sorted, so the canonical
        // constructor can skip re-sorting and re-validating.
        let configurations: Vec<Configuration> = self
            .configurations
            .iter()
            .zip(self.config_sets.iter())
            .filter(|(_, set)| set.is_subset(labels))
            .map(|(c, _)| c.clone())
            .collect();
        LclProblem::from_canonical(
            self.delta,
            Arc::clone(&self.alphabet),
            labels,
            configurations,
        )
    }

    /// Definition 4.6: the path-form of the problem, i.e. the δ = 1 problem whose
    /// configurations are all pairs `(a : b)` such that some configuration of the
    /// original problem has parent `a` and `b` among its children.
    pub fn path_form(&self) -> LclProblem {
        let mut pairs = std::collections::BTreeSet::new();
        for c in &self.configurations {
            for &child in c.children() {
                pairs.insert(Configuration::new(c.parent(), vec![child]));
            }
        }
        LclProblem::from_canonical(
            1,
            Arc::clone(&self.alphabet),
            self.labels,
            pairs.into_iter().collect(),
        )
    }

    /// Returns `true` if the configuration is allowed by the problem.
    pub fn allows(&self, configuration: &Configuration) -> bool {
        self.configurations[self.parent_range(configuration.parent())]
            .binary_search(configuration)
            .is_ok()
    }

    /// Returns `true` if a node labeled `parent` may have children carrying exactly
    /// the multiset `children` (order irrelevant).
    pub fn allows_parts(&self, parent: Label, children: &[Label]) -> bool {
        self.allows(&Configuration::new(parent, children.to_vec()))
    }

    /// Allocation-free twin of [`Self::allows_parts`]: checks the unordered
    /// multiset `children` against the configurations with this `parent` without
    /// building a [`Configuration`]. Used by verification hot paths (certificate
    /// trees check one node per call).
    pub fn allows_multiset(&self, parent: Label, children: &[Label]) -> bool {
        self.configurations[self.parent_range(parent)]
            .iter()
            .any(|c| crate::configuration::multiset_eq_sorted(c.children(), children))
    }

    /// The index range of [`Self::configurations`] whose parent is `label`.
    /// Together with [`Self::configuration_label_set`] this supports *masked*
    /// iteration over a restriction's configurations without materializing the
    /// restricted problem (see the `scratch` module).
    #[inline]
    pub fn parent_config_range(&self, label: Label) -> std::ops::Range<usize> {
        self.parent_range(label)
    }

    /// Checks that another problem is a *restriction* of this one: same δ, same
    /// alphabet, labels and configurations are subsets.
    pub fn is_restriction_of(&self, other: &LclProblem) -> bool {
        self.delta == other.delta
            && Arc::ptr_eq(&self.alphabet, &other.alphabet)
            && self.labels.is_subset(other.labels)
            && self.configurations.iter().all(|c| other.allows(c))
    }

    /// Canonical multi-line text form (one configuration per line), parseable back
    /// by [`crate::parser`]. Labels that appear in no configuration are listed on a
    /// trailing `labels:` line so the round trip preserves Σ exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for c in &self.configurations {
            out.push_str(&c.display(&self.alphabet));
            out.push('\n');
        }
        let unused: Vec<&str> = (self.labels - self.used_labels)
            .iter()
            .map(|l| self.alphabet.name(l))
            .collect();
        if !unused.is_empty() {
            out.push_str(&format!("labels: {}\n", unused.join(" ")));
        }
        out
    }
}

impl fmt::Display for LclProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Π(δ={}, |Σ|={}, |C|={})",
            self.delta,
            self.labels.len(),
            self.configurations.len()
        )
    }
}

impl std::str::FromStr for LclProblem {
    type Err = crate::parser::ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parser::parse_problem(s)
    }
}

/// Incremental construction of an [`LclProblem`] with automatic label interning.
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    delta: usize,
    alphabet: AlphabetBuilder,
    labels: LabelSet,
    configurations: Vec<(Label, Vec<Label>)>,
}

impl ProblemBuilder {
    /// Creates a builder for problems with the given δ.
    pub fn new(delta: usize) -> Self {
        assert!(delta >= 1, "delta must be at least 1");
        ProblemBuilder {
            delta,
            alphabet: AlphabetBuilder::new(),
            labels: LabelSet::EMPTY,
            configurations: Vec::new(),
        }
    }

    /// Declares a label (with no configuration); returns its index.
    pub fn label(&mut self, name: &str) -> Label {
        let l = self.alphabet.intern(name);
        self.labels.insert(l);
        l
    }

    /// Adds an allowed configuration given by label names.
    ///
    /// # Panics
    ///
    /// Panics if the number of children differs from δ.
    pub fn configuration(&mut self, parent: &str, children: &[&str]) -> &mut Self {
        assert_eq!(
            children.len(),
            self.delta,
            "configuration {parent} : {children:?} must have exactly {} children",
            self.delta
        );
        let p = self.label(parent);
        let cs: Vec<Label> = children.iter().map(|c| self.label(c)).collect();
        self.configurations.push((p, cs));
        self
    }

    /// Adds several configurations at once; each entry is `(parent, children)`.
    pub fn configurations(&mut self, entries: &[(&str, &[&str])]) -> &mut Self {
        for (p, cs) in entries {
            self.configuration(p, cs);
        }
        self
    }

    /// Finishes the builder into an immutable problem.
    pub fn build(self) -> LclProblem {
        let alphabet = self.alphabet.finish();
        let configurations = self
            .configurations
            .into_iter()
            .map(|(p, cs)| Configuration::new(p, cs))
            .collect();
        LclProblem::new(self.delta, alphabet, self.labels, configurations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3-coloring problem of Section 1.2.
    pub(crate) fn three_coloring() -> LclProblem {
        let mut b = LclProblem::builder(2);
        b.configurations(&[
            ("1", &["2", "2"]),
            ("1", &["2", "3"]),
            ("1", &["3", "3"]),
            ("2", &["1", "1"]),
            ("2", &["1", "3"]),
            ("2", &["3", "3"]),
            ("3", &["1", "1"]),
            ("3", &["1", "2"]),
            ("3", &["2", "2"]),
        ]);
        b.build()
    }

    /// The MIS problem of Section 1.3.
    pub(crate) fn mis() -> LclProblem {
        let mut b = LclProblem::builder(2);
        b.configurations(&[
            ("1", &["a", "a"]),
            ("1", &["a", "b"]),
            ("1", &["b", "b"]),
            ("a", &["b", "b"]),
            ("b", &["b", "1"]),
            ("b", &["1", "1"]),
        ]);
        b.build()
    }

    #[test]
    fn builder_produces_expected_counts() {
        let p = three_coloring();
        assert_eq!(p.delta(), 2);
        assert_eq!(p.num_labels(), 3);
        assert_eq!(p.num_configurations(), 9);
        assert!(!p.is_empty());
    }

    #[test]
    fn continuation_below() {
        let p = mis();
        let one = p.label_by_name("1").unwrap();
        let a = p.label_by_name("a").unwrap();
        let b = p.label_by_name("b").unwrap();
        assert!(p.has_continuation_below(one));
        assert!(p.has_continuation_below(a));
        assert!(p.has_continuation_below(b));
        // Within {1, b} the label a has no continuation; 1 and b do.
        let sub: LabelSet = [one, b].into_iter().collect();
        assert!(p.has_continuation_within(one, sub));
        assert!(p.has_continuation_within(b, sub));
        assert!(!p.has_continuation_within(a, sub));
    }

    #[test]
    fn restriction_drops_configurations() {
        let p = three_coloring();
        let one = p.label_by_name("1").unwrap();
        let two = p.label_by_name("2").unwrap();
        let sub: LabelSet = [one, two].into_iter().collect();
        let r = p.restrict_to(sub);
        assert_eq!(r.num_labels(), 2);
        // Only 1:22 and 2:11 survive.
        assert_eq!(r.num_configurations(), 2);
        assert!(r.is_restriction_of(&p));
        assert!(!p.is_restriction_of(&r));
    }

    #[test]
    fn path_form_of_three_coloring() {
        let p = three_coloring();
        let pf = p.path_form();
        assert_eq!(pf.delta(), 1);
        // All ordered pairs of distinct colors: 6 of them.
        assert_eq!(pf.num_configurations(), 6);
    }

    #[test]
    fn path_form_of_mis_matches_paper() {
        // Path form of (3): 1:a, 1:b, a:b, b:b, b:1.
        let p = mis();
        let pf = p.path_form();
        assert_eq!(pf.num_configurations(), 5);
        let one = p.label_by_name("1").unwrap();
        let a = p.label_by_name("a").unwrap();
        let b = p.label_by_name("b").unwrap();
        assert!(pf.allows_parts(one, &[a]));
        assert!(pf.allows_parts(one, &[b]));
        assert!(pf.allows_parts(a, &[b]));
        assert!(pf.allows_parts(b, &[b]));
        assert!(pf.allows_parts(b, &[one]));
        assert!(!pf.allows_parts(a, &[one]));
    }

    #[test]
    fn allows_is_order_insensitive() {
        let p = mis();
        let one = p.label_by_name("1").unwrap();
        let a = p.label_by_name("a").unwrap();
        let b = p.label_by_name("b").unwrap();
        assert!(p.allows_parts(one, &[b, a]));
        assert!(p.allows_parts(one, &[a, b]));
        assert!(!p.allows_parts(a, &[b, one]));
    }

    #[test]
    fn allows_multiset_agrees_with_allows_parts() {
        let p = mis();
        let labels: Vec<Label> = p.labels().iter().collect();
        for &parent in &labels {
            for &c1 in &labels {
                for &c2 in &labels {
                    assert_eq!(
                        p.allows_multiset(parent, &[c1, c2]),
                        p.allows_parts(parent, &[c1, c2]),
                        "parent {parent}, children ({c1}, {c2})"
                    );
                }
            }
        }
        // Wrong arity is simply not allowed.
        let one = p.label_by_name("1").unwrap();
        assert!(!p.allows_multiset(one, &[one]));
    }

    #[test]
    fn to_text_roundtrip() {
        let p = mis();
        let text = p.to_text();
        let reparsed: LclProblem = text.parse().unwrap();
        assert_eq!(reparsed.delta(), p.delta());
        assert_eq!(reparsed.num_labels(), p.num_labels());
        assert_eq!(reparsed.num_configurations(), p.num_configurations());
    }

    #[test]
    fn declared_but_unused_labels_are_kept() {
        let mut b = LclProblem::builder(2);
        b.configuration("x", &["x", "x"]);
        b.label("orphan");
        let p = b.build();
        assert_eq!(p.num_labels(), 2);
        let text = p.to_text();
        assert!(text.contains("labels: orphan"));
        let reparsed: LclProblem = text.parse().unwrap();
        assert_eq!(reparsed.num_labels(), 2);
    }

    #[test]
    fn labels_btree_shim_is_ordered() {
        let p = three_coloring();
        let btree = p.labels_btree();
        let via_iter: Vec<Label> = p.labels().iter().collect();
        assert_eq!(btree.into_iter().collect::<Vec<_>>(), via_iter);
    }

    #[test]
    #[should_panic(expected = "must have exactly 2 children")]
    fn builder_rejects_wrong_arity() {
        let mut b = LclProblem::builder(2);
        b.configuration("x", &["x"]);
    }
}
