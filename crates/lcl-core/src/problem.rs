//! LCL problems Π = (δ, Σ, C) on rooted regular trees (Definition 4.1).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::configuration::Configuration;
use crate::label::{Alphabet, AlphabetBuilder, Label};

/// An LCL problem in the rooted-regular-tree formalism of the paper: the number of
/// children `δ`, a finite set of labels `Σ`, and a set of allowed configurations `C`.
///
/// Problems are immutable after construction. The *active* label set `Σ` may be a
/// subset of the shared [`Alphabet`]: restrictions (Definition 4.3) keep the same
/// alphabet so label identities and names are stable across the whole analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LclProblem {
    delta: usize,
    alphabet: Arc<Alphabet>,
    labels: BTreeSet<Label>,
    configurations: BTreeSet<Configuration>,
}

impl LclProblem {
    /// Creates a problem from its parts.
    ///
    /// # Panics
    ///
    /// Panics if a configuration uses a label outside `labels`, has the wrong number
    /// of children, or if a label index is outside the alphabet.
    pub fn new(
        delta: usize,
        alphabet: Arc<Alphabet>,
        labels: BTreeSet<Label>,
        configurations: BTreeSet<Configuration>,
    ) -> Self {
        assert!(delta >= 1, "delta must be at least 1");
        for l in &labels {
            assert!(
                l.index() < alphabet.len(),
                "label {l} outside the alphabet"
            );
        }
        for c in &configurations {
            assert_eq!(
                c.delta(),
                delta,
                "configuration {} has {} children, expected {delta}",
                c.display(&alphabet),
                c.delta()
            );
            for l in c.labels() {
                assert!(
                    labels.contains(&l),
                    "configuration {} uses label {} not in the active label set",
                    c.display(&alphabet),
                    alphabet.name(l)
                );
            }
        }
        LclProblem {
            delta,
            alphabet,
            labels,
            configurations,
        }
    }

    /// Starts a [`ProblemBuilder`] for a problem with the given δ.
    pub fn builder(delta: usize) -> ProblemBuilder {
        ProblemBuilder::new(delta)
    }

    /// The number of children of internal nodes.
    #[inline]
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The shared alphabet mapping labels to names.
    #[inline]
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// The active label set Σ(Π).
    #[inline]
    pub fn labels(&self) -> &BTreeSet<Label> {
        &self.labels
    }

    /// The allowed configurations C(Π).
    #[inline]
    pub fn configurations(&self) -> &BTreeSet<Configuration> {
        &self.configurations
    }

    /// Number of active labels.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Number of allowed configurations.
    pub fn num_configurations(&self) -> usize {
        self.configurations.len()
    }

    /// A problem is *empty* when it has no allowed configurations or no labels;
    /// the pruning loop of Algorithm 2 bottoms out on empty problems.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty() || self.configurations.is_empty()
    }

    /// Returns the name of a label, panicking if it is not in the alphabet.
    pub fn label_name(&self, label: Label) -> &str {
        self.alphabet.name(label)
    }

    /// Looks up an active label by name.
    pub fn label_by_name(&self, name: &str) -> Option<Label> {
        self.alphabet
            .label(name)
            .filter(|l| self.labels.contains(l))
    }

    /// The configurations whose parent is `label`.
    pub fn configurations_with_parent(
        &self,
        label: Label,
    ) -> impl Iterator<Item = &Configuration> + '_ {
        self.configurations
            .iter()
            .filter(move |c| c.parent() == label)
    }

    /// Definition 4.4: `label` has a *continuation below* if some configuration has
    /// it as the parent.
    pub fn has_continuation_below(&self, label: Label) -> bool {
        self.configurations_with_parent(label).next().is_some()
    }

    /// Definition 4.5: `label` has a continuation below *with labels in `allowed`*
    /// if some configuration `(label : σ₁ … σ_δ)` uses only labels from `allowed`
    /// (including `label` itself).
    pub fn has_continuation_within(&self, label: Label, allowed: &BTreeSet<Label>) -> bool {
        self.continuation_within(label, allowed).is_some()
    }

    /// Returns a configuration witnessing [`Self::has_continuation_within`], if any.
    pub fn continuation_within(
        &self,
        label: Label,
        allowed: &BTreeSet<Label>,
    ) -> Option<&Configuration> {
        if !allowed.contains(&label) {
            return None;
        }
        self.configurations_with_parent(label)
            .find(|c| c.uses_only(|l| allowed.contains(&l)))
    }

    /// Definition 4.3: the restriction of the problem to the labels in `subset`.
    /// Only configurations entirely within `subset` survive.
    pub fn restrict_to(&self, subset: &BTreeSet<Label>) -> LclProblem {
        let labels: BTreeSet<Label> = self.labels.intersection(subset).copied().collect();
        let configurations = self
            .configurations
            .iter()
            .filter(|c| c.uses_only(|l| labels.contains(&l)))
            .cloned()
            .collect();
        LclProblem {
            delta: self.delta,
            alphabet: Arc::clone(&self.alphabet),
            labels,
            configurations,
        }
    }

    /// Definition 4.6: the path-form of the problem, i.e. the δ = 1 problem whose
    /// configurations are all pairs `(a : b)` such that some configuration of the
    /// original problem has parent `a` and `b` among its children.
    pub fn path_form(&self) -> LclProblem {
        let mut pairs = BTreeSet::new();
        for c in &self.configurations {
            for &child in c.children() {
                pairs.insert(Configuration::new(c.parent(), vec![child]));
            }
        }
        LclProblem {
            delta: 1,
            alphabet: Arc::clone(&self.alphabet),
            labels: self.labels.clone(),
            configurations: pairs,
        }
    }

    /// Returns `true` if the configuration is allowed by the problem.
    pub fn allows(&self, configuration: &Configuration) -> bool {
        self.configurations.contains(configuration)
    }

    /// Returns `true` if a node labeled `parent` may have children carrying exactly
    /// the multiset `children` (order irrelevant).
    pub fn allows_parts(&self, parent: Label, children: &[Label]) -> bool {
        self.allows(&Configuration::new(parent, children.to_vec()))
    }

    /// Checks that another problem is a *restriction* of this one: same δ, same
    /// alphabet, labels and configurations are subsets.
    pub fn is_restriction_of(&self, other: &LclProblem) -> bool {
        self.delta == other.delta
            && Arc::ptr_eq(&self.alphabet, &other.alphabet)
            && self.labels.is_subset(&other.labels)
            && self.configurations.is_subset(&other.configurations)
    }

    /// Canonical multi-line text form (one configuration per line), parseable back
    /// by [`crate::parser`]. Labels that appear in no configuration are listed on a
    /// trailing `labels:` line so the round trip preserves Σ exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for c in &self.configurations {
            out.push_str(&c.display(&self.alphabet));
            out.push('\n');
        }
        let unused: Vec<&str> = self
            .labels
            .iter()
            .filter(|l| self.configurations.iter().all(|c| c.labels().all(|x| x != **l)))
            .map(|&l| self.alphabet.name(l))
            .collect();
        if !unused.is_empty() {
            out.push_str(&format!("labels: {}\n", unused.join(" ")));
        }
        out
    }
}

impl fmt::Display for LclProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Π(δ={}, |Σ|={}, |C|={})",
            self.delta,
            self.labels.len(),
            self.configurations.len()
        )
    }
}

impl std::str::FromStr for LclProblem {
    type Err = crate::parser::ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parser::parse_problem(s)
    }
}

/// Incremental construction of an [`LclProblem`] with automatic label interning.
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    delta: usize,
    alphabet: AlphabetBuilder,
    labels: BTreeSet<Label>,
    configurations: Vec<(Label, Vec<Label>)>,
}

impl ProblemBuilder {
    /// Creates a builder for problems with the given δ.
    pub fn new(delta: usize) -> Self {
        assert!(delta >= 1, "delta must be at least 1");
        ProblemBuilder {
            delta,
            alphabet: AlphabetBuilder::new(),
            labels: BTreeSet::new(),
            configurations: Vec::new(),
        }
    }

    /// Declares a label (with no configuration); returns its index.
    pub fn label(&mut self, name: &str) -> Label {
        let l = self.alphabet.intern(name);
        self.labels.insert(l);
        l
    }

    /// Adds an allowed configuration given by label names.
    ///
    /// # Panics
    ///
    /// Panics if the number of children differs from δ.
    pub fn configuration(&mut self, parent: &str, children: &[&str]) -> &mut Self {
        assert_eq!(
            children.len(),
            self.delta,
            "configuration {parent} : {children:?} must have exactly {} children",
            self.delta
        );
        let p = self.label(parent);
        let cs: Vec<Label> = children.iter().map(|c| self.label(c)).collect();
        self.configurations.push((p, cs));
        self
    }

    /// Adds several configurations at once; each entry is `(parent, children)`.
    pub fn configurations(&mut self, entries: &[(&str, &[&str])]) -> &mut Self {
        for (p, cs) in entries {
            self.configuration(p, cs);
        }
        self
    }

    /// Finishes the builder into an immutable problem.
    pub fn build(self) -> LclProblem {
        let alphabet = self.alphabet.finish();
        let configurations = self
            .configurations
            .into_iter()
            .map(|(p, cs)| Configuration::new(p, cs))
            .collect();
        LclProblem::new(self.delta, alphabet, self.labels, configurations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3-coloring problem of Section 1.2.
    pub(crate) fn three_coloring() -> LclProblem {
        let mut b = LclProblem::builder(2);
        b.configurations(&[
            ("1", &["2", "2"]),
            ("1", &["2", "3"]),
            ("1", &["3", "3"]),
            ("2", &["1", "1"]),
            ("2", &["1", "3"]),
            ("2", &["3", "3"]),
            ("3", &["1", "1"]),
            ("3", &["1", "2"]),
            ("3", &["2", "2"]),
        ]);
        b.build()
    }

    /// The MIS problem of Section 1.3.
    pub(crate) fn mis() -> LclProblem {
        let mut b = LclProblem::builder(2);
        b.configurations(&[
            ("1", &["a", "a"]),
            ("1", &["a", "b"]),
            ("1", &["b", "b"]),
            ("a", &["b", "b"]),
            ("b", &["b", "1"]),
            ("b", &["1", "1"]),
        ]);
        b.build()
    }

    #[test]
    fn builder_produces_expected_counts() {
        let p = three_coloring();
        assert_eq!(p.delta(), 2);
        assert_eq!(p.num_labels(), 3);
        assert_eq!(p.num_configurations(), 9);
        assert!(!p.is_empty());
    }

    #[test]
    fn continuation_below() {
        let p = mis();
        let one = p.label_by_name("1").unwrap();
        let a = p.label_by_name("a").unwrap();
        let b = p.label_by_name("b").unwrap();
        assert!(p.has_continuation_below(one));
        assert!(p.has_continuation_below(a));
        assert!(p.has_continuation_below(b));
        // Within {1, b} the label a has no continuation; 1 and b do.
        let sub: BTreeSet<Label> = [one, b].into_iter().collect();
        assert!(p.has_continuation_within(one, &sub));
        assert!(p.has_continuation_within(b, &sub));
        assert!(!p.has_continuation_within(a, &sub));
    }

    #[test]
    fn restriction_drops_configurations() {
        let p = three_coloring();
        let one = p.label_by_name("1").unwrap();
        let two = p.label_by_name("2").unwrap();
        let sub: BTreeSet<Label> = [one, two].into_iter().collect();
        let r = p.restrict_to(&sub);
        assert_eq!(r.num_labels(), 2);
        // Only 1:22 and 2:11 survive.
        assert_eq!(r.num_configurations(), 2);
        assert!(r.is_restriction_of(&p));
        assert!(!p.is_restriction_of(&r));
    }

    #[test]
    fn path_form_of_three_coloring() {
        let p = three_coloring();
        let pf = p.path_form();
        assert_eq!(pf.delta(), 1);
        // All ordered pairs of distinct colors: 6 of them.
        assert_eq!(pf.num_configurations(), 6);
    }

    #[test]
    fn path_form_of_mis_matches_paper() {
        // Path form of (3): 1:a, 1:b, a:b, b:b, b:1.
        let p = mis();
        let pf = p.path_form();
        assert_eq!(pf.num_configurations(), 5);
        let one = p.label_by_name("1").unwrap();
        let a = p.label_by_name("a").unwrap();
        let b = p.label_by_name("b").unwrap();
        assert!(pf.allows_parts(one, &[a]));
        assert!(pf.allows_parts(one, &[b]));
        assert!(pf.allows_parts(a, &[b]));
        assert!(pf.allows_parts(b, &[b]));
        assert!(pf.allows_parts(b, &[one]));
        assert!(!pf.allows_parts(a, &[one]));
    }

    #[test]
    fn allows_is_order_insensitive() {
        let p = mis();
        let one = p.label_by_name("1").unwrap();
        let a = p.label_by_name("a").unwrap();
        let b = p.label_by_name("b").unwrap();
        assert!(p.allows_parts(one, &[b, a]));
        assert!(p.allows_parts(one, &[a, b]));
        assert!(!p.allows_parts(a, &[b, one]));
    }

    #[test]
    fn to_text_roundtrip() {
        let p = mis();
        let text = p.to_text();
        let reparsed: LclProblem = text.parse().unwrap();
        assert_eq!(reparsed.delta(), p.delta());
        assert_eq!(reparsed.num_labels(), p.num_labels());
        assert_eq!(reparsed.num_configurations(), p.num_configurations());
    }

    #[test]
    fn declared_but_unused_labels_are_kept() {
        let mut b = LclProblem::builder(2);
        b.configuration("x", &["x", "x"]);
        b.label("orphan");
        let p = b.build();
        assert_eq!(p.num_labels(), 2);
        let text = p.to_text();
        assert!(text.contains("labels: orphan"));
        let reparsed: LclProblem = text.parse().unwrap();
        assert_eq!(reparsed.num_labels(), 2);
    }

    #[test]
    #[should_panic(expected = "must have exactly 2 children")]
    fn builder_rejects_wrong_arity() {
        let mut b = LclProblem::builder(2);
        b.configuration("x", &["x"]);
    }
}
