//! A centralized greedy solver used as a correctness oracle.
//!
//! The solver labels the tree top-down inside the self-sustaining label set of
//! [`crate::solvability::solvable_labels`]: the root takes the smallest kept label,
//! and every internal node extends the labeling with the smallest allowed
//! configuration whose labels are all kept. It is *not* a distributed algorithm
//! (it takes Θ(depth) rounds viewed distributively); it exists so that tests and
//! experiments have a simple, independent way to produce valid solutions and to
//! cross-check the outputs of the real solvers in `lcl-algorithms`.

use lcl_trees::RootedTree;

use crate::labeling::Labeling;
use crate::problem::LclProblem;
use crate::solvability::solvable_labels;

/// Solves `problem` on `tree` greedily, or returns `None` if the problem is
/// unsolvable (its self-sustaining label set is empty).
pub fn solve(problem: &LclProblem, tree: &RootedTree) -> Option<Labeling> {
    let kept = solvable_labels(problem);
    let first = kept.first()?;
    let mut labeling = Labeling::for_tree(tree);
    labeling.set(tree.root(), first);
    for v in tree.bfs_order() {
        if tree.is_leaf(v) {
            continue;
        }
        let parent_label = labeling.get(v).expect("BFS order labels parents first");
        let config = problem
            .continuation_within(parent_label, kept)
            .expect("kept labels always have a continuation within the kept set");
        for (&child, &label) in tree.children(v).iter().zip(config.children()) {
            labeling.set(child, label);
        }
    }
    Some(labeling)
}

/// Completes a partial labeling downwards: every already-labeled node keeps its
/// label, and unlabeled descendants of labeled nodes are filled greedily within
/// `problem`'s self-sustaining set. Returns `None` if some labeled node's label has
/// no continuation within that set while it still has unlabeled children.
///
/// This helper is used by the certificate-driven solvers to finish the bottom
/// fringe of the tree (below the last complete splitting layer).
pub fn complete_downwards(
    problem: &LclProblem,
    tree: &RootedTree,
    labeling: &mut Labeling,
) -> Option<()> {
    let kept = solvable_labels(problem);
    for v in tree.bfs_order() {
        if tree.is_leaf(v) {
            continue;
        }
        let parent_label = labeling.get(v)?;
        if tree.children(v).iter().all(|&c| labeling.is_set(c)) {
            continue;
        }
        let fixed: Vec<_> = tree.children(v).iter().map(|&c| labeling.get(c)).collect();
        if fixed.iter().all(|f| f.is_none()) {
            // No child constrained yet: extend with any continuation in the kept set.
            let config = problem.continuation_within(parent_label, kept)?;
            for (&child, &label) in tree.children(v).iter().zip(config.children()) {
                labeling.set(child, label);
            }
        } else {
            // Some children are fixed: pick a configuration consistent with them
            // whose remaining labels stay in the kept set.
            let chosen = problem
                .configurations_with_parent(parent_label)
                .find(|cfg| {
                    cfg.uses_only(|l| kept.contains(l) || fixed.contains(&Some(l)))
                        && compatible(cfg.children(), &fixed)
                })?;
            let assignment = assign(chosen.children(), &fixed)?;
            for (&c, &l) in tree.children(v).iter().zip(assignment.iter()) {
                labeling.set(c, l);
            }
        }
    }
    Some(())
}

/// Checks that the multiset `children` can be arranged so that every slot with a
/// fixed label receives exactly that label.
fn compatible(children: &[crate::label::Label], fixed: &[Option<crate::label::Label>]) -> bool {
    assign(children, fixed).is_some()
}

/// Arranges `children` so fixed slots keep their labels; free slots get the rest.
fn assign(
    children: &[crate::label::Label],
    fixed: &[Option<crate::label::Label>],
) -> Option<Vec<crate::label::Label>> {
    let mut remaining: Vec<crate::label::Label> = children.to_vec();
    let mut out = vec![None; fixed.len()];
    for (i, f) in fixed.iter().enumerate() {
        if let Some(l) = f {
            let pos = remaining.iter().position(|r| r == l)?;
            remaining.swap_remove(pos);
            out[i] = Some(*l);
        }
    }
    let mut it = remaining.into_iter();
    for slot in out.iter_mut() {
        if slot.is_none() {
            *slot = Some(it.next().expect("counts match"));
        }
    }
    Some(
        out.into_iter()
            .map(|o| o.expect("all slots filled"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_trees::generators;

    #[test]
    fn greedy_solves_three_coloring() {
        let p: LclProblem = "1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n"
            .parse()
            .unwrap();
        for seed in 0..3 {
            let tree = generators::random_full(2, 201, seed);
            let labeling = solve(&p, &tree).unwrap();
            labeling.verify(&tree, &p).unwrap();
        }
    }

    #[test]
    fn greedy_solves_mis() {
        let p: LclProblem = "1 : a a\n1 : a b\n1 : b b\na : b b\nb : b 1\nb : 1 1\n"
            .parse()
            .unwrap();
        let tree = generators::balanced(2, 6);
        let labeling = solve(&p, &tree).unwrap();
        labeling.verify(&tree, &p).unwrap();
    }

    #[test]
    fn greedy_returns_none_for_unsolvable() {
        let p: LclProblem = "a : b b\nb : c c\n".parse().unwrap();
        let tree = generators::balanced(2, 4);
        assert!(solve(&p, &tree).is_none());
    }

    #[test]
    fn greedy_handles_delta_three() {
        let p: LclProblem = "1 : 2 2 2\n2 : 1 1 1\n".parse().unwrap();
        let tree = generators::random_full(3, 121, 11);
        let labeling = solve(&p, &tree).unwrap();
        labeling.verify(&tree, &p).unwrap();
    }

    #[test]
    fn complete_downwards_respects_prefilled_labels() {
        let p: LclProblem = "1:22\n2:11\n".parse().unwrap();
        let one = p.label_by_name("1").unwrap();
        let tree = generators::balanced(2, 4);
        let mut labeling = Labeling::for_tree(&tree);
        labeling.set(tree.root(), one);
        complete_downwards(&p, &tree, &mut labeling).unwrap();
        assert!(labeling.is_complete());
        labeling.verify(&tree, &p).unwrap();
        assert_eq!(labeling.get(tree.root()), Some(one));
    }
}
