//! Section 5: the super-logarithmic region.
//!
//! Implements Algorithm 1 (`removePathInflexibleConfigurations`) and Algorithm 2
//! (`findLogCertificate`), which together decide in polynomial time whether a
//! problem's round complexity is O(log n) or n^{Ω(1)} (Theorem 5.3). When a
//! certificate exists it is the restriction Π_pf of the problem to the labels of a
//! minimal absorbing subgraph of the pruned automaton; Theorem 5.1 turns it into an
//! O(log n) CONGEST algorithm (implemented in `lcl-algorithms`), and when it does
//! not exist the pruning sequence Σ₁, …, Σ_k witnesses an Ω(n^{1/k}) lower bound
//! (Theorem 5.2).

use crate::automaton::Automaton;
use crate::label::Label;
use crate::label_set::LabelSet;
use crate::problem::LclProblem;

/// Algorithm 1: the restriction of `problem` to its path-flexible labels.
///
/// Note that labels which were path-flexible in the input can become path-inflexible
/// in the output; Algorithm 2 therefore iterates this procedure to a fixed point.
pub fn remove_path_inflexible(problem: &LclProblem) -> LclProblem {
    let automaton = Automaton::of(problem);
    problem.restrict_to(automaton.flexible_states())
}

/// The certificate for O(log n) solvability produced by Algorithm 2: a non-empty
/// path-flexible restriction Π_pf whose automaton is strongly connected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogCertificate {
    /// The restriction Π_pf of the original problem to the labels of a minimal
    /// absorbing subgraph of the pruned automaton.
    pub problem_pf: LclProblem,
    /// The maximum flexibility (Definition 4.8) over the labels of Π_pf.
    pub max_flexibility: usize,
}

impl LogCertificate {
    /// The rake-and-compress parameter used by the O(log n) algorithm of
    /// Theorem 5.1: `max flexibility + |Σ(Π_pf)|`.
    pub fn rcp_parameter(&self) -> usize {
        self.max_flexibility + self.problem_pf.num_labels()
    }

    /// Verifies the properties guaranteed by Lemma 5.5: the certificate problem is
    /// non-empty, a restriction of `original`, all of its states are flexible, its
    /// automaton is strongly connected and has at least one edge, and every label
    /// has a continuation below within the certificate labels.
    pub fn verify(&self, original: &LclProblem) -> Result<(), String> {
        if self.problem_pf.is_empty() {
            return Err("certificate problem is empty".into());
        }
        if !self.problem_pf.is_restriction_of(original) {
            return Err("certificate problem is not a restriction of the original".into());
        }
        let automaton = Automaton::of(&self.problem_pf);
        if !automaton.is_strongly_connected() {
            return Err("certificate automaton is not strongly connected".into());
        }
        if automaton.num_edges() == 0 {
            return Err("certificate automaton has no edges".into());
        }
        let labels = self.problem_pf.labels();
        for l in labels {
            match automaton.flexibility(l) {
                None => {
                    return Err(format!(
                        "label {} is inflexible in the certificate",
                        self.problem_pf.label_name(l)
                    ))
                }
                Some(f) if f > self.max_flexibility => {
                    return Err(format!(
                        "stored max flexibility {} is below the flexibility {} of {}",
                        self.max_flexibility,
                        f,
                        self.problem_pf.label_name(l)
                    ))
                }
                Some(_) => {}
            }
            if !self.problem_pf.has_continuation_within(l, labels) {
                return Err(format!(
                    "label {} has no continuation below within the certificate",
                    self.problem_pf.label_name(l)
                ));
            }
        }
        Ok(())
    }
}

/// The full outcome of Algorithm 2, including the pruning trace shown in Figure 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogCertificateAnalysis {
    /// The label sets Σ₁, Σ₂, …, Σ_k removed by the successive iterations of
    /// Algorithm 1 (only non-empty removals are recorded).
    pub pruned_sets: Vec<LabelSet>,
    /// The fixed point Π_k reached by the pruning loop (possibly empty).
    pub fixpoint: LclProblem,
    /// The certificate, if the fixed point is non-empty.
    pub certificate: Option<LogCertificate>,
}

impl LogCertificateAnalysis {
    /// The number of pruning iterations `k`. When no certificate exists this is the
    /// exponent of the Ω(n^{1/k}) lower bound of Theorem 5.2.
    pub fn iterations(&self) -> usize {
        self.pruned_sets.len()
    }

    /// `true` if a certificate for O(log n) solvability exists.
    pub fn has_certificate(&self) -> bool {
        self.certificate.is_some()
    }

    /// The pruning trace as ordered sets (conversion shim for report output).
    pub fn pruned_sets_btree(&self) -> Vec<std::collections::BTreeSet<Label>> {
        self.pruned_sets.iter().map(|s| s.to_btree()).collect()
    }
}

/// Iterates Algorithm 1 to its fixed point, returning the fixed point and the
/// non-empty label sets removed along the way (Σ₁, …, Σ_k). This is the
/// report-building form that materializes each restriction; the decision-only
/// fast path [`crate::classifier::classify_complexity`] runs the allocation-free
/// masked twin [`crate::scratch::prune_fixpoint_masked`] instead, and the
/// `scratch` module's differential tests assert the two agree on both the
/// fixpoint labels and the iteration count `k`.
pub(crate) fn prune_to_fixpoint(problem: &LclProblem) -> (LclProblem, Vec<LabelSet>) {
    let mut current = problem.clone();
    let mut pruned_sets = Vec::new();
    loop {
        let next = remove_path_inflexible(&current);
        if next == current {
            break;
        }
        let removed = current.labels() - next.labels();
        if !removed.is_empty() {
            pruned_sets.push(removed);
        }
        current = next;
    }
    (current, pruned_sets)
}

/// Algorithm 2: `findLogCertificate`. Iterates Algorithm 1 to a fixed point; if the
/// fixed point is empty the problem requires n^{Ω(1)} rounds, otherwise the
/// restriction to a minimal absorbing subgraph of the fixed point's automaton is a
/// certificate for O(log n) solvability.
pub fn find_log_certificate(problem: &LclProblem) -> LogCertificateAnalysis {
    let (current, pruned_sets) = prune_to_fixpoint(problem);

    let certificate = if current.is_empty() {
        None
    } else {
        let automaton = Automaton::of(&current);
        let absorbing = automaton
            .minimal_absorbing_component()
            .expect("non-empty automaton has a minimal absorbing subgraph");
        let problem_pf = current.restrict_to(absorbing);
        let pf_automaton = Automaton::of(&problem_pf);
        let max_flexibility = problem_pf
            .labels()
            .iter()
            .map(|l| {
                pf_automaton
                    .flexibility(l)
                    .expect("labels of the absorbing component stay flexible (Lemma 5.5)")
            })
            .max()
            .unwrap_or(0);
        Some(LogCertificate {
            problem_pf,
            max_flexibility,
        })
    };

    LogCertificateAnalysis {
        pruned_sets,
        fixpoint: current,
        certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(text: &str) -> LclProblem {
        text.parse().unwrap()
    }

    /// Figure 2a: Π₀, the combination of branch 2-coloring and proper 2-coloring.
    fn pi0() -> LclProblem {
        problem("a : b b\nb : a a\n1 : 1 2\n2 : 1 1\n")
    }

    #[test]
    fn algorithm_1_on_pi0_removes_a_and_b() {
        // Figure 2d: Π₁ is the restriction to {1, 2}.
        let p = pi0();
        let pruned = remove_path_inflexible(&p);
        assert_eq!(pruned.num_labels(), 2);
        assert!(pruned.label_by_name("1").is_some());
        assert!(pruned.label_by_name("2").is_some());
        assert!(pruned.label_by_name("a").is_none());
        assert_eq!(pruned.num_configurations(), 2);
    }

    #[test]
    fn figure_2_pruning_trace() {
        // Algorithm 2 on Π₀ removes {a, b} in one iteration and stops with the
        // branch-2-coloring problem as Π_pf (Figure 2g).
        let p = pi0();
        let analysis = find_log_certificate(&p);
        assert_eq!(analysis.iterations(), 1);
        let removed = analysis.pruned_sets[0];
        let names: Vec<&str> = removed.iter().map(|l| p.label_name(l)).collect();
        assert_eq!(names, vec!["a", "b"]);
        let cert = analysis.certificate.expect("Π₀ is O(log n) solvable");
        assert_eq!(cert.problem_pf.num_labels(), 2);
        assert_eq!(cert.problem_pf.num_configurations(), 2);
        cert.verify(&p).unwrap();
    }

    #[test]
    fn branch_two_coloring_has_certificate() {
        // Problem (5): complexity Θ(log n), so a certificate must exist.
        let p = problem("1 : 1 2\n2 : 1 1\n");
        let analysis = find_log_certificate(&p);
        assert!(analysis.has_certificate());
        assert_eq!(analysis.iterations(), 0);
        let cert = analysis.certificate.unwrap();
        assert_eq!(cert.problem_pf.num_labels(), 2);
        cert.verify(&p).unwrap();
        assert!(cert.rcp_parameter() >= 3);
    }

    #[test]
    fn two_coloring_has_no_certificate() {
        // Problem (2): complexity Θ(n); pruning empties the problem in one step.
        let p = problem("1:22\n2:11\n");
        let analysis = find_log_certificate(&p);
        assert!(!analysis.has_certificate());
        assert_eq!(analysis.iterations(), 1);
        assert!(analysis.fixpoint.is_empty());
    }

    #[test]
    fn three_coloring_certificate_covers_all_labels() {
        let p = problem("1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n");
        let analysis = find_log_certificate(&p);
        let cert = analysis.certificate.unwrap();
        assert_eq!(cert.problem_pf.num_labels(), 3);
        assert_eq!(cert.max_flexibility, 2);
        cert.verify(&p).unwrap();
    }

    #[test]
    fn iterated_pruning_takes_multiple_steps() {
        // A problem engineered so that removing the first inflexible set makes a
        // second set inflexible: the Π₂ construction of Section 8 (k = 2).
        let p = problem(crate::test_fixtures::SECTION_8_DEPTH_TWO);
        let analysis = find_log_certificate(&p);
        assert!(!analysis.has_certificate());
        assert_eq!(analysis.iterations(), 2);
        // First iteration removes the inner 2-coloring {a1, b1}; the second removes
        // the rest.
        let first: Vec<&str> = analysis.pruned_sets[0]
            .iter()
            .map(|l| p.label_name(l))
            .collect();
        assert_eq!(first, vec!["a1", "b1"]);
    }

    #[test]
    fn unused_labels_are_pruned_immediately() {
        let p = problem("1 : 1 1\nlabels: z\n");
        let analysis = find_log_certificate(&p);
        assert!(analysis.has_certificate());
        let cert = analysis.certificate.unwrap();
        assert_eq!(cert.problem_pf.num_labels(), 1);
        assert_eq!(cert.max_flexibility, 1);
    }

    #[test]
    fn certificate_verification_rejects_tampering() {
        let p = problem("1 : 1 2\n2 : 1 1\n");
        let analysis = find_log_certificate(&p);
        let mut cert = analysis.certificate.unwrap();
        cert.max_flexibility = 0;
        assert!(cert.verify(&p).is_err());
    }

    #[test]
    fn empty_problem_has_no_certificate() {
        let p = problem("labels: a b c\n");
        let analysis = find_log_certificate(&p);
        assert!(!analysis.has_certificate());
        assert!(analysis.fixpoint.is_empty());
    }
}
