//! The top-level classifier: given a problem Π, decide whether its distributed
//! round complexity is O(1), Θ(log* n), Θ(log n), or n^{Θ(1)} (Sections 5–7).
//!
//! The decision combines the three certificate searches, exploiting the nesting of
//! the classes so that the cheap polynomial-time test (Algorithm 2) runs first and
//! the exponential ones (Algorithms 4 and 5) only run on problems already known to
//! be O(log n):
//!
//! 1. solvability (greatest fixed point of continuations) — otherwise `Unsolvable`;
//! 2. Algorithm 2 — no certificate ⇒ `Polynomial` with the *exact* exponent
//!    computed by the trim/flexible-SCC descent of Lemmas 5.28–5.29 (see the
//!    [`crate::poly`] module; the pruning iteration count of Theorem 5.2 is an
//!    upper bound on the exponent and stays available through the report);
//! 3. Algorithm 4 — no certificate ⇒ `Log` (Θ(log n), Theorem 5.1 + Lemma 6.7);
//! 4. Algorithm 5 — no certificate ⇒ `LogStar` (Θ(log* n), Theorem 6.3 +
//!    Theorem 7.7), otherwise `Constant` (Theorem 7.2).

use std::fmt;

use crate::builder::CertificateBuildError;
use crate::certificate::{ConstantCertificate, LogStarCertificate};
use crate::constant::ConstantSearchResult;
use crate::label_set::LabelSet;
use crate::log_certificate::{find_log_certificate, LogCertificate, LogCertificateAnalysis};
use crate::log_star::LogStarSearchResult;
use crate::poly::{find_poly_certificate, PolyCertificate};
use crate::problem::LclProblem;
use crate::solvability::solvable_labels;

/// The four complexity classes of the paper, plus `Unsolvable` for problems that
/// admit no solution on deep trees at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Complexity {
    /// No labeling satisfies the constraints on sufficiently deep full δ-ary trees.
    Unsolvable,
    /// O(1) rounds (deterministic and randomized, LOCAL and CONGEST).
    Constant,
    /// Θ(log* n) rounds.
    LogStar,
    /// Θ(log n) rounds.
    Log,
    /// Θ(n^{1/k}) rounds for the recorded exponent `k`: both the O(n^{1/k})
    /// upper bound and the Ω(n^{1/k}) lower bound, witnessed by the maximal
    /// trim/flexible-SCC chain of [`crate::poly::PolyCertificate`].
    Polynomial {
        /// The exact exponent `k` of Θ(n^{1/k}); `k = 1` means Θ(n).
        exponent: usize,
    },
}

impl Complexity {
    /// `true` for every class that admits some algorithm (everything except
    /// [`Complexity::Unsolvable`]).
    pub fn is_solvable(self) -> bool {
        self != Complexity::Unsolvable
    }

    /// A short machine-friendly name for tables (`O(1)`, `log*`, `log`, `poly`,
    /// `unsolvable`).
    pub fn short_name(self) -> &'static str {
        match self {
            Complexity::Unsolvable => "unsolvable",
            Complexity::Constant => "O(1)",
            Complexity::LogStar => "log*",
            Complexity::Log => "log",
            Complexity::Polynomial { .. } => "poly",
        }
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::Unsolvable => write!(f, "unsolvable"),
            Complexity::Constant => write!(f, "O(1)"),
            Complexity::LogStar => write!(f, "Θ(log* n)"),
            Complexity::Log => write!(f, "Θ(log n)"),
            Complexity::Polynomial { exponent: 1 } => write!(f, "Θ(n)"),
            Complexity::Polynomial { exponent } => write!(f, "Θ(n^(1/{exponent}))"),
        }
    }
}

/// Tunable limits of the classifier. Only affects how large the *explicit*
/// certificate trees may grow when materialized; decisions are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifierConfig {
    /// Maximum number of nodes per materialized certificate tree.
    pub max_certificate_nodes: usize,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            max_certificate_nodes: 4_000_000,
        }
    }
}

/// The full outcome of classifying a problem: the complexity class plus every
/// certificate and trace the decision rests on.
#[derive(Debug, Clone)]
pub struct ClassificationReport {
    /// The problem that was classified.
    pub problem: LclProblem,
    /// The configuration the classifier ran with; certificate materialization
    /// through the report respects its limits.
    pub config: ClassifierConfig,
    /// The resulting complexity class.
    pub complexity: Complexity,
    /// The greatest self-sustaining label set (empty iff unsolvable).
    pub solvable_labels: LabelSet,
    /// Algorithm 2's analysis: pruning trace, fixed point, and (possibly) the
    /// certificate for O(log n) solvability.
    pub log_analysis: LogCertificateAnalysis,
    /// Algorithm 4's result, when a uniform certificate exists.
    pub log_star: Option<LogStarSearchResult>,
    /// Algorithm 5's result, when a certificate for O(1) solvability exists.
    pub constant: Option<ConstantSearchResult>,
    /// The exact-exponent certificate, present exactly when the class is
    /// [`Complexity::Polynomial`].
    pub poly: Option<PolyCertificate>,
}

impl ClassificationReport {
    /// The certificate for O(log n) solvability, if any.
    pub fn log_certificate(&self) -> Option<&LogCertificate> {
        self.log_analysis.certificate.as_ref()
    }

    /// The Θ(n^{1/k}) certificate (the maximal trim/flexible-SCC chain), if
    /// the problem is in the polynomial region.
    pub fn poly_certificate(&self) -> Option<&PolyCertificate> {
        self.poly.as_ref()
    }

    /// Materializes the uniform certificate for O(log* n) solvability, if any,
    /// bounded by the node budget of the report's [`ClassifierConfig`].
    pub fn log_star_certificate(
        &self,
    ) -> Option<Result<LogStarCertificate, CertificateBuildError>> {
        self.log_star
            .as_ref()
            .map(|r| r.materialize(self.config.max_certificate_nodes))
    }

    /// Materializes the certificate for O(1) solvability, if any, bounded by the
    /// node budget of the report's [`ClassifierConfig`].
    pub fn constant_certificate(
        &self,
    ) -> Option<Result<ConstantCertificate, CertificateBuildError>> {
        self.constant
            .as_ref()
            .map(|r| r.materialize(self.config.max_certificate_nodes))
    }

    /// A multi-line human-readable summary of the decision and its witnesses.
    pub fn describe(&self) -> String {
        let alphabet = self.problem.alphabet();
        let mut out = String::new();
        out.push_str(&format!(
            "problem: δ = {}, |Σ| = {}, |C| = {}\n",
            self.problem.delta(),
            self.problem.num_labels(),
            self.problem.num_configurations()
        ));
        out.push_str(&format!("complexity: {}\n", self.complexity));
        out.push_str(&format!(
            "solvable labels: {}\n",
            alphabet.format_set(self.solvable_labels)
        ));
        for (i, removed) in self.log_analysis.pruned_sets.iter().enumerate() {
            out.push_str(&format!(
                "pruning iteration {}: removed path-inflexible labels {}\n",
                i + 1,
                alphabet.format_set(*removed)
            ));
        }
        match self.log_certificate() {
            Some(cert) => out.push_str(&format!(
                "certificate for O(log n): Π_pf with labels {} ({} configurations), max flexibility {}\n",
                alphabet.format_set(cert.problem_pf.labels()),
                cert.problem_pf.num_configurations(),
                cert.max_flexibility
            )),
            None => out.push_str(&format!(
                "no certificate for O(log n): pruning lower bound Ω(n^(1/{}))\n",
                self.log_analysis.iterations().max(1)
            )),
        }
        if let Some(cert) = self.poly_certificate() {
            out.push_str(&format!(
                "exact exponent: Θ(n^(1/{})) via the trim/flexible-SCC chain\n",
                cert.exponent()
            ));
            for (i, level) in cert.levels.iter().enumerate() {
                if level.scc.is_empty() {
                    out.push_str(&format!(
                        "poly level {}: labels {} (no further flexible descent)\n",
                        i + 1,
                        alphabet.format_set(level.labels)
                    ));
                } else {
                    out.push_str(&format!(
                        "poly level {}: labels {}, flexible SCC {} (flexibility {}, chain threshold {})\n",
                        i + 1,
                        alphabet.format_set(level.labels),
                        alphabet.format_set(level.scc),
                        level.flexibility,
                        level.chain_threshold
                    ));
                }
            }
        }
        match &self.log_star {
            Some(r) => out.push_str(&format!(
                "certificate for O(log* n): labels {}\n",
                alphabet.format_set(r.certificate_labels)
            )),
            None if self.complexity == Complexity::Log => {
                out.push_str("no certificate for O(log* n): lower bound Ω(log n)\n")
            }
            None => {}
        }
        match &self.constant {
            Some(r) => out.push_str(&format!(
                "certificate for O(1): special configuration {}\n",
                r.special.display(alphabet)
            )),
            None if self.complexity == Complexity::LogStar => {
                out.push_str("no certificate for O(1): lower bound Ω(log* n)\n")
            }
            None => {}
        }
        out
    }
}

/// Classifies a problem with the default configuration. See the module
/// documentation for the decision procedure.
pub fn classify(problem: &LclProblem) -> ClassificationReport {
    classify_with_config(problem, &ClassifierConfig::default())
}

/// Decides only the complexity class, skipping everything a
/// [`ClassificationReport`] carries: no problem clones, no pruning trace, no
/// certificate construction (in particular none of the flexibility DPs that
/// building a [`LogCertificate`] runs). This is the batch hot path used by
/// [`crate::engine::ClassificationEngine`]; it always agrees with
/// [`classify`]`(problem).complexity`.
///
/// Runs on the calling thread's [`crate::scratch::ClassifyScratch`]; batch
/// workers that want explicit buffer ownership use
/// [`classify_complexity_with`].
pub fn classify_complexity(problem: &LclProblem) -> Complexity {
    crate::scratch::with_thread_scratch(|scratch| classify_complexity_with(problem, scratch))
}

/// [`classify_complexity`] with an explicit scratch: the zero-allocation hot
/// path. Every stage works on the parent problem's dense tables under a
/// [`LabelSet`] mask — no `LclProblem` is cloned and no restriction is
/// materialized, for any candidate subset or pruning iteration (see the
/// `scratch` module docs for the contract, and `tests/zero_alloc.rs` for the
/// allocation-counter proof).
pub fn classify_complexity_with(
    problem: &LclProblem,
    scratch: &mut crate::scratch::ClassifyScratch,
) -> Complexity {
    let sustaining = solvable_labels(problem);
    if sustaining.is_empty() {
        return Complexity::Unsolvable;
    }
    let (fixpoint, iterations) = crate::scratch::prune_fixpoint_masked(problem, scratch);
    if fixpoint.is_empty() {
        // The exponent never exceeds the pruning iteration count (every chain
        // level survives one more pruning round than the next), so a problem
        // whose labels all vanish in one iteration is exactly Θ(n) — the
        // common case in random families, decided without the exponent DFS.
        let exponent = if iterations <= 1 {
            1
        } else {
            crate::scratch::poly_exponent_masked(problem, sustaining, scratch)
        };
        return Complexity::Polynomial { exponent };
    }
    if crate::log_star::decide_log_star_subset(problem, sustaining, scratch).is_none() {
        return Complexity::Log;
    }
    if crate::constant::decide_constant_subset(problem, sustaining, scratch).is_some() {
        Complexity::Constant
    } else {
        Complexity::LogStar
    }
}

/// Classifies a problem. The configuration is threaded into the report, where it
/// bounds certificate materialization; it cannot change the resulting class.
///
/// Each stage runs exactly once: the solvability fixed point is computed once
/// and threaded into the certificate searches
/// ([`crate::log_star::find_log_star_certificate_within`],
/// [`crate::constant::find_constant_certificate_within`]), and the problem is
/// stored into the report through a single clone at the end.
pub fn classify_with_config(
    problem: &LclProblem,
    config: &ClassifierConfig,
) -> ClassificationReport {
    let config = *config;
    let solvable = solvable_labels(problem);
    let log_analysis = find_log_certificate(problem);
    let mut log_star = None;
    let mut constant = None;
    let mut poly = None;

    let complexity = if solvable.is_empty() {
        Complexity::Unsolvable
    } else if !log_analysis.has_certificate() {
        let cert = find_poly_certificate(problem)
            .expect("solvable problems without a log certificate are polynomial");
        let exponent = cert.exponent();
        poly = Some(cert);
        Complexity::Polynomial { exponent }
    } else {
        log_star = crate::log_star::find_log_star_certificate_within(problem, solvable);
        if log_star.is_none() {
            Complexity::Log
        } else {
            constant = crate::constant::find_constant_certificate_within(problem, solvable);
            if constant.is_some() {
                Complexity::Constant
            } else {
                Complexity::LogStar
            }
        }
    };

    ClassificationReport {
        problem: problem.clone(),
        config,
        complexity,
        solvable_labels: solvable,
        log_analysis,
        log_star,
        constant,
        poly,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify_text(text: &str) -> ClassificationReport {
        let p: LclProblem = text.parse().unwrap();
        classify(&p)
    }

    #[test]
    fn paper_example_three_coloring_is_log_star() {
        // Section 1.2, configurations (1).
        let report = classify_text("1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n");
        assert_eq!(report.complexity, Complexity::LogStar);
        assert!(report.log_star.is_some());
        assert!(report.constant.is_none());
    }

    #[test]
    fn paper_example_two_coloring_is_global() {
        // Section 1.2, configurations (2): Θ(n) = n^{Θ(1)} with k = 1.
        let report = classify_text("1:22\n2:11\n");
        assert_eq!(report.complexity, Complexity::Polynomial { exponent: 1 });
        let cert = report.poly_certificate().expect("polynomial certificate");
        cert.verify(&report.problem).unwrap();
    }

    #[test]
    fn paper_example_mis_is_constant() {
        // Section 1.3, configurations (3).
        let report = classify_text("1 : a a\n1 : a b\n1 : b b\na : b b\nb : b 1\nb : 1 1\n");
        assert_eq!(report.complexity, Complexity::Constant);
        let special = &report.constant.as_ref().unwrap().special;
        assert_eq!(special.display(report.problem.alphabet()), "b : 1 b");
    }

    #[test]
    fn paper_example_branch_two_coloring_is_log() {
        // Section 1.4, configurations (5).
        let report = classify_text("1 : 1 2\n2 : 1 1\n");
        assert_eq!(report.complexity, Complexity::Log);
        assert!(report.log_certificate().is_some());
        assert!(report.log_star.is_none());
    }

    #[test]
    fn figure_2_combination_is_log() {
        let report = classify_text("a : b b\nb : a a\n1 : 1 2\n2 : 1 1\n");
        assert_eq!(report.complexity, Complexity::Log);
        assert_eq!(report.log_analysis.iterations(), 1);
    }

    #[test]
    fn unsolvable_problem() {
        let report = classify_text("a : b b\nb : c c\n");
        assert_eq!(report.complexity, Complexity::Unsolvable);
        assert!(!report.complexity.is_solvable());
    }

    #[test]
    fn trivial_problem_is_constant() {
        let report = classify_text("x : x x\n");
        assert_eq!(report.complexity, Complexity::Constant);
    }

    #[test]
    fn describe_mentions_class_and_certificates() {
        let report = classify_text("1 : 1 2\n2 : 1 1\n");
        let text = report.describe();
        assert!(text.contains("Θ(log n)"));
        assert!(text.contains("certificate for O(log n)"));
        assert!(text.contains("no certificate for O(log* n)"));
    }

    #[test]
    fn certificates_materialize_from_report() {
        let report = classify_text("1 : a a\n1 : a b\n1 : b b\na : b b\nb : b 1\nb : 1 1\n");
        let log_star = report.log_star_certificate().unwrap().unwrap();
        log_star.verify(&report.problem).unwrap();
        let constant = report.constant_certificate().unwrap().unwrap();
        constant.verify(&report.problem).unwrap();
    }

    #[test]
    fn config_limits_apply_through_the_report() {
        // A tiny node budget makes materialization fail with TooLarge while the
        // decision itself is unaffected.
        let p: LclProblem = "1:22\n1:23\n1:33\n2:11\n2:13\n2:33\n3:11\n3:12\n3:22\n"
            .parse()
            .unwrap();
        let tight = ClassifierConfig {
            max_certificate_nodes: 2,
        };
        let report = classify_with_config(&p, &tight);
        assert_eq!(report.complexity, Complexity::LogStar);
        assert_eq!(report.config, tight);
        let err = report.log_star_certificate().unwrap().unwrap_err();
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn display_of_complexities() {
        assert_eq!(Complexity::Constant.to_string(), "O(1)");
        assert_eq!(Complexity::LogStar.to_string(), "Θ(log* n)");
        assert_eq!(Complexity::Log.to_string(), "Θ(log n)");
        assert_eq!(
            Complexity::Polynomial { exponent: 2 }.to_string(),
            "Θ(n^(1/2))"
        );
        assert_eq!(Complexity::Polynomial { exponent: 1 }.to_string(), "Θ(n)");
        assert_eq!(Complexity::Unsolvable.to_string(), "unsolvable");
        assert_eq!(Complexity::Constant.short_name(), "O(1)");
        assert_eq!(Complexity::Log.short_name(), "log");
    }

    #[test]
    fn delta_one_path_problems() {
        // On directed paths (δ = 1): 3-coloring is Θ(log* n), 2-coloring is global.
        let three = classify_text("1:2\n1:3\n2:1\n2:3\n3:1\n3:2\n");
        assert_eq!(three.complexity, Complexity::LogStar);
        let two = classify_text("1:2\n2:1\n");
        assert_eq!(two.complexity, Complexity::Polynomial { exponent: 1 });
    }
}
