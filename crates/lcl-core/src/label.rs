//! Output labels and alphabets.
//!
//! A [`Label`] is a small index into an [`Alphabet`], which maps indices back to the
//! human-readable names used in problem descriptions (`1`, `a`, `x2`, …). Problems,
//! certificates, and reports all share the same `Arc<Alphabet>`, so restricting a
//! problem to a label subset (Definition 4.3) never re-indexes labels and every
//! intermediate object can be printed with the original names.

use std::fmt;
use std::sync::Arc;

/// An output label of an LCL problem: an index into an [`Alphabet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u16);

impl Label {
    /// Returns the label as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The set of label names of a problem. Immutable once built; shared via `Arc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
}

impl Alphabet {
    /// Builds an alphabet from a list of distinct names.
    ///
    /// # Panics
    ///
    /// Panics if names repeat or if there are more than `u16::MAX` of them.
    pub fn new<I, S>(names: I) -> Arc<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(
            names.len() <= u16::MAX as usize,
            "too many labels for a u16 index"
        );
        for (i, n) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(n),
                "duplicate label name {n:?} in alphabet"
            );
        }
        Arc::new(Alphabet { names })
    }

    /// Number of names in the alphabet.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the alphabet has no names.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Returns the name of a label.
    ///
    /// # Panics
    ///
    /// Panics if the label does not belong to this alphabet.
    pub fn name(&self, label: Label) -> &str {
        &self.names[label.index()]
    }

    /// Looks a label up by name.
    pub fn label(&self, name: &str) -> Option<Label> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Label(i as u16))
    }

    /// Iterates over all labels of the alphabet in index order.
    pub fn labels(&self) -> impl ExactSizeIterator<Item = Label> + '_ {
        (0..self.names.len() as u16).map(Label)
    }

    /// Iterates over all `(label, name)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u16), n.as_str()))
    }

    /// Formats a set of labels as `{name, name, …}` using this alphabet.
    pub fn format_set<I>(&self, labels: I) -> String
    where
        I: IntoIterator<Item = Label>,
    {
        let names: Vec<&str> = labels.into_iter().map(|l| self.name(l)).collect();
        format!("{{{}}}", names.join(", "))
    }
}

/// A growable alphabet used while parsing or programmatically building problems.
#[derive(Debug, Default, Clone)]
pub struct AlphabetBuilder {
    names: Vec<String>,
}

impl AlphabetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the label for `name`, interning it if it has not been seen yet.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            Label(i as u16)
        } else {
            assert!(
                self.names.len() < u16::MAX as usize,
                "too many labels for a u16 index"
            );
            self.names.push(name.to_string());
            Label((self.names.len() - 1) as u16)
        }
    }

    /// Number of interned names so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Finishes the builder into a shared [`Alphabet`].
    pub fn finish(self) -> Arc<Alphabet> {
        Arc::new(Alphabet { names: self.names })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_lookup_roundtrip() {
        let alpha = Alphabet::new(["1", "a", "b"]);
        assert_eq!(alpha.len(), 3);
        assert_eq!(alpha.name(Label(0)), "1");
        assert_eq!(alpha.label("b"), Some(Label(2)));
        assert_eq!(alpha.label("missing"), None);
        let labels: Vec<Label> = alpha.labels().collect();
        assert_eq!(labels, vec![Label(0), Label(1), Label(2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate label name")]
    fn alphabet_rejects_duplicates() {
        let _ = Alphabet::new(["x", "x"]);
    }

    #[test]
    fn builder_interns_once() {
        let mut b = AlphabetBuilder::new();
        let a = b.intern("a");
        let a2 = b.intern("a");
        let c = b.intern("c");
        assert_eq!(a, a2);
        assert_ne!(a, c);
        let alpha = b.finish();
        assert_eq!(alpha.len(), 2);
        assert_eq!(alpha.name(c), "c");
    }

    #[test]
    fn format_set_uses_names() {
        let alpha = Alphabet::new(["1", "2"]);
        let set = vec![Label(0), Label(1)];
        assert_eq!(alpha.format_set(set), "{1, 2}");
    }
}
