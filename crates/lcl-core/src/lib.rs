//! LCL problems on rooted regular trees and the PODC 2021 complexity classifier.
//!
//! This crate implements the primary contribution of *Locally Checkable Problems in
//! Rooted Trees* (Balliu, Brandt, Chang, Olivetti, Studený, Suomela, Tereshchenko;
//! PODC 2021):
//!
//! * the problem formalism Π = (δ, Σ, C) of Definition 4.1 ([`problem`], [`label`],
//!   [`configuration`], [`parser`]),
//! * the path-form and its automaton with flexibility analysis (Definitions 4.6–4.9,
//!   [`automaton`]),
//! * solution labelings and their verification (Definition 4.2, [`labeling`]),
//! * the certificate machinery and decision procedures:
//!   - Algorithms 1–2 and the certificate for O(log n) solvability (Section 5,
//!     [`log_certificate`]),
//!   - Algorithm 3, certificate builders, and uniform certificates for O(log* n)
//!     solvability (Section 6, [`builder`], [`certificate`], [`log_star`]),
//!   - Algorithm 5 and certificates for O(1) solvability (Section 7, [`constant`]),
//! * the top-level classifier returning one of the four complexity classes
//!   ([`classifier`]).
//!
//! # Quick example
//!
//! ```
//! use lcl_core::{classify, Complexity, LclProblem};
//!
//! // 3-coloring of rooted binary trees, Section 1.2 of the paper.
//! let problem: LclProblem = "\
//!     1 : 2 2\n1 : 2 3\n1 : 3 3\n\
//!     2 : 1 1\n2 : 1 3\n2 : 3 3\n\
//!     3 : 1 1\n3 : 1 2\n3 : 2 2\n"
//!     .parse()
//!     .unwrap();
//! let report = classify(&problem);
//! assert_eq!(report.complexity, Complexity::LogStar);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod builder;
pub mod certificate;
pub mod classifier;
pub mod configuration;
pub mod constant;
pub mod greedy;
pub mod label;
pub mod labeling;
pub mod log_certificate;
pub mod log_star;
pub mod parser;
pub mod problem;
pub mod solvability;

pub use automaton::Automaton;
pub use builder::{find_unrestricted_certificate, CertificateBuilder};
pub use certificate::{CertificateTree, ConstantCertificate, LogStarCertificate};
pub use classifier::{
    classify, classify_with_config, ClassificationReport, ClassifierConfig, Complexity,
};
pub use configuration::Configuration;
pub use constant::find_constant_certificate;
pub use label::{Alphabet, Label};
pub use labeling::{Labeling, SolutionError};
pub use log_certificate::{find_log_certificate, LogCertificate, LogCertificateAnalysis};
pub use log_star::find_log_star_certificate;
pub use parser::ParseError;
pub use problem::LclProblem;
pub use solvability::solvable_labels;
