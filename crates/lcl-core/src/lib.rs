//! LCL problems on rooted regular trees and the PODC 2021 complexity classifier.
//!
//! This crate implements the primary contribution of *Locally Checkable Problems in
//! Rooted Trees* (Balliu, Brandt, Chang, Olivetti, Studený, Suomela, Tereshchenko;
//! PODC 2021):
//!
//! * the problem formalism Π = (δ, Σ, C) of Definition 4.1 ([`problem`], [`label`],
//!   [`configuration`], [`parser`]),
//! * the path-form and its automaton with flexibility analysis (Definitions 4.6–4.9,
//!   [`automaton`]),
//! * solution labelings and their verification (Definition 4.2, [`labeling`]),
//! * the certificate machinery and decision procedures:
//!   - Algorithms 1–2 and the certificate for O(log n) solvability (Section 5,
//!     [`log_certificate`]),
//!   - Algorithm 3, certificate builders, and uniform certificates for O(log* n)
//!     solvability (Section 6, [`builder`], [`certificate`], [`log_star`]),
//!   - Algorithm 5 and certificates for O(1) solvability (Section 7, [`constant`]),
//!   - the exact Θ(n^{1/k}) exponent of the polynomial region via the
//!     trim/flexible-SCC descent of Lemmas 5.28–5.29 ([`poly`]),
//! * the top-level classifier returning one of the four complexity classes,
//!   with the polynomial class carrying its exact exponent ([`classifier`]).
//!
//! # Hot-path representation: [`label_set::LabelSet`]
//!
//! Every decision procedure above is, at its core, a loop over label-set
//! operations (fixed points of continuations, flexibility pruning, subset
//! searches). Label sets are therefore `u128`-backed bitsets ([`LabelSet`]):
//! `Copy`, allocation-free, with O(1) union/intersection/subset/membership, and
//! iteration in ascending label order so output matches the former ordered-set
//! representation. Problems intern their configurations once at construction
//! into a dense, parent-indexed table with precomputed per-configuration label
//! sets ([`LclProblem`]), making "has a continuation within S" a few subset
//! tests. Conversion shims (`*_btree` methods) are kept wherever external code
//! wants ordered `BTreeSet`s.
//!
//! # Zero-allocation decisions: [`scratch`]
//!
//! The decision-only path ([`classify_complexity`] /
//! [`classify_complexity_with`]) runs every stage — pruning fixed point, subset
//! searches, Algorithm 3 — on the parent problem's dense tables under a
//! [`LabelSet`] mask, with all mutable state in a reusable
//! [`scratch::ClassifyScratch`]. A cache-miss classification clones no problem
//! and materializes no restriction; see the [`scratch`] module docs for the
//! buffer contract.
//!
//! # Batch classification and sweeps: [`engine`]
//!
//! The [`engine::ClassificationEngine`] layers canonical-form memoization
//! (label-permutation-invariant keys), a parallel `classify_batch`, and a
//! sharded canonical-first [`engine::ClassificationEngine::sweep_sharded`]
//! driver on top of the classifier, opening the "sweep a whole problem family"
//! workload: see `lcl-problems::random` / `lcl-problems::canonical` for family
//! generators and the `rtlcl classify-batch` / `rtlcl sweep` subcommands for
//! the CLI entry points.
//!
//! # Quick example
//!
//! ```
//! use lcl_core::{classify, Complexity, LclProblem};
//!
//! // 3-coloring of rooted binary trees, Section 1.2 of the paper.
//! let problem: LclProblem = "\
//!     1 : 2 2\n1 : 2 3\n1 : 3 3\n\
//!     2 : 1 1\n2 : 1 3\n2 : 3 3\n\
//!     3 : 1 1\n3 : 1 2\n3 : 2 2\n"
//!     .parse()
//!     .unwrap();
//! let report = classify(&problem);
//! assert_eq!(report.complexity, Complexity::LogStar);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod bitslice;
pub mod builder;
pub mod certificate;
pub mod classifier;
pub mod configuration;
pub mod constant;
pub mod engine;
pub mod greedy;
pub mod label;
pub mod label_set;
pub mod labeling;
pub mod log_certificate;
pub mod log_star;
pub mod parser;
pub mod poly;
pub mod problem;
pub mod scratch;
pub mod snapshot;
pub mod solvability;

pub use automaton::Automaton;
pub use bitslice::{
    calibrate_lane_width, classify_block_sliced, BitSliceScratch, BlockStats, LaneVerdict,
    LaneWidth, LaneWord, SlicedUniverse, LANES,
};
pub use builder::{find_unrestricted_certificate, CertificateBuilder};
pub use certificate::{CertificateTree, ConstantCertificate, LogStarCertificate};
pub use classifier::{
    classify, classify_complexity, classify_complexity_with, classify_with_config,
    ClassificationReport, ClassifierConfig, Complexity,
};
pub use configuration::Configuration;
pub use constant::{find_constant_certificate, find_constant_certificate_within};
pub use engine::{
    canonical_form, canonical_key_from_packed_rows, CanonicalKey, ClassificationEngine,
    ComplexityHistogram, EngineStats, MaskBlock, OrbitProblem, SweepCheckpoint, SweepLaneStats,
    SweepOutcome,
};
pub use label::{Alphabet, Label};
pub use label_set::LabelSet;
pub use labeling::{Labeling, SolutionError};
pub use log_certificate::{find_log_certificate, LogCertificate, LogCertificateAnalysis};
pub use log_star::{
    find_log_star_certificate, find_log_star_certificate_within, MAX_SEARCH_LABELS,
};
pub use parser::ParseError;
pub use poly::{find_poly_certificate, PolyCertificate, PolyLevel};
pub use problem::LclProblem;
pub use scratch::ClassifyScratch;
pub use snapshot::{
    load_or_quarantine, EngineKind, LoadOutcome, MaskRange, SnapshotError, SweepCursor,
    SweepSnapshot,
};
pub use solvability::solvable_labels;

/// Problem texts shared by the unit tests of several modules (the integration
/// tests under `tests/` carry their own copies — `tests/zero_alloc.rs` must
/// stay self-contained for its global-allocator isolation, and the workspace
/// tests go through `lcl_problems::extras`).
#[cfg(test)]
pub(crate) mod test_fixtures {
    /// The Section 8 construction with k = 2: an iterated 2-coloring whose
    /// pruning takes two iterations and whose exact exponent is 2 (Θ(√n)).
    /// The canonical constructor lives in `lcl_problems::extras::section_8_depth_two`.
    pub(crate) const SECTION_8_DEPTH_TWO: &str = "a1 : b1 b1\nb1 : a1 a1\n\
        a2 : b2 b2\na2 : a1 b1\na2 : a1 x1\na2 : b1 x1\na2 : a1 a1\na2 : b1 b1\na2 : x1 x1\n\
        b2 : a2 a2\nb2 : a1 b1\nb2 : a1 x1\nb2 : b1 x1\nb2 : a1 a1\nb2 : b1 b1\nb2 : x1 x1\n\
        x1 : a1 a1\nx1 : a1 b1\nx1 : b1 b1\nx1 : a2 a1\nx1 : a2 b1\nx1 : b2 a1\nx1 : b2 b1\nx1 : x1 a1\nx1 : x1 b1\n";
}
