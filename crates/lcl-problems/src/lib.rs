//! Catalog of named LCL problems on rooted regular trees.
//!
//! These are the worked examples of the paper (3-coloring, 2-coloring, maximal
//! independent set, branch 2-coloring, the Figure 2 combination Π₀, the Θ(n^{1/k})
//! family Π_k of Section 8) plus a few extra problems used by the test-suite and the
//! benchmark harness, and a seeded random-problem generator.
//!
//! ```
//! use lcl_core::{classify, Complexity};
//!
//! let mis = lcl_problems::mis::mis_binary();
//! assert_eq!(classify(&mis).complexity, Complexity::Constant);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod catalog;
pub mod coloring;
pub mod extras;
pub mod mis;
pub mod pi_k;
pub mod random;

pub use canonical::CanonicalFamily;
pub use catalog::{catalog, CatalogEntry, ExpectedComplexity};
