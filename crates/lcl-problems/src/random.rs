//! Seeded random problem generators and problem-family enumeration, used by the
//! property-based tests, the batch classification engine, and the benchmarks
//! (classification throughput as a function of |Σ| and |C|).
//!
//! Two family shapes are provided:
//!
//! * [`random_problems`] / [`random_family`] — i.i.d. samples from the density
//!   distribution of [`RandomProblemSpec`], for statistical sweeps;
//! * [`enumerate_problems`] — the *complete* family of problems over a fixed
//!   (δ, Σ): every subset of the possible configurations, enumerated
//!   deterministically. There are `2^(|Σ| · multisets)` of them (e.g. 2^18 for
//!   δ = 2 over 3 labels), so callers usually `take(n)` or sample the index
//!   space; the iterator is cheap and lazy.

use lcl_core::{Configuration, Label, LclProblem};
use lcl_rand::SplitMix64;

/// Parameters of the random problem distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomProblemSpec {
    /// Number of children of internal nodes.
    pub delta: usize,
    /// Number of labels.
    pub num_labels: usize,
    /// Probability that any given configuration (parent, child multiset) is allowed.
    pub density: f64,
}

impl Default for RandomProblemSpec {
    fn default() -> Self {
        RandomProblemSpec {
            delta: 2,
            num_labels: 3,
            density: 0.3,
        }
    }
}

/// All (parent, non-decreasing child tuple) pairs over `num_labels` labels — the
/// universe a (δ, Σ) family draws its configurations from, in a fixed order.
/// Shared with the canonical-first enumeration in [`crate::canonical`].
pub(crate) fn configuration_universe(delta: usize, num_labels: usize) -> Vec<(usize, Vec<usize>)> {
    let mut universe = Vec::new();
    let mut children = vec![0usize; delta];
    loop {
        if children.windows(2).all(|w| w[0] <= w[1]) {
            for parent in 0..num_labels {
                universe.push((parent, children.clone()));
            }
        }
        let mut pos = 0;
        loop {
            if pos == delta {
                break;
            }
            children[pos] += 1;
            if children[pos] < num_labels {
                break;
            }
            children[pos] = 0;
            pos += 1;
        }
        if pos == delta {
            break;
        }
    }
    universe
}

/// Number of distinct configurations possible for a (δ, Σ) family; the complete
/// family has `2^this` members.
pub fn universe_size(delta: usize, num_labels: usize) -> usize {
    configuration_universe(delta, num_labels).len()
}

pub(crate) fn problem_from_universe(
    delta: usize,
    num_labels: usize,
    universe: &[(usize, Vec<usize>)],
    included: impl Fn(usize) -> bool,
) -> LclProblem {
    let names: Vec<String> = (0..num_labels).map(|i| format!("l{i}")).collect();
    let alphabet = lcl_core::Alphabet::new(names);
    let labels: lcl_core::LabelSet = (0..num_labels as u16).map(Label).collect();
    let configurations: Vec<Configuration> = universe
        .iter()
        .enumerate()
        .filter(|(i, _)| included(*i))
        .map(|(_, (parent, children))| {
            Configuration::new(
                Label(*parent as u16),
                children.iter().map(|&c| Label(c as u16)).collect(),
            )
        })
        .collect();
    LclProblem::new(delta, alphabet, labels, configurations)
}

/// Generates a random problem: every possible configuration is included
/// independently with probability `spec.density`.
pub fn random_problem(spec: &RandomProblemSpec, seed: u64) -> LclProblem {
    assert!(spec.num_labels >= 1);
    assert!((0.0..=1.0).contains(&spec.density));
    let mut rng = SplitMix64::seed_from_u64(seed);
    let universe = configuration_universe(spec.delta, spec.num_labels);
    let included: Vec<bool> = universe
        .iter()
        .map(|_| rng.gen_bool(spec.density))
        .collect();
    problem_from_universe(spec.delta, spec.num_labels, &universe, |i| included[i])
}

/// Generates `count` random problems with consecutive seeds.
pub fn random_problems(spec: &RandomProblemSpec, base_seed: u64, count: usize) -> Vec<LclProblem> {
    (0..count)
        .map(|i| random_problem(spec, base_seed + i as u64))
        .collect()
}

/// Alias of [`random_problems`] with family terminology: the batch workload of
/// the classification engine ("classify this whole family").
pub fn random_family(spec: &RandomProblemSpec, base_seed: u64, count: usize) -> Vec<LclProblem> {
    random_problems(spec, base_seed, count)
}

/// Lazily enumerates the *complete* problem family over (δ, Σ = `num_labels`
/// labels): one problem per subset of the configuration universe, in increasing
/// order of the subset's bitmask. The first element (mask 0) has no
/// configurations at all.
///
/// # Panics
///
/// Panics if the universe has more than 63 configurations (the family would
/// have more than 2^63 members; enumerate a sub-family instead).
pub fn enumerate_problems(delta: usize, num_labels: usize) -> FamilyIter {
    let universe = configuration_universe(delta, num_labels);
    assert!(
        universe.len() <= 63,
        "family over {} possible configurations is too large to enumerate",
        universe.len()
    );
    FamilyIter {
        delta,
        num_labels,
        universe,
        next_mask: 0,
    }
}

/// Iterator over a complete (δ, Σ) problem family; see [`enumerate_problems`].
#[derive(Debug, Clone)]
pub struct FamilyIter {
    delta: usize,
    num_labels: usize,
    universe: Vec<(usize, Vec<usize>)>,
    next_mask: u64,
}

impl FamilyIter {
    /// Total number of problems in the family.
    pub fn family_size(&self) -> u64 {
        1u64 << self.universe.len()
    }

    /// The problem at a specific position (bitmask over the configuration
    /// universe), independent of the iteration state.
    pub fn problem_at(&self, mask: u64) -> LclProblem {
        problem_from_universe(self.delta, self.num_labels, &self.universe, |i| {
            mask & (1 << i) != 0
        })
    }
}

impl Iterator for FamilyIter {
    type Item = LclProblem;

    fn next(&mut self) -> Option<LclProblem> {
        if self.next_mask >= self.family_size() {
            return None;
        }
        let p = self.problem_at(self.next_mask);
        self.next_mask += 1;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::classify;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = RandomProblemSpec::default();
        let a = random_problem(&spec, 42);
        let b = random_problem(&spec, 42);
        assert_eq!(a, b);
        let c = random_problem(&spec, 43);
        assert!(a != c || a.num_configurations() == c.num_configurations());
    }

    #[test]
    fn density_extremes() {
        let empty = random_problem(
            &RandomProblemSpec {
                density: 0.0,
                ..Default::default()
            },
            1,
        );
        assert_eq!(empty.num_configurations(), 0);
        let full = random_problem(
            &RandomProblemSpec {
                density: 1.0,
                ..Default::default()
            },
            1,
        );
        // 3 labels, delta 2: 6 child multisets × 3 parents.
        assert_eq!(full.num_configurations(), 18);
    }

    #[test]
    fn random_problems_classify_without_panicking() {
        let spec = RandomProblemSpec {
            delta: 2,
            num_labels: 3,
            density: 0.35,
        };
        for (i, p) in random_problems(&spec, 7, 20).iter().enumerate() {
            let report = classify(p);
            assert!(
                report.complexity.is_solvable() || report.solvable_labels.is_empty(),
                "problem {i}: inconsistent solvability"
            );
        }
    }

    #[test]
    fn labels_are_always_present_even_with_no_configurations() {
        let p = random_problem(
            &RandomProblemSpec {
                num_labels: 4,
                density: 0.0,
                ..Default::default()
            },
            9,
        );
        assert_eq!(p.num_labels(), 4);
    }

    #[test]
    fn universe_sizes() {
        // δ=2 over k labels: k * C(k+1, 2) configurations.
        assert_eq!(universe_size(2, 2), 2 * 3);
        assert_eq!(universe_size(2, 3), 3 * 6);
        assert_eq!(universe_size(1, 3), 3 * 3);
    }

    #[test]
    fn enumeration_covers_the_family() {
        let family = enumerate_problems(2, 2);
        assert_eq!(family.family_size(), 64);
        let all: Vec<LclProblem> = family.collect();
        assert_eq!(all.len(), 64);
        // Every problem is distinct and over the same (δ, Σ).
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.delta(), 2);
            assert_eq!(p.num_labels(), 2);
            assert_eq!(p.num_configurations(), (i as u64).count_ones() as usize);
        }
        for pair in all.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn problem_at_matches_iteration() {
        let mut family = enumerate_problems(2, 2);
        let at_5 = family.problem_at(5);
        let via_iter = family.nth(5).unwrap();
        assert_eq!(at_5, via_iter);
    }
}
