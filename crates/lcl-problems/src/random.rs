//! Seeded random problem generators, used by property-based tests and by the
//! classifier benchmarks (classification time as a function of |Σ| and |C|).

use lcl_core::LclProblem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random problem distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomProblemSpec {
    /// Number of children of internal nodes.
    pub delta: usize,
    /// Number of labels.
    pub num_labels: usize,
    /// Probability that any given configuration (parent, child multiset) is allowed.
    pub density: f64,
}

impl Default for RandomProblemSpec {
    fn default() -> Self {
        RandomProblemSpec {
            delta: 2,
            num_labels: 3,
            density: 0.3,
        }
    }
}

/// Generates a random problem: every possible configuration is included
/// independently with probability `spec.density`.
pub fn random_problem(spec: &RandomProblemSpec, seed: u64) -> LclProblem {
    assert!(spec.num_labels >= 1);
    assert!((0.0..=1.0).contains(&spec.density));
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..spec.num_labels).map(|i| format!("l{i}")).collect();
    let mut builder = LclProblem::builder(spec.delta);
    for name in &names {
        builder.label(name);
    }
    // Enumerate every (parent, non-decreasing child tuple) and keep it with
    // probability `density`.
    let mut children = vec![0usize; spec.delta];
    loop {
        if children.windows(2).all(|w| w[0] <= w[1]) {
            for parent in 0..spec.num_labels {
                if rng.gen_bool(spec.density) {
                    let child_names: Vec<&str> =
                        children.iter().map(|&c| names[c].as_str()).collect();
                    builder.configuration(&names[parent], &child_names);
                }
            }
        }
        let mut pos = 0;
        loop {
            if pos == spec.delta {
                break;
            }
            children[pos] += 1;
            if children[pos] < spec.num_labels {
                break;
            }
            children[pos] = 0;
            pos += 1;
        }
        if pos == spec.delta {
            break;
        }
    }
    builder.build()
}

/// Generates `count` random problems with consecutive seeds.
pub fn random_problems(spec: &RandomProblemSpec, base_seed: u64, count: usize) -> Vec<LclProblem> {
    (0..count)
        .map(|i| random_problem(spec, base_seed + i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::classify;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = RandomProblemSpec::default();
        let a = random_problem(&spec, 42);
        let b = random_problem(&spec, 42);
        assert_eq!(a, b);
        let c = random_problem(&spec, 43);
        assert!(a != c || a.num_configurations() == c.num_configurations());
    }

    #[test]
    fn density_extremes() {
        let empty = random_problem(
            &RandomProblemSpec {
                density: 0.0,
                ..Default::default()
            },
            1,
        );
        assert_eq!(empty.num_configurations(), 0);
        let full = random_problem(
            &RandomProblemSpec {
                density: 1.0,
                ..Default::default()
            },
            1,
        );
        // 3 labels, delta 2: 6 child multisets × 3 parents.
        assert_eq!(full.num_configurations(), 18);
    }

    #[test]
    fn random_problems_classify_without_panicking() {
        let spec = RandomProblemSpec {
            delta: 2,
            num_labels: 3,
            density: 0.35,
        };
        for (i, p) in random_problems(&spec, 7, 20).iter().enumerate() {
            let report = classify(p);
            assert!(
                report.complexity.is_solvable() || report.solvable_labels.is_empty(),
                "problem {i}: inconsistent solvability"
            );
        }
    }

    #[test]
    fn labels_are_always_present_even_with_no_configurations() {
        let p = random_problem(
            &RandomProblemSpec {
                num_labels: 4,
                density: 0.0,
                ..Default::default()
            },
            9,
        );
        assert_eq!(p.num_labels(), 4);
    }
}
