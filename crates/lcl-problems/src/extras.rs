//! Additional problems used by the test-suite, the examples, and the benchmark
//! harness: trivial and unsolvable baselines, and a few encodings exercising the
//! corners of the classifier.

use lcl_core::LclProblem;

/// The trivial problem: one label, always allowed. Solvable in zero rounds.
pub fn trivial(delta: usize) -> LclProblem {
    let mut b = LclProblem::builder(delta);
    let children: Vec<&str> = std::iter::repeat_n("x", delta).collect();
    b.configuration("x", &children);
    b.build()
}

/// A problem with labels but no allowed configurations: unsolvable on any tree with
/// an internal node.
pub fn unsolvable(delta: usize) -> LclProblem {
    let mut b = LclProblem::builder(delta);
    b.label("a");
    b.label("b");
    b.build()
}

/// "Copy your child": every internal node must carry the same label as all of its
/// children, with two available labels. Each connected tree is monochromatic, so
/// any fixed label works: solvable in zero rounds.
pub fn copy_child(delta: usize) -> LclProblem {
    let mut b = LclProblem::builder(delta);
    for name in ["p", "q"] {
        let children: Vec<&str> = std::iter::repeat_n(name, delta).collect();
        b.configuration(name, &children);
    }
    b.build()
}

/// The Section 8 construction with k = 2: the inner 2-coloring {a1, b1} is
/// wrapped by a second 2-coloring {a2, b2} through the separator x1 (which
/// requires one child of index 1). Pruning removes {a1, b1} and then
/// everything else, and the exact exponent is 2 — complexity Θ(√n). The same
/// pattern iterated k times is the Π_k family of [`crate::pi_k`].
pub fn section_8_depth_two() -> LclProblem {
    "a1 : b1 b1\nb1 : a1 a1\n\
     a2 : b2 b2\na2 : a1 b1\na2 : a1 x1\na2 : b1 x1\na2 : a1 a1\na2 : b1 b1\na2 : x1 x1\n\
     b2 : a2 a2\nb2 : a1 b1\nb2 : a1 x1\nb2 : b1 x1\nb2 : a1 a1\nb2 : b1 b1\nb2 : x1 x1\n\
     x1 : a1 a1\nx1 : a1 b1\nx1 : b1 b1\nx1 : a2 a1\nx1 : a2 b1\nx1 : b2 a1\nx1 : b2 b1\nx1 : x1 a1\nx1 : x1 b1\n"
        .parse()
        .expect("the Section 8 text is well-formed")
}

/// A *heterochromatic child* problem: an internal node must have children of both
/// colors among {1, 2} (δ ≥ 2), and may itself take either color. On binary trees
/// this forces every internal node's children to be {1, 2}.
pub fn both_colors_below(delta: usize) -> LclProblem {
    assert!(delta >= 2);
    let mut b = LclProblem::builder(delta);
    for parent in ["1", "2"] {
        // children: at least one 1 and at least one 2.
        for ones in 1..delta {
            let mut children: Vec<&str> = Vec::new();
            children.extend(std::iter::repeat_n("1", ones));
            children.extend(std::iter::repeat_n("2", delta - ones));
            b.configuration(parent, &children);
        }
    }
    b.build()
}

/// The sinkless-orientation-flavoured problem "some child continues the chain":
/// label `c` ("chain") requires at least one child labeled `c`; label `f` ("free")
/// is always allowed. Constant-time solvable (everybody picks `f`), but the chain
/// label is what makes restrictions of it interesting.
pub fn chain_or_free(delta: usize) -> LclProblem {
    let mut b = LclProblem::builder(delta);
    let all_f: Vec<&str> = std::iter::repeat_n("f", delta).collect();
    b.configuration("f", &all_f);
    let mut chain_children: Vec<&str> = vec!["c"];
    chain_children.extend(std::iter::repeat_n("f", delta - 1));
    b.configuration("c", &chain_children);
    b.configuration("f", &chain_children);
    b.build()
}

/// A problem whose complexity is Θ(log n) for a reason different from branch
/// 2-coloring: "eventually constant": label `t` (top) may sit above `t` or `s`;
/// below an `s` everything must be `s`; and `t` must have at least one `s` child or
/// be all-`t`... encoded so that the path-flexible core is {s} while {t} forms a
/// flexible but non-absorbing component. Classified Θ(log n)? — in fact O(1): kept
/// as a regression test that the classifier handles nested absorbing components.
pub fn nested_absorbing(delta: usize) -> LclProblem {
    let mut b = LclProblem::builder(delta);
    let all_s: Vec<&str> = std::iter::repeat_n("s", delta).collect();
    let all_t: Vec<&str> = std::iter::repeat_n("t", delta).collect();
    let mut t_then_s: Vec<&str> = vec!["t"];
    t_then_s.extend(std::iter::repeat_n("s", delta - 1));
    b.configuration("s", &all_s);
    b.configuration("t", &all_t);
    b.configuration("t", &t_then_s);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::{classify, Complexity};

    #[test]
    fn trivial_is_constant() {
        assert_eq!(classify(&trivial(2)).complexity, Complexity::Constant);
        assert_eq!(classify(&trivial(3)).complexity, Complexity::Constant);
    }

    #[test]
    fn unsolvable_is_detected() {
        assert_eq!(classify(&unsolvable(2)).complexity, Complexity::Unsolvable);
    }

    #[test]
    fn copy_child_is_constant() {
        assert_eq!(classify(&copy_child(2)).complexity, Complexity::Constant);
    }

    #[test]
    fn both_colors_below_is_constant() {
        // The certificate uses both labels: each tree alternates freely, and the
        // special configuration (1 : 1 2) makes it constant-time.
        assert_eq!(
            classify(&both_colors_below(2)).complexity,
            Complexity::Constant
        );
        assert_eq!(
            classify(&both_colors_below(3)).complexity,
            Complexity::Constant
        );
    }

    #[test]
    fn chain_or_free_is_constant() {
        assert_eq!(classify(&chain_or_free(2)).complexity, Complexity::Constant);
    }

    #[test]
    fn nested_absorbing_is_constant() {
        let p = nested_absorbing(2);
        let report = classify(&p);
        assert_eq!(report.complexity, Complexity::Constant);
        // The O(log n) certificate restricts to the absorbing component {s}.
        let cert = report.log_certificate().unwrap();
        assert_eq!(cert.problem_pf.num_labels(), 1);
    }
}
