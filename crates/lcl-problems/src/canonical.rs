//! Canonical-first enumeration of complete (δ, Σ) problem families: exactly one
//! representative per label-permutation orbit, generated *before* any problem
//! is built or classified.
//!
//! [`crate::random::enumerate_problems`] walks the full universe — one problem
//! per subset of the configuration universe, `2^u` of them — and leaves
//! deduplication to the classification engine's canonical-form memo, which
//! still pays one `LclProblem` construction and one `canonical_form` per
//! member. The [`CanonicalFamily`] here works at the level of packed
//! configuration **masks** instead: a label permutation π induces a permutation
//! of universe indices, so the orbit of a problem is the orbit of its `u64`
//! mask under at most `|Σ|! − 1` precomputed index permutations. A mask is the
//! orbit's *canonical representative* iff it is the numeric minimum of its
//! orbit (the standard orderly-generation / lex-min canonicity test), which
//! costs a few word operations per permutation with early exit — so the whole
//! non-canonical bulk of the universe (up to a `|Σ|!` fraction) is discarded
//! without ever constructing a problem, let alone classifying one.
//!
//! Orbit sizes come for free from the orbit–stabilizer theorem: `|orbit| =
//! |Σ|! / #{π : π(M) = M}`. They let a sweep reconstruct exact whole-universe
//! histograms from the representatives alone, which the differential tests
//! (`tests/canonical_sweep.rs`) pin against brute-force
//! `canonical_form`-dedup of [`crate::random::enumerate_problems`].
//!
//! Sharding for the parallel sweep driver
//! (`lcl_core::engine::ClassificationEngine::sweep_sharded`) partitions the
//! mask space into contiguous ranges ([`CanonicalFamily::shard`]); the
//! canonicity filter runs inside each shard, so no pass over the universe is
//! needed up front.

use std::collections::HashMap;

use lcl_core::engine::OrbitProblem;
use lcl_core::LclProblem;

use crate::random::{configuration_universe, problem_from_universe};

/// Number of labels up to which all `|Σ|!` permutations are enumerated. The
/// configuration-mask limit of 63 keeps realistic families far below this
/// (δ = 2 caps at 4 labels, δ = 1 at 7), but the bound makes the permutation
/// table construction's cost explicit.
pub const MAX_CANONICAL_ENUM_LABELS: usize = 8;

/// A complete (δ, Σ) problem family viewed through its label-permutation
/// orbits. See the module documentation.
#[derive(Debug, Clone)]
pub struct CanonicalFamily {
    delta: usize,
    num_labels: usize,
    universe: Vec<(usize, Vec<usize>)>,
    /// For every non-identity label permutation, the induced permutation of
    /// universe indices: `table[i]` is the image of configuration `i`.
    perm_tables: Vec<Vec<u32>>,
}

impl CanonicalFamily {
    /// Builds the orbit view of the (δ, `num_labels`) family.
    ///
    /// # Panics
    ///
    /// Panics if the configuration universe exceeds 63 entries (the family
    /// would not fit a `u64` mask; same bound as
    /// [`crate::random::enumerate_problems`]) or if `num_labels` exceeds
    /// [`MAX_CANONICAL_ENUM_LABELS`].
    pub fn new(delta: usize, num_labels: usize) -> Self {
        assert!(delta >= 1 && num_labels >= 1);
        assert!(
            num_labels <= MAX_CANONICAL_ENUM_LABELS,
            "canonical enumeration tries all {num_labels}! label permutations; \
             {MAX_CANONICAL_ENUM_LABELS} labels is the supported limit"
        );
        let universe = configuration_universe(delta, num_labels);
        assert!(
            universe.len() <= 63,
            "family over {} possible configurations is too large to enumerate",
            universe.len()
        );
        let index_of: HashMap<&(usize, Vec<usize>), u32> = universe
            .iter()
            .enumerate()
            .map(|(i, c)| (c, i as u32))
            .collect();

        let mut perm_tables = Vec::new();
        let mut perm: Vec<usize> = (0..num_labels).collect();
        permute(&mut perm, 0, &mut |perm| {
            if perm.iter().enumerate().all(|(i, &p)| i == p) {
                return; // identity fixes every mask; skip it
            }
            let table: Vec<u32> = universe
                .iter()
                .map(|(parent, children)| {
                    let mut image_children: Vec<usize> =
                        children.iter().map(|&c| perm[c]).collect();
                    image_children.sort_unstable();
                    index_of[&(perm[*parent], image_children)]
                })
                .collect();
            perm_tables.push(table);
        });

        CanonicalFamily {
            delta,
            num_labels,
            universe,
            perm_tables,
        }
    }

    /// The family's δ.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The family's |Σ|.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Number of possible configurations (mask bits).
    pub fn universe_len(&self) -> usize {
        self.universe.len()
    }

    /// Total number of problems in the family, `2^universe_len`.
    pub fn family_size(&self) -> u64 {
        1u64 << self.universe.len()
    }

    /// The image of a configuration mask under one precomputed permutation.
    fn apply(table: &[u32], mask: u64) -> u64 {
        let mut out = 0u64;
        let mut bits = mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            out |= 1u64 << table[i];
            bits &= bits - 1;
        }
        out
    }

    /// `true` iff `mask` is its orbit's canonical representative (the numeric
    /// minimum over all label permutations). A few word operations per
    /// permutation, early exit on the first smaller image.
    pub fn is_canonical(&self, mask: u64) -> bool {
        self.perm_tables
            .iter()
            .all(|table| Self::apply(table, mask) >= mask)
    }

    /// The number of distinct problems in the orbit of `mask`, via
    /// orbit–stabilizer: `|Σ|!` divided by the number of permutations fixing
    /// the mask.
    pub fn orbit_size(&self, mask: u64) -> u64 {
        let stabilizer = 1 + self
            .perm_tables
            .iter()
            .filter(|table| Self::apply(table, mask) == mask)
            .count();
        ((self.perm_tables.len() + 1) / stabilizer) as u64
    }

    /// Materializes the problem with the given configuration mask (identical
    /// mask semantics to [`crate::random::FamilyIter::problem_at`]).
    pub fn problem_at(&self, mask: u64) -> LclProblem {
        problem_from_universe(self.delta, self.num_labels, &self.universe, |i| {
            mask & (1u64 << i) != 0
        })
    }

    /// The canonical representative masks, ascending.
    pub fn canonical_masks(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.family_size()).filter(|&m| self.is_canonical(m))
    }

    /// Enumerates one [`OrbitProblem`] per orbit (ascending representative
    /// mask). Only canonical masks are materialized into problems.
    pub fn enumerate(&self) -> impl Iterator<Item = OrbitProblem> + '_ {
        self.canonical_masks().map(move |m| OrbitProblem {
            problem: self.problem_at(m),
            orbit_size: self.orbit_size(m),
        })
    }

    /// The `shard`-th of `shards` contiguous mask-range partitions of
    /// [`Self::enumerate`]'s stream — the input the parallel sweep driver
    /// (`ClassificationEngine::sweep_sharded`) fans out over worker threads.
    /// The union over all shards is exactly [`Self::enumerate`]; shards may be
    /// uneven (canonical masks cluster towards small values).
    pub fn shard(&self, shard: usize, shards: usize) -> impl Iterator<Item = OrbitProblem> + '_ {
        let shards = shards.max(1) as u64;
        let per_shard = self.family_size().div_ceil(shards);
        let lo = per_shard
            .saturating_mul(shard as u64)
            .min(self.family_size());
        let hi = lo.saturating_add(per_shard).min(self.family_size());
        (lo..hi)
            .filter(|&m| self.is_canonical(m))
            .map(move |m| OrbitProblem {
                problem: self.problem_at(m),
                orbit_size: self.orbit_size(m),
            })
    }
}

/// Calls `visit` with every permutation of `items[at..]` (Heap-style recursion).
fn permute(items: &mut [usize], at: usize, visit: &mut impl FnMut(&[usize])) {
    if at == items.len() {
        visit(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, visit);
        items.swap(at, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_tables_are_permutations() {
        let family = CanonicalFamily::new(2, 3);
        assert_eq!(family.perm_tables.len(), 5); // 3! − 1
        for table in &family.perm_tables {
            let mut seen = vec![false; family.universe_len()];
            for &i in table {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
    }

    #[test]
    fn orbit_sizes_sum_to_the_family_size() {
        for (delta, labels) in [(1, 2), (2, 2), (1, 3), (2, 3)] {
            let family = CanonicalFamily::new(delta, labels);
            let total: u64 = family.canonical_masks().map(|m| family.orbit_size(m)).sum();
            assert_eq!(total, family.family_size(), "(δ={delta}, k={labels})");
        }
    }

    #[test]
    fn empty_and_full_masks_are_canonical_fixed_points() {
        let family = CanonicalFamily::new(2, 2);
        assert!(family.is_canonical(0));
        assert_eq!(family.orbit_size(0), 1);
        let full = family.family_size() - 1;
        assert!(family.is_canonical(full));
        assert_eq!(family.orbit_size(full), 1);
    }

    #[test]
    fn orbit_members_share_the_representative() {
        // For every mask of the (2, 2) family, the minimum over its permuted
        // images is canonical, and exactly one member of each orbit is.
        let family = CanonicalFamily::new(2, 2);
        let mut canonical_members = 0u64;
        for mask in 0..family.family_size() {
            let min = family
                .perm_tables
                .iter()
                .map(|t| CanonicalFamily::apply(t, mask))
                .chain(std::iter::once(mask))
                .min()
                .unwrap();
            assert!(family.is_canonical(min), "mask {mask}");
            if family.is_canonical(mask) {
                canonical_members += 1;
            }
        }
        assert_eq!(canonical_members, family.canonical_masks().count() as u64);
    }

    #[test]
    fn single_label_family_is_all_canonical() {
        let family = CanonicalFamily::new(2, 1);
        assert_eq!(family.universe_len(), 1);
        assert_eq!(
            family.canonical_masks().count() as u64,
            family.family_size()
        );
        assert!(family.enumerate().all(|o| o.orbit_size == 1));
    }

    #[test]
    fn shards_partition_the_stream() {
        // Drive `shard()` itself and compare its concatenated output against
        // `enumerate()`, so a regression in the range arithmetic cannot hide.
        let family = CanonicalFamily::new(2, 3);
        let all: Vec<(String, u64)> = family
            .enumerate()
            .map(|o| (o.problem.to_text(), o.orbit_size))
            .collect();
        assert!(!all.is_empty());
        for shards in [1usize, 2, 3, 7] {
            let sharded: Vec<(String, u64)> = (0..shards)
                .flat_map(|s| family.shard(s, shards))
                .map(|o| (o.problem.to_text(), o.orbit_size))
                .collect();
            assert_eq!(sharded, all, "{shards} shards");
        }
        // Out-of-range shard indices yield nothing rather than wrapping.
        assert_eq!(family.shard(7, 7).count(), 0);
    }

    #[test]
    #[should_panic(expected = "too large to enumerate")]
    fn oversized_universe_panics() {
        CanonicalFamily::new(2, 5); // 5 · C(6,2) = 75 > 63 configurations
    }
}
