//! Canonical-first enumeration of complete (δ, Σ) problem families: exactly one
//! representative per label-permutation orbit, generated *before* any problem
//! is built or classified.
//!
//! [`crate::random::enumerate_problems`] walks the full universe — one problem
//! per subset of the configuration universe, `2^u` of them — and leaves
//! deduplication to the classification engine's canonical-form memo, which
//! still pays one `LclProblem` construction and one `canonical_form` per
//! member. The [`CanonicalFamily`] here works at the level of packed
//! configuration **masks** instead: a label permutation π induces a permutation
//! of universe indices, so the orbit of a problem is the orbit of its `u64`
//! mask under at most `|Σ|! − 1` precomputed index permutations. A mask is the
//! orbit's *canonical representative* iff it is the numeric minimum of its
//! orbit (the standard orderly-generation / lex-min canonicity test), which
//! costs a few word operations per permutation with early exit — so the whole
//! non-canonical bulk of the universe (up to a `|Σ|!` fraction) is discarded
//! without ever constructing a problem, let alone classifying one.
//!
//! Orbit sizes come for free from the orbit–stabilizer theorem: `|orbit| =
//! |Σ|! / #{π : π(M) = M}`. They let a sweep reconstruct exact whole-universe
//! histograms from the representatives alone, which the differential tests
//! (`tests/canonical_sweep.rs`) pin against brute-force
//! `canonical_form`-dedup of [`crate::random::enumerate_problems`].
//!
//! Sharding for the parallel sweep driver
//! (`lcl_core::engine::ClassificationEngine::sweep_sharded`) partitions the
//! mask space into contiguous ranges ([`CanonicalFamily::shard`]); the
//! canonicity filter runs inside each shard, so no pass over the universe is
//! needed up front.

use std::collections::HashMap;

use lcl_core::bitslice::SlicedUniverse;
use lcl_core::engine::{
    canonical_form, canonical_key_from_packed_rows, CanonicalKey, MaskBlock, OrbitProblem,
};
use lcl_core::snapshot::MaskRange;
use lcl_core::LclProblem;

use crate::random::{configuration_universe, problem_from_universe};

/// Number of labels up to which all `|Σ|!` permutations are enumerated. The
/// configuration-mask limit of 63 keeps realistic families far below this
/// (δ = 2 caps at 4 labels, δ = 1 at 7), but the bound makes the permutation
/// table construction's cost explicit.
pub const MAX_CANONICAL_ENUM_LABELS: usize = 8;

/// A complete (δ, Σ) problem family viewed through its label-permutation
/// orbits. See the module documentation.
#[derive(Debug, Clone)]
pub struct CanonicalFamily {
    delta: usize,
    num_labels: usize,
    universe: Vec<(usize, Vec<usize>)>,
    /// For every non-identity label permutation, the induced permutation of
    /// universe indices: `table[i]` is the image of configuration `i`.
    perm_tables: Vec<Vec<u32>>,
    /// Per permutation table, the images of the 64 low-offset masks
    /// `0..64`: `low_images[t][j] = apply(table, j)` (zero where `j` is not a
    /// valid mask of the universe). [`Self::apply`] distributes over disjoint
    /// bits, so for a 64-aligned base `b` the image of `b + j` is
    /// `apply(table, b) | low_images[t][j]` — one table walk per base serves a
    /// whole 64-mask window in [`Self::canonical_survivors`].
    low_images: Vec<[u64; 64]>,
    /// Per configuration, the set of labels it mentions (bit per label).
    config_label_bits: Vec<u16>,
    /// Per configuration, its identity-relabeling packed row — parent in the
    /// high 16-bit slot, children ascending — as `canonical_form` packs rows.
    /// Empty when δ + 1 > 8 slots (rows don't fit a `u128`).
    packed_id: Vec<u128>,
    /// Configuration indices ascending by packed row (empty iff `packed_id`
    /// is).
    packed_order: Vec<u32>,
    /// Per configuration, the bit `1 << (63 − rank)` of its packed row in the
    /// ascending packed order; the OR over a mask's configurations orders
    /// masks by their *sorted packed-row lists* (see [`Self::canonical_key_of`]).
    ord_bit: Vec<u64>,
}

impl CanonicalFamily {
    /// Builds the orbit view of the (δ, `num_labels`) family.
    ///
    /// # Panics
    ///
    /// Panics if the configuration universe exceeds 63 entries (the family
    /// would not fit a `u64` mask; same bound as
    /// [`crate::random::enumerate_problems`]) or if `num_labels` exceeds
    /// [`MAX_CANONICAL_ENUM_LABELS`].
    pub fn new(delta: usize, num_labels: usize) -> Self {
        assert!(delta >= 1 && num_labels >= 1);
        assert!(
            num_labels <= MAX_CANONICAL_ENUM_LABELS,
            "canonical enumeration tries all {num_labels}! label permutations; \
             {MAX_CANONICAL_ENUM_LABELS} labels is the supported limit"
        );
        let universe = configuration_universe(delta, num_labels);
        assert!(
            universe.len() <= 63,
            "family over {} possible configurations is too large to enumerate",
            universe.len()
        );
        let index_of: HashMap<&(usize, Vec<usize>), u32> = universe
            .iter()
            .enumerate()
            .map(|(i, c)| (c, i as u32))
            .collect();

        let mut perm_tables = Vec::new();
        let mut perm: Vec<usize> = (0..num_labels).collect();
        permute(&mut perm, 0, &mut |perm| {
            if perm.iter().enumerate().all(|(i, &p)| i == p) {
                return; // identity fixes every mask; skip it
            }
            let table: Vec<u32> = universe
                .iter()
                .map(|(parent, children)| {
                    let mut image_children: Vec<usize> =
                        children.iter().map(|&c| perm[c]).collect();
                    image_children.sort_unstable();
                    index_of[&(perm[*parent], image_children)]
                })
                .collect();
            perm_tables.push(table);
        });
        let low_images: Vec<[u64; 64]> = perm_tables
            .iter()
            .map(|table| {
                let mut low = [0u64; 64];
                for (j, slot) in low.iter_mut().enumerate() {
                    if j >> universe.len().min(63) == 0 {
                        *slot = Self::apply(table, j as u64);
                    }
                }
                low
            })
            .collect();

        let config_label_bits: Vec<u16> = universe
            .iter()
            .map(|(parent, children)| {
                children
                    .iter()
                    .fold(1u16 << parent, |bits, &c| bits | 1 << c)
            })
            .collect();
        // Identity packed rows + their rank order, for the mask-direct
        // canonical key (only when rows fit a u128: δ + 1 ≤ 8 slots).
        let packed_id: Vec<u128> = if delta < 8 {
            universe
                .iter()
                .map(|(parent, children)| {
                    // Universe children are already non-decreasing.
                    children
                        .iter()
                        .fold(*parent as u128, |packed, &c| (packed << 16) | c as u128)
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut ord_bit = vec![0u64; universe.len()];
        let mut packed_order = Vec::new();
        if !packed_id.is_empty() {
            packed_order = (0..universe.len() as u32).collect();
            packed_order.sort_unstable_by_key(|&i| packed_id[i as usize]);
            for (rank, &i) in packed_order.iter().enumerate() {
                ord_bit[i as usize] = 1u64 << (63 - rank);
            }
        }

        CanonicalFamily {
            delta,
            num_labels,
            universe,
            perm_tables,
            low_images,
            config_label_bits,
            packed_id,
            packed_order,
            ord_bit,
        }
    }

    /// The family's δ.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The family's |Σ|.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Number of possible configurations (mask bits).
    pub fn universe_len(&self) -> usize {
        self.universe.len()
    }

    /// Total number of problems in the family, `2^universe_len`.
    pub fn family_size(&self) -> u64 {
        1u64 << self.universe.len()
    }

    /// The image of a configuration mask under one precomputed permutation.
    fn apply(table: &[u32], mask: u64) -> u64 {
        let mut out = 0u64;
        let mut bits = mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            out |= 1u64 << table[i];
            bits &= bits - 1;
        }
        out
    }

    /// `true` iff `mask` is its orbit's canonical representative (the numeric
    /// minimum over all label permutations). A few word operations per
    /// permutation, early exit on the first smaller image.
    pub fn is_canonical(&self, mask: u64) -> bool {
        self.perm_tables
            .iter()
            .all(|table| Self::apply(table, mask) >= mask)
    }

    /// Batched canonicity test: the bitmap of offsets `j` (bit `j` set) such
    /// that `base + j` is canonical, over the 64-mask window starting at the
    /// 64-aligned `base`. Offsets past the family's end are clear.
    ///
    /// This is the enumeration front of the wide-lane sweeps: instead of up
    /// to `|Σ|! − 1` table walks per candidate mask, each permutation walks
    /// the table once for the shared high bits (`apply(table, base)`) and
    /// tests the surviving offsets with one precomputed-OR and one compare
    /// each, retiring a permutation early once every lane of the window is
    /// dead. Equivalent to 64 [`Self::is_canonical`] calls.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if `base` is not 64-aligned.
    pub fn canonical_survivors(&self, base: u64) -> u64 {
        debug_assert_eq!(base & 63, 0, "window base must be 64-aligned");
        if base >= self.family_size() {
            return 0;
        }
        let window = (self.family_size() - base).min(64);
        let mut surviving = if window == 64 {
            !0u64
        } else {
            (1u64 << window) - 1
        };
        for (table, low_images) in self.perm_tables.iter().zip(&self.low_images) {
            let hi_image = Self::apply(table, base);
            let mut lanes = surviving;
            while lanes != 0 {
                let j = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                if hi_image | low_images[j] < base + j as u64 {
                    surviving &= !(1u64 << j);
                }
            }
            if surviving == 0 {
                break;
            }
        }
        surviving
    }

    /// The number of distinct problems in the orbit of `mask`, via
    /// orbit–stabilizer: `|Σ|!` divided by the number of permutations fixing
    /// the mask.
    pub fn orbit_size(&self, mask: u64) -> u64 {
        let stabilizer = 1 + self
            .perm_tables
            .iter()
            .filter(|table| Self::apply(table, mask) == mask)
            .count();
        ((self.perm_tables.len() + 1) / stabilizer) as u64
    }

    /// Materializes the problem with the given configuration mask (identical
    /// mask semantics to [`crate::random::FamilyIter::problem_at`]).
    pub fn problem_at(&self, mask: u64) -> LclProblem {
        problem_from_universe(self.delta, self.num_labels, &self.universe, |i| {
            mask & (1u64 << i) != 0
        })
    }

    /// The canonical representative masks, ascending.
    pub fn canonical_masks(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.family_size()).filter(|&m| self.is_canonical(m))
    }

    /// Enumerates one [`OrbitProblem`] per orbit (ascending representative
    /// mask). Only canonical masks are materialized into problems.
    pub fn enumerate(&self) -> impl Iterator<Item = OrbitProblem> + '_ {
        self.canonical_masks().map(move |m| OrbitProblem {
            mask: m,
            problem: self.problem_at(m),
            orbit_size: self.orbit_size(m),
        })
    }

    /// The `shard`-th of `shards` contiguous mask-range partitions of
    /// [`Self::enumerate`]'s stream — the input the parallel sweep driver
    /// (`ClassificationEngine::sweep_sharded`) fans out over worker threads.
    /// The union over all shards is exactly [`Self::enumerate`]; shards may be
    /// uneven (canonical masks cluster towards small values).
    pub fn shard(&self, shard: usize, shards: usize) -> impl Iterator<Item = OrbitProblem> + '_ {
        let (lo, hi) = self.shard_range(shard, shards);
        self.orbits_in(MaskRange { next: lo, hi })
    }

    /// The non-empty members of the `shards`-way contiguous mask partition of
    /// the family, as watermarked [`MaskRange`]s with every watermark at its
    /// range's start — the cursor of a fresh resumable sweep campaign
    /// (`SweepSnapshot::fresh`). Requesting more shards than the family has
    /// masks yields one range per mask and no empty ranges, so `len()` is the
    /// *effective* shard count (≤ `shards`, and ≤ the family size).
    pub fn ranges(&self, shards: usize) -> Vec<MaskRange> {
        (0..shards.max(1))
            .map(|s| self.shard_range(s, shards))
            .filter(|&(lo, hi)| lo < hi)
            .map(|(lo, hi)| MaskRange { next: lo, hi })
            .collect()
    }

    /// The canonical orbit stream of one watermarked mask range — what
    /// [`Self::shard`] yields, but resumable from any watermark: the stream
    /// of `MaskRange { next, hi }` is exactly the unvisited tail of the
    /// stream of `MaskRange { lo, hi }` once masks below `next` are done.
    pub fn orbits_in(&self, range: MaskRange) -> impl Iterator<Item = OrbitProblem> + '_ {
        (range.next..range.hi)
            .filter(|&m| self.is_canonical(m))
            .map(move |m| OrbitProblem {
                mask: m,
                problem: self.problem_at(m),
                orbit_size: self.orbit_size(m),
            })
    }

    /// The `shard`-th of `shards` contiguous mask ranges covering the family.
    fn shard_range(&self, shard: usize, shards: usize) -> (u64, u64) {
        let shards = shards.max(1) as u64;
        let per_shard = self.family_size().div_ceil(shards);
        let lo = per_shard
            .saturating_mul(shard as u64)
            .min(self.family_size());
        let hi = lo.saturating_add(per_shard).min(self.family_size());
        (lo, hi)
    }

    /// The family's dense configuration table as a
    /// [`SlicedUniverse`] for the bit-sliced sweep path: entry `i` is the
    /// configuration behind mask bit `i`, so a family mask is directly a lane
    /// mask for `lcl_core::bitslice`.
    pub fn sliced_universe(&self) -> SlicedUniverse {
        let mut sliced = SlicedUniverse::new(self.delta, self.num_labels);
        for (parent, children) in &self.universe {
            sliced.push_config(*parent, children);
        }
        sliced
    }

    /// [`Self::shard`]'s stream as [`MaskBlock`]s of up to `lanes` canonical
    /// masks — the input of `ClassificationEngine::sweep_sharded_bitsliced`.
    /// `lanes` must match the sweep's lane width (`LaneWidth::lanes()`:
    /// 64–512). No problem is materialized; lanes carry only the mask and its
    /// orbit size, and candidate masks are canonicity-filtered in 64-mask
    /// windows through [`Self::canonical_survivors`].
    pub fn blocks(
        &self,
        shard: usize,
        shards: usize,
        lanes: usize,
    ) -> impl Iterator<Item = MaskBlock> + '_ {
        let (lo, hi) = self.shard_range(shard, shards);
        self.blocks_in(MaskRange { next: lo, hi }, lanes)
    }

    /// [`Self::orbits_in`]'s stream as [`MaskBlock`]s — the resumable input
    /// of `ClassificationEngine::sweep_resumable_bitsliced`. Block formation
    /// is a function of the starting mask and `lanes` alone (≤ `lanes`
    /// canonical masks are taken in ascending order), so resuming from a
    /// committed block's [`MaskBlock::next_mask`] at the same lane count
    /// reproduces the remaining block sequence of an uninterrupted run
    /// exactly — lane statistics included.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn blocks_in(
        &self,
        range: MaskRange,
        lanes: usize,
    ) -> impl Iterator<Item = MaskBlock> + '_ {
        assert!(lanes > 0, "a block must hold at least one lane");
        BlockIter {
            family: self,
            next: range.next,
            hi: range.hi,
            lanes,
            window_base: u64::MAX,
            window_bits: 0,
        }
    }

    /// The canonical-form memo key of the problem at `mask`, identical to
    /// `canonical_form(&self.problem_at(mask))` but computed mask-directly on
    /// the fast path — no problem construction and no per-permutation row
    /// re-sort.
    ///
    /// The fast path applies when rows pack (δ + 1 ≤ 8 slots) and the mask
    /// *uses every label* (then `canonical_form`'s dense re-ranking is the
    /// identity, and its permutation search over used labels is exactly the
    /// family's permutation group — including the trivial k = 1 group). The
    /// minimizing relabeling is found by comparing masks, not sorted row
    /// lists: order each configuration by its packed row, give it the bit
    /// `1 << (63 − rank)`, and the OR of a mask's bits compares masks exactly
    /// as their ascending packed-row lists compare lexicographically — the
    /// list whose first differing row is *smaller* owns the *higher* bit, so
    /// lex-smallest list ⟺ numerically greatest ordered mask. The key is then
    /// unpacked from the winning mask's rows in packed order. Masks that leave
    /// some label unused (rare: their configurations all avoid one label) fall
    /// back to materializing the problem.
    pub fn canonical_key_of(&self, mask: u64) -> CanonicalKey {
        let used = {
            let mut bits = mask;
            let mut used = 0u16;
            while bits != 0 {
                used |= self.config_label_bits[bits.trailing_zeros() as usize];
                bits &= bits - 1;
            }
            used
        };
        let full_used = (1u16 << self.num_labels) - 1;
        if self.packed_id.is_empty() || used != full_used {
            return canonical_form(&self.problem_at(mask));
        }
        let ordkey = |m: u64| {
            let mut bits = m;
            let mut key = 0u64;
            while bits != 0 {
                key |= self.ord_bit[bits.trailing_zeros() as usize];
                bits &= bits - 1;
            }
            key
        };
        let mut best_mask = mask;
        let mut best_key = ordkey(mask);
        for table in &self.perm_tables {
            let image = Self::apply(table, mask);
            let key = ordkey(image);
            if key > best_key {
                best_key = key;
                best_mask = image;
            }
        }
        // Ascending packed rows of the winning mask: walk the configurations
        // in packed order, keeping the ones the mask contains.
        let mut rows: Vec<u128> = Vec::with_capacity(best_mask.count_ones() as usize);
        for &i in &self.packed_order {
            if best_mask & (1u64 << i) != 0 {
                rows.push(self.packed_id[i as usize]);
            }
        }
        canonical_key_from_packed_rows(self.delta, self.num_labels, &rows)
    }
}

/// Iterator of [`MaskBlock`]s over one shard's canonical masks; see
/// [`CanonicalFamily::blocks`]. Candidates are filtered through the batched
/// [`CanonicalFamily::canonical_survivors`] window (cached across blocks, so
/// a window split by a block boundary is not re-filtered).
struct BlockIter<'a> {
    family: &'a CanonicalFamily,
    next: u64,
    hi: u64,
    /// Maximum number of masks per block (the sweep's lane count).
    lanes: usize,
    /// 64-aligned base of the cached survivor window (`u64::MAX` = none).
    window_base: u64,
    /// Survivor bitmap of the cached window.
    window_bits: u64,
}

impl Iterator for BlockIter<'_> {
    type Item = MaskBlock;

    fn next(&mut self) -> Option<MaskBlock> {
        let mut block = MaskBlock::default();
        while self.next < self.hi && block.masks.len() < self.lanes {
            let base = self.next & !63;
            if base != self.window_base {
                self.window_base = base;
                self.window_bits = self.family.canonical_survivors(base);
            }
            let off = (self.next - base) as u32;
            let remaining = self.window_bits >> off;
            if remaining == 0 {
                // Window exhausted: skip to the next one in a single step.
                self.next = (base + 64).min(self.hi);
                continue;
            }
            let candidate = base + u64::from(remaining.trailing_zeros() + off);
            if candidate >= self.hi {
                self.next = self.hi;
                break;
            }
            block.masks.push(candidate);
            block.orbit_sizes.push(self.family.orbit_size(candidate));
            self.next = candidate + 1;
        }
        block.next_mask = self.next;
        if block.masks.is_empty() {
            None
        } else {
            Some(block)
        }
    }
}

/// Calls `visit` with every permutation of `items[at..]` (Heap-style recursion).
fn permute(items: &mut [usize], at: usize, visit: &mut impl FnMut(&[usize])) {
    if at == items.len() {
        visit(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, visit);
        items.swap(at, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_tables_are_permutations() {
        let family = CanonicalFamily::new(2, 3);
        assert_eq!(family.perm_tables.len(), 5); // 3! − 1
        for table in &family.perm_tables {
            let mut seen = vec![false; family.universe_len()];
            for &i in table {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
    }

    #[test]
    fn orbit_sizes_sum_to_the_family_size() {
        for (delta, labels) in [(1, 2), (2, 2), (1, 3), (2, 3)] {
            let family = CanonicalFamily::new(delta, labels);
            let total: u64 = family.canonical_masks().map(|m| family.orbit_size(m)).sum();
            assert_eq!(total, family.family_size(), "(δ={delta}, k={labels})");
        }
    }

    #[test]
    fn empty_and_full_masks_are_canonical_fixed_points() {
        let family = CanonicalFamily::new(2, 2);
        assert!(family.is_canonical(0));
        assert_eq!(family.orbit_size(0), 1);
        let full = family.family_size() - 1;
        assert!(family.is_canonical(full));
        assert_eq!(family.orbit_size(full), 1);
    }

    #[test]
    fn orbit_members_share_the_representative() {
        // For every mask of the (2, 2) family, the minimum over its permuted
        // images is canonical, and exactly one member of each orbit is.
        let family = CanonicalFamily::new(2, 2);
        let mut canonical_members = 0u64;
        for mask in 0..family.family_size() {
            let min = family
                .perm_tables
                .iter()
                .map(|t| CanonicalFamily::apply(t, mask))
                .chain(std::iter::once(mask))
                .min()
                .unwrap();
            assert!(family.is_canonical(min), "mask {mask}");
            if family.is_canonical(mask) {
                canonical_members += 1;
            }
        }
        assert_eq!(canonical_members, family.canonical_masks().count() as u64);
    }

    #[test]
    fn single_label_family_is_all_canonical() {
        let family = CanonicalFamily::new(2, 1);
        assert_eq!(family.universe_len(), 1);
        assert_eq!(
            family.canonical_masks().count() as u64,
            family.family_size()
        );
        assert!(family.enumerate().all(|o| o.orbit_size == 1));
    }

    #[test]
    fn shards_partition_the_stream() {
        // Drive `shard()` itself and compare its concatenated output against
        // `enumerate()`, so a regression in the range arithmetic cannot hide.
        let family = CanonicalFamily::new(2, 3);
        let all: Vec<(String, u64)> = family
            .enumerate()
            .map(|o| (o.problem.to_text(), o.orbit_size))
            .collect();
        assert!(!all.is_empty());
        for shards in [1usize, 2, 3, 7] {
            let sharded: Vec<(String, u64)> = (0..shards)
                .flat_map(|s| family.shard(s, shards))
                .map(|o| (o.problem.to_text(), o.orbit_size))
                .collect();
            assert_eq!(sharded, all, "{shards} shards");
        }
        // Out-of-range shard indices yield nothing rather than wrapping.
        assert_eq!(family.shard(7, 7).count(), 0);
    }

    #[test]
    #[should_panic(expected = "too large to enumerate")]
    fn oversized_universe_panics() {
        CanonicalFamily::new(2, 5); // 5 · C(6,2) = 75 > 63 configurations
    }

    #[test]
    fn blocks_partition_the_canonical_stream() {
        let family = CanonicalFamily::new(2, 3);
        let all: Vec<(u64, u64)> = family
            .canonical_masks()
            .map(|m| (m, family.orbit_size(m)))
            .collect();
        for lanes in [1usize, 64, 128, 256, 512] {
            for shards in [1usize, 2, 3, 7] {
                let mut blocked: Vec<(u64, u64)> = Vec::new();
                for s in 0..shards {
                    for block in family.blocks(s, shards, lanes) {
                        assert!(!block.masks.is_empty());
                        assert!(block.masks.len() <= lanes);
                        assert_eq!(block.masks.len(), block.orbit_sizes.len());
                        blocked.extend(block.masks.iter().copied().zip(block.orbit_sizes));
                    }
                }
                assert_eq!(blocked, all, "{shards} shards, {lanes} lanes");
            }
        }
        assert_eq!(family.blocks(7, 7, 64).count(), 0);
    }

    #[test]
    fn canonical_survivors_match_is_canonical_windows() {
        for (delta, labels) in [(2, 1), (1, 2), (2, 2), (1, 3), (2, 3)] {
            let family = CanonicalFamily::new(delta, labels);
            let mut base = 0u64;
            while base < family.family_size() {
                let batched = family.canonical_survivors(base);
                for j in 0..64u64 {
                    let expected = base + j < family.family_size() && family.is_canonical(base + j);
                    assert_eq!(
                        batched & (1 << j) != 0,
                        expected,
                        "(δ={delta}, k={labels}) base {base} offset {j}"
                    );
                }
                base += 64;
            }
            // Past the family's end the window is empty.
            let past = family.family_size().div_ceil(64) * 64;
            assert_eq!(family.canonical_survivors(past), 0);
        }
    }

    #[test]
    fn ranges_are_nonempty_and_tile_the_family() {
        let family = CanonicalFamily::new(2, 3);
        for shards in [1usize, 2, 7, 1000] {
            let ranges = family.ranges(shards);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= shards);
            assert_eq!(ranges[0].next, 0);
            assert_eq!(ranges.last().unwrap().hi, family.family_size());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].hi, pair[1].next, "{shards} shards");
            }
            assert!(ranges.iter().all(|r| !r.is_done()));
        }
        // More shards than masks: one range per mask, never an empty range.
        let tiny = CanonicalFamily::new(2, 1);
        assert_eq!(tiny.family_size(), 2);
        assert_eq!(tiny.ranges(64).len(), 2);
        assert_eq!(tiny.ranges(0).len(), 1);
    }

    #[test]
    fn orbit_streams_resume_as_the_tail_of_the_full_stream() {
        let family = CanonicalFamily::new(2, 2);
        let full: Vec<u64> = family.canonical_masks().collect();
        let hi = family.family_size();
        for watermark in [0u64, 1, 17, 1000, hi - 1, hi] {
            let tail: Vec<u64> = family
                .orbits_in(MaskRange {
                    next: watermark,
                    hi,
                })
                .map(|o| o.mask)
                .collect();
            let expected: Vec<u64> = full.iter().copied().filter(|&m| m >= watermark).collect();
            assert_eq!(tail, expected, "watermark {watermark}");
        }
    }

    #[test]
    fn block_streams_resume_from_every_next_mask_watermark() {
        let family = CanonicalFamily::new(2, 3);
        let whole = MaskRange {
            next: 0,
            hi: family.family_size(),
        };
        for lanes in [64usize, 256] {
            let blocks: Vec<MaskBlock> = family.blocks_in(whole, lanes).collect();
            assert!(blocks.len() > 2);
            assert_eq!(blocks.last().unwrap().next_mask, whole.hi);
            // Resuming from a committed block's watermark must reproduce the
            // next block exactly (blocks_in is lazy, so one block is cheap).
            for pair in blocks.windows(2) {
                let mut resumed = family.blocks_in(
                    MaskRange {
                        next: pair[0].next_mask,
                        hi: whole.hi,
                    },
                    lanes,
                );
                assert_eq!(
                    resumed.next().map(|b| (b.masks, b.next_mask)),
                    Some((pair[1].masks.clone(), pair[1].next_mask)),
                    "resumed at watermark {} with {lanes} lanes",
                    pair[0].next_mask
                );
            }
        }
    }

    #[test]
    fn sliced_universe_mirrors_the_mask_bits() {
        let family = CanonicalFamily::new(2, 3);
        let sliced = family.sliced_universe();
        assert_eq!(sliced.len(), family.universe_len());
        assert_eq!(sliced.delta(), 2);
        assert_eq!(sliced.num_labels(), 3);
    }

    #[test]
    fn mask_direct_canonical_keys_match_canonical_form() {
        // Every mask of small full families — exercises both the full-used
        // fast path and the unused-label fallback.
        for (delta, labels) in [(2, 2), (1, 3)] {
            let family = CanonicalFamily::new(delta, labels);
            for mask in 0..family.family_size() {
                assert_eq!(
                    family.canonical_key_of(mask),
                    canonical_form(&family.problem_at(mask)),
                    "(δ={delta}, k={labels}) mask {mask}"
                );
            }
        }
        // Random masks of the sweep benchmark's (2, 3) universe.
        let family = CanonicalFamily::new(2, 3);
        let mut rng = lcl_rand::SplitMix64::seed_from_u64(0xC0FFEE);
        for _ in 0..2000 {
            let mask = rng.next_u64() & (family.family_size() - 1);
            assert_eq!(
                family.canonical_key_of(mask),
                canonical_form(&family.problem_at(mask)),
                "mask {mask}"
            );
        }
    }
}
