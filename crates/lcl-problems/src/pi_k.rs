//! The Θ(n^{1/k}) family Π_k of Section 8.
//!
//! Π_k combines k proper-2-coloring problems (with colors {a_i, b_i}) through
//! separator labels x_i: a node labeled x_i must have at least one child whose whole
//! subtree uses only labels of index ≤ i. Theorem 8.3 shows the round complexity of
//! Π_k is Θ(n^{1/k}) in both LOCAL and CONGEST, and Algorithm 2 prunes its labels in
//! exactly k iterations.

use lcl_core::LclProblem;

fn level_names(k: usize) -> Vec<String> {
    // Σ_k = {a1, b1, x1, a2, b2, x2, …, a_k, b_k}
    let mut names = Vec::new();
    for i in 1..=k {
        names.push(format!("a{i}"));
        names.push(format!("b{i}"));
        if i < k {
            names.push(format!("x{i}"));
        }
    }
    names
}

/// Builds Π_k for δ = 2 exactly as defined in Section 8.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn pi_k(k: usize) -> LclProblem {
    assert!(k >= 1, "Π_k is defined for k ≥ 1");
    let names = level_names(k);
    let lower = |i: usize| -> Vec<String> {
        // {a1, b1, x1, …, a_{i−1}, b_{i−1}, x_{i−1}}
        let mut out = Vec::new();
        for j in 1..i {
            out.push(format!("a{j}"));
            out.push(format!("b{j}"));
            out.push(format!("x{j}"));
        }
        out
    };
    let mut builder = LclProblem::builder(2);
    for name in &names {
        builder.label(name);
    }
    let all_pairs = |allowed: &[String]| -> Vec<(String, String)> {
        let mut pairs = Vec::new();
        for (idx, s) in allowed.iter().enumerate() {
            for t in &allowed[idx..] {
                pairs.push((s.clone(), t.clone()));
            }
        }
        pairs
    };
    for i in 1..=k {
        // (a_i : σ σ') and (b_i : σ σ') for σ, σ' in lower(i) ∪ {partner}.
        for (parent, partner) in [
            (format!("a{i}"), format!("b{i}")),
            (format!("b{i}"), format!("a{i}")),
        ] {
            let mut allowed = lower(i);
            allowed.push(partner);
            for (s, t) in all_pairs(&allowed) {
                builder.configuration(&parent, &[&s, &t]);
            }
        }
        // (x_i : σ σ') for σ ∈ Σ_k and σ' ∈ {a1, b1, x1, …, a_i, b_i}.
        if i < k {
            let parent = format!("x{i}");
            let mut second: Vec<String> = lower(i);
            second.push(format!("a{i}"));
            second.push(format!("b{i}"));
            for s in &names {
                for t in &second {
                    builder.configuration(&parent, &[s, t]);
                }
            }
        }
    }
    builder.build()
}

/// The number of labels of Π_k: `3k − 1`.
pub fn pi_k_num_labels(k: usize) -> usize {
    3 * k - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::{classify, Complexity};

    #[test]
    fn pi_1_is_two_coloring() {
        let p = pi_k(1);
        assert_eq!(p.num_labels(), 2);
        assert_eq!(p.num_configurations(), 2);
        assert_eq!(
            classify(&p).complexity,
            Complexity::Polynomial { exponent: 1 }
        );
    }

    #[test]
    fn pi_2_matches_figure_10() {
        let p = pi_k(2);
        assert_eq!(p.num_labels(), 5);
        // a2/b2 each have C(4,2)+4 = 10 unordered pairs over 4 allowed labels;
        // x1 pairs one of 5 labels with one of {a1, b1}: 5·2 = 10 ordered pairs but
        // as unordered configurations some coincide; just check classification and
        // that every label of Figure 10's automaton appears.
        for name in ["a1", "b1", "x1", "a2", "b2"] {
            assert!(p.label_by_name(name).is_some(), "missing label {name}");
        }
        let report = classify(&p);
        assert_eq!(report.complexity, Complexity::Polynomial { exponent: 2 });
    }

    #[test]
    fn pruning_iterations_equal_k() {
        // Lemma 8.2: Algorithm 2 takes exactly k iterations on Π_k, removing
        // {a_i, b_i, x_{i−1}} at iteration i.
        for k in 1..=4 {
            let p = pi_k(k);
            let report = classify(&p);
            assert_eq!(
                report.complexity,
                Complexity::Polynomial { exponent: k },
                "Π_{k}"
            );
            assert_eq!(report.log_analysis.iterations(), k);
            // The exact-exponent certificate descends level by level.
            let cert = report.poly_certificate().expect("polynomial certificate");
            assert_eq!(cert.exponent(), k);
            cert.verify(&p).unwrap();
            // First removal is exactly {a1, b1}.
            let first: Vec<&str> = report.log_analysis.pruned_sets[0]
                .iter()
                .map(|l| p.label_name(l))
                .collect();
            assert_eq!(first, vec!["a1", "b1"]);
        }
    }

    #[test]
    fn label_count_formula() {
        for k in 1..=5 {
            assert_eq!(pi_k(k).num_labels(), pi_k_num_labels(k));
        }
    }

    #[test]
    fn pi_k_is_solvable() {
        for k in 1..=3 {
            let p = pi_k(k);
            assert!(!lcl_core::solvable_labels(&p).is_empty());
        }
    }
}
