//! A named catalog of the paper's sample problems with their expected complexity
//! classes, used by the E1/E2 experiments ("classify every sample problem"), the
//! CLI, and the integration tests.

use lcl_core::{Complexity, LclProblem};

use crate::{coloring, extras, mis, pi_k};

/// The expected complexity class of a catalog entry, as stated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedComplexity {
    /// O(1) rounds.
    Constant,
    /// Θ(log* n) rounds.
    LogStar,
    /// Θ(log n) rounds.
    Log,
    /// Θ(n^{1/k}) rounds for the given k.
    Polynomial(usize),
    /// No solution exists on deep trees.
    Unsolvable,
}

impl ExpectedComplexity {
    /// Checks a classifier verdict against the expectation.
    pub fn matches(self, actual: Complexity) -> bool {
        match (self, actual) {
            (ExpectedComplexity::Constant, Complexity::Constant) => true,
            (ExpectedComplexity::LogStar, Complexity::LogStar) => true,
            (ExpectedComplexity::Log, Complexity::Log) => true,
            (ExpectedComplexity::Polynomial(k), Complexity::Polynomial { exponent }) => {
                k == exponent
            }
            (ExpectedComplexity::Unsolvable, Complexity::Unsolvable) => true,
            _ => false,
        }
    }

    /// Human-readable form used in experiment tables.
    pub fn describe(self) -> String {
        match self {
            ExpectedComplexity::Constant => "O(1)".into(),
            ExpectedComplexity::LogStar => "Θ(log* n)".into(),
            ExpectedComplexity::Log => "Θ(log n)".into(),
            ExpectedComplexity::Polynomial(k) => format!("Θ(n^(1/{k}))"),
            ExpectedComplexity::Unsolvable => "unsolvable".into(),
        }
    }
}

/// A named problem together with its paper reference and expected class.
pub struct CatalogEntry {
    /// Short identifier (stable, used on the command line).
    pub name: &'static str,
    /// Where the problem appears in the paper.
    pub reference: &'static str,
    /// The expected complexity class.
    pub expected: ExpectedComplexity,
    /// The problem itself.
    pub problem: LclProblem,
}

/// Builds the full catalog of sample problems.
pub fn catalog() -> Vec<CatalogEntry> {
    let mut entries = vec![
        CatalogEntry {
            name: "3-coloring",
            reference: "Section 1.2, configurations (1)",
            expected: ExpectedComplexity::LogStar,
            problem: coloring::three_coloring_binary(),
        },
        CatalogEntry {
            name: "2-coloring",
            reference: "Section 1.2, configurations (2)",
            expected: ExpectedComplexity::Polynomial(1),
            problem: coloring::two_coloring_binary(),
        },
        CatalogEntry {
            name: "4-coloring",
            reference: "Section 1.2 (more colors)",
            expected: ExpectedComplexity::LogStar,
            problem: coloring::coloring(2, 4),
        },
        CatalogEntry {
            name: "3-coloring-ternary",
            reference: "Section 1.2 generalized to δ = 3",
            expected: ExpectedComplexity::LogStar,
            problem: coloring::coloring(3, 3),
        },
        CatalogEntry {
            name: "mis",
            reference: "Section 1.3, configurations (3)",
            expected: ExpectedComplexity::Constant,
            problem: mis::mis_binary(),
        },
        CatalogEntry {
            name: "mis-ternary",
            reference: "Section 1.3 generalized to δ = 3",
            expected: ExpectedComplexity::Constant,
            problem: mis::mis(3),
        },
        CatalogEntry {
            name: "independent-set",
            reference: "independent set without maximality (baseline)",
            expected: ExpectedComplexity::Constant,
            problem: mis::independent_set_binary(),
        },
        CatalogEntry {
            name: "branch-2-coloring",
            reference: "Section 1.4, configurations (5)",
            expected: ExpectedComplexity::Log,
            problem: coloring::branch_two_coloring(),
        },
        CatalogEntry {
            name: "figure-2-combination",
            reference: "Figure 2, problem Π₀",
            expected: ExpectedComplexity::Log,
            problem: coloring::figure_2_combination(),
        },
        CatalogEntry {
            name: "trivial",
            reference: "baseline (single always-allowed label)",
            expected: ExpectedComplexity::Constant,
            problem: extras::trivial(2),
        },
        CatalogEntry {
            name: "unsolvable",
            reference: "baseline (no allowed configurations)",
            expected: ExpectedComplexity::Unsolvable,
            problem: extras::unsolvable(2),
        },
        CatalogEntry {
            name: "both-colors-below",
            reference: "extra O(1) example",
            expected: ExpectedComplexity::Constant,
            problem: extras::both_colors_below(2),
        },
    ];
    for k in 1..=4 {
        let name: &'static str = match k {
            1 => "pi-1",
            2 => "pi-2",
            3 => "pi-3",
            _ => "pi-4",
        };
        entries.push(CatalogEntry {
            name,
            reference: "Section 8, problem Π_k",
            expected: ExpectedComplexity::Polynomial(k),
            problem: pi_k::pi_k(k),
        });
    }
    entries
}

/// Looks a catalog entry up by name.
pub fn by_name(name: &str) -> Option<CatalogEntry> {
    catalog().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::classify;

    #[test]
    fn catalog_is_nonempty_and_names_are_unique() {
        let entries = catalog();
        assert!(entries.len() >= 15);
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len());
    }

    #[test]
    fn every_entry_classifies_as_expected() {
        // This is experiment E1: the classifier reproduces the complexity classes
        // the paper states for all of its sample problems.
        for entry in catalog() {
            let report = classify(&entry.problem);
            assert!(
                entry.expected.matches(report.complexity),
                "{}: expected {}, classifier said {}",
                entry.name,
                entry.expected.describe(),
                report.complexity
            );
        }
    }

    #[test]
    fn all_four_classes_are_represented() {
        // Table 1's rooted-regular-trees column: the classes O(1), Θ(log* n),
        // Θ(log n) and n^{Θ(1)} are all non-empty.
        let entries = catalog();
        for expected in [
            ExpectedComplexity::Constant,
            ExpectedComplexity::LogStar,
            ExpectedComplexity::Log,
            ExpectedComplexity::Polynomial(1),
            ExpectedComplexity::Polynomial(2),
        ] {
            assert!(
                entries.iter().any(|e| e.expected == expected),
                "no catalog entry with expected class {expected:?}"
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("mis").is_some());
        assert!(by_name("definitely-missing").is_none());
    }

    #[test]
    fn expected_complexity_matching() {
        assert!(ExpectedComplexity::Constant.matches(Complexity::Constant));
        assert!(!ExpectedComplexity::Constant.matches(Complexity::Log));
        assert!(ExpectedComplexity::Polynomial(2).matches(Complexity::Polynomial { exponent: 2 }));
        assert!(!ExpectedComplexity::Polynomial(2).matches(Complexity::Polynomial { exponent: 1 }));
        assert!(ExpectedComplexity::Log.describe().contains("log"));
    }
}
