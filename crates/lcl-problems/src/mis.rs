//! Maximal-independent-set style problems (Section 1.3 of the paper).

use lcl_core::LclProblem;

/// The maximal independent set problem on rooted binary trees, encoded with three
/// labels as in Section 1.3 (configurations (3)): label 1 marks set members, `a`
/// marks nodes whose parent is in the set, `b` marks nodes with a child in the set.
/// Complexity O(1) — the paper's flagship example of a non-trivial constant-time
/// problem.
pub fn mis_binary() -> LclProblem {
    let mut b = LclProblem::builder(2);
    b.configurations(&[
        ("1", &["a", "a"]),
        ("1", &["a", "b"]),
        ("1", &["b", "b"]),
        ("a", &["b", "b"]),
        ("b", &["b", "1"]),
        ("b", &["1", "1"]),
    ]);
    b.build()
}

/// The analogue of [`mis_binary`] for trees with δ children per internal node:
/// a node labeled 1 (in the set) has all children labeled `a` or `b`; a node labeled
/// `a` (dominated from above) has all children labeled `b`; a node labeled `b`
/// (dominated from below) has at least one child labeled 1 and the rest labeled 1 or
/// `b`.
pub fn mis(delta: usize) -> LclProblem {
    let mut builder = LclProblem::builder(delta);
    // 1 : any multiset over {a, b}.
    for split in 0..=delta {
        let mut children: Vec<&str> = Vec::with_capacity(delta);
        children.extend(std::iter::repeat_n("a", split));
        children.extend(std::iter::repeat_n("b", delta - split));
        builder.configuration("1", &children);
    }
    // a : all children b.
    let all_b: Vec<&str> = std::iter::repeat_n("b", delta).collect();
    builder.configuration("a", &all_b);
    // b : at least one child 1, the rest 1 or b.
    for ones in 1..=delta {
        let mut children: Vec<&str> = Vec::with_capacity(delta);
        children.extend(std::iter::repeat_n("1", ones));
        children.extend(std::iter::repeat_n("b", delta - ones));
        builder.configuration("b", &children);
    }
    builder.build()
}

/// The *independent set with no maximality requirement*: label 1 nodes must not be
/// adjacent, and nothing else is required (labels 0 are free). This is a trivially
/// zero-round problem (everybody outputs 0), useful as a baseline in the O(1) class.
pub fn independent_set_binary() -> LclProblem {
    let mut b = LclProblem::builder(2);
    b.configurations(&[
        ("1", &["0", "0"]),
        ("0", &["0", "0"]),
        ("0", &["0", "1"]),
        ("0", &["1", "1"]),
    ]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::{classify, Complexity};

    #[test]
    fn binary_mis_matches_paper() {
        let p = mis_binary();
        assert_eq!(p.num_labels(), 3);
        assert_eq!(p.num_configurations(), 6);
        assert_eq!(classify(&p).complexity, Complexity::Constant);
    }

    #[test]
    fn general_delta_mis_reduces_to_binary() {
        let p2 = mis(2);
        let reference = mis_binary();
        assert_eq!(p2.num_configurations(), reference.num_configurations());
        assert_eq!(classify(&p2).complexity, Complexity::Constant);
    }

    #[test]
    fn ternary_mis_is_constant() {
        let p = mis(3);
        assert_eq!(classify(&p).complexity, Complexity::Constant);
    }

    #[test]
    fn plain_independent_set_is_constant() {
        let p = independent_set_binary();
        assert_eq!(classify(&p).complexity, Complexity::Constant);
    }
}
