//! Vertex-coloring problems (Sections 1.2 and 1.4 of the paper).

use lcl_core::LclProblem;

/// Proper `colors`-coloring of rooted trees with δ children per internal node: the
/// label of every internal node must differ from the labels of all of its children.
///
/// For `colors = 3`, `delta = 2` this is exactly the problem (1) of Section 1.2
/// (complexity Θ(log* n)); for `colors = 2` it is the global problem (2)
/// (complexity Θ(n)).
///
/// # Panics
///
/// Panics if `colors == 0`.
pub fn coloring(delta: usize, colors: usize) -> LclProblem {
    assert!(colors >= 1, "at least one color is required");
    let names: Vec<String> = (1..=colors).map(|c| c.to_string()).collect();
    let mut builder = LclProblem::builder(delta);
    // Ensure all colors exist as labels even when no configuration uses them
    // (e.g. 1-coloring has no allowed configuration at all).
    for name in &names {
        builder.label(name);
    }
    let mut children = vec![0usize; delta];
    for parent in 0..colors {
        // Enumerate all non-decreasing child color tuples avoiding the parent color.
        loop {
            if children.iter().all(|&c| c != parent) && children.windows(2).all(|w| w[0] <= w[1]) {
                let child_names: Vec<&str> = children.iter().map(|&c| names[c].as_str()).collect();
                builder.configuration(&names[parent], &child_names);
            }
            // Odometer over child tuples.
            let mut pos = 0;
            loop {
                if pos == delta {
                    children = vec![0; delta];
                    break;
                }
                children[pos] += 1;
                if children[pos] < colors {
                    break;
                }
                children[pos] = 0;
                pos += 1;
            }
            if pos == delta {
                break;
            }
        }
    }
    builder.build()
}

/// The 3-coloring problem of Section 1.2 (configurations (1)): Θ(log* n).
pub fn three_coloring_binary() -> LclProblem {
    coloring(2, 3)
}

/// The 2-coloring problem of Section 1.2 (configurations (2)): Θ(n).
pub fn two_coloring_binary() -> LclProblem {
    coloring(2, 2)
}

/// The *branch 2-coloring* problem of Section 1.4 (configurations (5)): below a node
/// labeled 1 there is always both an all-1 path and a properly 2-colored path.
/// Complexity Θ(log n).
pub fn branch_two_coloring() -> LclProblem {
    let mut b = LclProblem::builder(2);
    b.configuration("1", &["1", "2"]);
    b.configuration("2", &["1", "1"]);
    b.build()
}

/// The problem Π₀ of Figure 2: the disjoint union of branch 2-coloring (labels 1, 2)
/// and proper 2-coloring (labels a, b). Complexity Θ(log n); the first pruning
/// iteration of Algorithm 2 removes {a, b}.
pub fn figure_2_combination() -> LclProblem {
    let mut b = LclProblem::builder(2);
    b.configuration("a", &["b", "b"]);
    b.configuration("b", &["a", "a"]);
    b.configuration("1", &["1", "2"]);
    b.configuration("2", &["1", "1"]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::{classify, Complexity};

    #[test]
    fn three_coloring_matches_paper_configuration_count() {
        let p = three_coloring_binary();
        assert_eq!(p.delta(), 2);
        assert_eq!(p.num_labels(), 3);
        assert_eq!(p.num_configurations(), 9);
    }

    #[test]
    fn two_coloring_matches_paper() {
        let p = two_coloring_binary();
        assert_eq!(p.num_configurations(), 2);
    }

    #[test]
    fn coloring_counts_for_other_parameters() {
        // colors = 4, delta = 2: per parent, multisets of size 2 over 3 colors = 6.
        assert_eq!(coloring(2, 4).num_configurations(), 24);
        // delta = 3, colors = 2: per parent the single all-other-color triple.
        assert_eq!(coloring(3, 2).num_configurations(), 2);
        // delta = 1 (directed paths), colors = 3: 6 ordered pairs.
        assert_eq!(coloring(1, 3).num_configurations(), 6);
    }

    #[test]
    fn one_coloring_is_unsolvable() {
        let p = coloring(2, 1);
        assert_eq!(p.num_labels(), 1);
        assert_eq!(p.num_configurations(), 0);
        assert_eq!(classify(&p).complexity, Complexity::Unsolvable);
    }

    #[test]
    fn classifications_match_the_paper() {
        assert_eq!(
            classify(&three_coloring_binary()).complexity,
            Complexity::LogStar
        );
        assert_eq!(
            classify(&two_coloring_binary()).complexity,
            Complexity::Polynomial { exponent: 1 }
        );
        assert_eq!(classify(&branch_two_coloring()).complexity, Complexity::Log);
        assert_eq!(
            classify(&figure_2_combination()).complexity,
            Complexity::Log
        );
    }

    #[test]
    fn coloring_with_more_colors_than_needed_is_log_star() {
        assert_eq!(classify(&coloring(2, 4)).complexity, Complexity::LogStar);
        assert_eq!(classify(&coloring(3, 4)).complexity, Complexity::LogStar);
    }

    #[test]
    fn two_coloring_on_higher_degree_is_still_global() {
        assert_eq!(
            classify(&coloring(3, 2)).complexity,
            Complexity::Polynomial { exponent: 1 }
        );
    }
}
