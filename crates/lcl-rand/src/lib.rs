//! A tiny, dependency-free, seeded pseudo-random number generator.
//!
//! The workspace builds without any external crates, so the tree generators,
//! random-problem generators, identifier assignments, property tests, and
//! benchmarks all draw their randomness from this SplitMix64 generator. It is
//! deterministic per seed, fast, and statistically solid for test/benchmark
//! workloads (it is the seeding generator of `xoshiro`); it is *not* a
//! cryptographic generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly random `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        // Lemire's multiply-shift rejection method, bias-free.
        let bound64 = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound64 as u128);
            let low = m as u64;
            if low >= bound64.wrapping_neg() % bound64 {
                return (m >> 64) as usize;
            }
        }
    }

    /// A uniformly random `u64` in the inclusive range `[lo, hi]`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        // Rejection sampling over the largest multiple of `span`.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = self.next_u64();
            if x < zone {
                return lo + x % span;
            }
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 random mantissa bits give a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_index_stays_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for bound in 1..50 {
            for _ in 0..100 {
                assert!(rng.gen_index(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_endpoints() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let x = rng.gen_range_u64(5, 8);
            assert!((5..=8).contains(&x));
            seen_lo |= x == 5;
            seen_hi |= x == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::seed_from_u64(11);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "suspicious bias: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }
}
