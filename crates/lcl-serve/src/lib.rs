//! `lcl-serve` — the fault-tolerant classification daemon behind
//! `rtlcl serve`.
//!
//! The PODC 2021 classifier and its memoizing [`ClassificationEngine`] are
//! fast; what every previous entry point shared was a one-shot process whose
//! warm cache died on exit. This crate is the first *resident* subsystem: one
//! warm engine behind a hand-rolled HTTP/1.1 JSON interface (the workspace
//! stays dependency-free — no tokio, no hyper, no serde), with the failure
//! behavior engineered rather than incidental:
//!
//! * **Backpressure, not collapse** — a bounded accept queue; arrivals beyond
//!   it are shed with `503` + `Retry-After` at O(1) memory ([`server`]).
//! * **Deadlines everywhere** — absolute read deadlines defeat slowloris
//!   peers ([`http`]), per-request compute deadlines shed work that would
//!   monopolize a worker ([`state`]).
//! * **Hostile input is a status code** — size caps, strict parsing, and a
//!   depth-limited JSON parser ([`json`]) turn every malformed byte into a
//!   structured `400`-class response, never a panic.
//! * **Panics burn one request** — each request runs under `catch_unwind`;
//!   a poisoned request answers `500` and the engine keeps serving.
//! * **Crash-safe persistence** — graceful shutdown drains in-flight work and
//!   flushes the engine memo through `lcl-core`'s atomic snapshot writer; a
//!   damaged file found at boot is quarantined to `<path>.corrupt`, and a
//!   restart warm-boots from the last good flush.
//!
//! [`ClassificationEngine`]: lcl_core::ClassificationEngine

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod render;
pub mod server;
#[cfg(unix)]
pub mod signal;
pub mod state;

pub use http::{Request, Response};
pub use json::{Json, JsonParseError};
pub use render::{histogram_json, report_to_json};
pub use server::{BootReport, Server, ShutdownReport, StartError};
pub use state::{Metrics, ServeConfig, ServeState};
