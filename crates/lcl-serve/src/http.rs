//! Minimal HTTP/1.1 over `std::net::TcpStream`, hardened for hostile peers.
//!
//! Scope: exactly what the daemon needs — parse one request (method, path,
//! `Content-Length` body) and write one response, then close. No keep-alive,
//! no chunked bodies, no extensions. What it *does* do carefully is fail:
//!
//! * every read runs against an **absolute deadline** — the socket read
//!   timeout is re-armed with the remaining budget before each `read`, so a
//!   slowloris peer trickling one byte per second cannot hold a worker past
//!   the deadline;
//! * header and body sizes are capped (`431` / `413`) before any allocation
//!   proportional to peer input;
//! * a `POST` without `Content-Length` is `411`, `Transfer-Encoding` is
//!   rejected (`400`) rather than misparsed;
//! * every malformed byte is a typed [`HttpError`] mapped to a structured
//!   JSON error response — never a panic, never a hung connection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Per-connection read limits and deadline.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Cap on the request line + headers, bytes.
    pub max_header_bytes: usize,
    /// Cap on the declared (and actual) body, bytes.
    pub max_body_bytes: usize,
    /// Absolute point by which the whole request must have arrived.
    pub deadline: Instant,
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercase as sent).
    pub method: String,
    /// The request target, query string stripped.
    pub path: String,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be read. Each variant maps to one status code —
/// the daemon turns these into structured JSON errors.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing (`400`).
    Bad(&'static str),
    /// The peer ran out of deadline mid-request (`408`).
    Timeout,
    /// The peer closed before a full request arrived (no response possible).
    Disconnected,
    /// Request line + headers exceeded the cap (`431`).
    HeadersTooLarge,
    /// Declared body exceeds the cap (`413`).
    BodyTooLarge,
    /// `POST` without a `Content-Length` (`411`).
    LengthRequired,
    /// Socket error other than timeout/EOF.
    Io(std::io::Error),
}

impl HttpError {
    /// The status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Bad(_) => 400,
            HttpError::Timeout => 408,
            HttpError::Disconnected | HttpError::Io(_) => 400,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::LengthRequired => 411,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::Bad(what) => format!("malformed request: {what}"),
            HttpError::Timeout => "request not received within the read deadline".into(),
            HttpError::Disconnected => "connection closed mid-request".into(),
            HttpError::HeadersTooLarge => "request headers exceed the size limit".into(),
            HttpError::BodyTooLarge => "request body exceeds the size limit".into(),
            HttpError::LengthRequired => "POST requires a Content-Length header".into(),
            HttpError::Io(e) => format!("socket error: {e}"),
        }
    }
}

/// Re-arms the socket's read timeout with the time left until `deadline`.
/// An already-expired deadline is [`HttpError::Timeout`] immediately.
fn arm_read_timeout(stream: &TcpStream, deadline: Instant) -> Result<(), HttpError> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or(HttpError::Timeout)?;
    stream
        .set_read_timeout(Some(remaining))
        .map_err(HttpError::Io)
}

fn read_some(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<usize, HttpError> {
    arm_read_timeout(stream, deadline)?;
    loop {
        match stream.read(buf) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(n) => return Ok(n),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(HttpError::Timeout)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                // Retries re-arm so a signal storm can't extend the deadline.
                arm_read_timeout(stream, deadline)?;
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads and parses one request under `limits`.
pub fn read_request(stream: &mut TcpStream, limits: &ReadLimits) -> Result<Request, HttpError> {
    // Accumulate until the blank line ending the headers, bounded.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(at) = find_header_end(&buf) {
            break at;
        }
        if buf.len() > limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        let n = read_some(stream, &mut chunk, limits.deadline)?;
        buf.extend_from_slice(&chunk[..n]);
    };
    if header_end > limits.max_header_bytes {
        return Err(HttpError::HeadersTooLarge);
    }

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::Bad("headers are not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(HttpError::Bad("request line has no method"))?
        .to_string();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(HttpError::Bad("request line has no absolute path"))?;
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        _ => return Err(HttpError::Bad("expected HTTP/1.0 or HTTP/1.1")),
    }
    if parts.next().is_some() {
        return Err(HttpError::Bad("request line has trailing fields"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Bad("header line has no colon"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| HttpError::Bad("unparseable Content-Length"))?;
                if content_length.is_some_and(|prev| prev != n) {
                    return Err(HttpError::Bad("conflicting Content-Length headers"));
                }
                content_length = Some(n);
            }
            "transfer-encoding" => {
                // No chunked support: refusing is safer than misframing.
                return Err(HttpError::Bad("Transfer-Encoding is not supported"));
            }
            "expect" => {
                // No 100-continue dance; peers that wait for it time out.
                return Err(HttpError::Bad("Expect is not supported"));
            }
            _ => {}
        }
    }

    let body_len = match (method.as_str(), content_length) {
        ("POST" | "PUT" | "PATCH", None) => return Err(HttpError::LengthRequired),
        (_, None) => 0,
        (_, Some(n)) => n,
    };
    if body_len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }

    let mut body = buf.split_off(header_end + 4);
    drop(buf);
    if body.len() > body_len {
        return Err(HttpError::Bad("more body bytes than Content-Length"));
    }
    while body.len() < body_len {
        let want = (body_len - body.len()).min(chunk.len());
        let n = read_some(stream, &mut chunk[..want], limits.deadline)?;
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request { method, path, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response: status, JSON body, optional `Retry-After` advice.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body (sent compact, with `Content-Type: application/json`).
    pub body: Json,
    /// Seconds of `Retry-After` to advertise (the overload-shed contract).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A `200 OK` with the given body.
    pub fn ok(body: Json) -> Response {
        Response {
            status: 200,
            body,
            retry_after: None,
        }
    }

    /// An error response with the daemon's uniform error shape:
    /// `{"error": <kind>, "detail": <detail>}`.
    pub fn error(status: u16, kind: &str, detail: impl Into<String>) -> Response {
        Response {
            status,
            body: Json::Obj(vec![
                ("error".into(), Json::str(kind)),
                ("detail".into(), Json::Str(detail.into())),
            ]),
            retry_after: None,
        }
    }

    /// Attaches `Retry-After: secs`.
    pub fn with_retry_after(mut self, secs: u32) -> Response {
        self.retry_after = Some(secs);
        self
    }

    /// Serializes status line + headers + compact body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = self.body.to_compact();
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            body.len()
        );
        if let Some(secs) = self.retry_after {
            out.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        out.push_str("\r\n");
        out.push_str(&body);
        out.into_bytes()
    }

    /// Writes the response, bounded by a write timeout; errors are returned
    /// (the caller logs and drops the connection, nothing else to do).
    pub fn write(&self, stream: &mut TcpStream, write_timeout: Duration) -> std::io::Result<()> {
        stream.set_write_timeout(Some(write_timeout))?;
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

/// Reason phrases for the status codes the daemon uses.
fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn limits() -> ReadLimits {
        ReadLimits {
            max_header_bytes: 4096,
            max_body_bytes: 1 << 16,
            deadline: Instant::now() + Duration::from_secs(2),
        }
    }

    /// Writes `wire` into a loopback socket and parses it from the other end.
    fn parse(wire: &[u8]) -> Result<Request, HttpError> {
        parse_with(wire, limits())
    }

    fn parse_with(wire: &[u8], limits: ReadLimits) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(wire).unwrap();
        client.flush().unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, &limits)
    }

    #[test]
    fn parses_a_get() {
        let req = parse(b"GET /healthz?probe=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /classify HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/classify");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn post_without_length_is_411() {
        let err = parse(b"POST /classify HTTP/1.1\r\nHost: x\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::LengthRequired));
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn oversized_declared_body_is_413_without_reading_it() {
        let mut l = limits();
        l.max_body_bytes = 8;
        let err = parse_with(
            b"POST /classify HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n",
            l,
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_headers_are_431() {
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        wire.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "y".repeat(8192)).as_bytes());
        let err = parse(&wire).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge));
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for wire in [
            b"FLY ME /to HTTP/1.1 moon\r\n\r\n".as_slice(),
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / SMTP/1.1\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"\r\n\r\n",
            b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: two\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab",
        ] {
            let err = parse(wire).unwrap_err();
            assert!(
                matches!(err, HttpError::Bad(_)),
                "{:?} -> {err:?}",
                String::from_utf8_lossy(wire)
            );
            assert_eq!(err.status(), 400);
        }
    }

    #[test]
    fn stalled_peer_times_out_against_the_absolute_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        // Send half a request and stall.
        client.write_all(b"GET /hea").unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        let tight = ReadLimits {
            deadline: Instant::now() + Duration::from_millis(120),
            ..limits()
        };
        let start = Instant::now();
        let err = read_request(&mut server_side, &tight).unwrap_err();
        assert!(matches!(err, HttpError::Timeout), "{err:?}");
        assert_eq!(err.status(), 408);
        // The deadline is absolute: we returned promptly, not after some
        // multiple of a per-read timeout.
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn disconnect_mid_request_is_clean() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .unwrap();
        drop(client);
        let (mut server_side, _) = listener.accept().unwrap();
        let err = read_request(&mut server_side, &limits()).unwrap_err();
        assert!(matches!(err, HttpError::Disconnected), "{err:?}");
    }

    #[test]
    fn response_wire_format() {
        let bytes = Response::ok(Json::Obj(vec![("ok".into(), Json::Bool(true))])).to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let shed = Response::error(503, "overloaded", "queue full")
            .with_retry_after(1)
            .to_bytes();
        let text = String::from_utf8(shed).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("\"error\":\"overloaded\""));
    }
}
