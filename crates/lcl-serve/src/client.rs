//! A minimal blocking HTTP/1.1 client for the daemon's wire format: one
//! request per connection, `Connection: close`, JSON bodies. Used by the
//! integration tests and the load-generator bench; not a general client.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{self, Json};

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` seconds, when the server sent the header.
    pub retry_after: Option<u32>,
    /// The parsed JSON body.
    pub body: Json,
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, None, timeout)
}

/// `POST path` with a JSON body.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &Json,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body), timeout)
}

/// Sends one request and reads the response to EOF.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Json>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut conn = TcpStream::connect_timeout(&addr, timeout)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    let payload = body.map(|b| b.to_compact()).unwrap_or_default();
    let mut wire = format!("{method} {path} HTTP/1.1\r\nHost: rtlcl\r\n");
    if body.is_some() {
        wire.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            payload.len()
        ));
    }
    wire.push_str("\r\n");
    wire.push_str(&payload);
    conn.write_all(wire.as_bytes())?;

    let mut raw = Vec::new();
    match conn.read_to_end(&mut raw) {
        Ok(_) => {}
        // A peer that sheds load may reset the connection right after its
        // response (unread request bytes turn the close into an RST). If a
        // parseable response made it into our buffer first, honor it.
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset && !raw.is_empty() => {
            if let Ok(resp) = parse_response(&raw) {
                return Ok(resp);
            }
            return Err(e);
        }
        Err(e) => return Err(e),
    }
    parse_response(&raw)
}

fn invalid(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let text = std::str::from_utf8(raw).map_err(|_| invalid("response is not UTF-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| invalid("response has no header terminator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| invalid("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("unparseable status line"))?;
    let mut retry_after = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let body = json::parse(body).map_err(|e| invalid(&format!("response body: {e}")))?;
    Ok(ClientResponse {
        status,
        retry_after,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_shed_response() {
        let wire = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: 21\r\nRetry-After: 1\r\n\r\n{\"error\":\"overloaded\"}";
        // Content-Length is wrong on purpose (21 vs 22): the client reads to
        // EOF and ignores it, like the daemon's close-delimited responses allow.
        let r = parse_response(wire).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(1));
        assert_eq!(
            r.body.get("error").and_then(Json::as_str),
            Some("overloaded")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 ok\r\n\r\n{}").is_err());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\n\r\nnot json").is_err());
    }
}
