//! The workspace's shared hand-rolled JSON: a value type with deterministic
//! emission (moved here from the CLI, which re-uses it) plus a strict parser
//! for request bodies.
//!
//! The workspace builds without external crates, so instead of serde both the
//! CLI's reports and the daemon's request/response bodies go through this tiny
//! value type. Output is deterministic: object keys keep insertion order,
//! label sets are in ascending label order. Parsing is hardened for hostile
//! input — depth-limited recursion, every malformed byte a structured
//! [`JsonParseError`], never a panic.

use std::fmt;

/// Maximum nesting depth [`parse`] accepts. Deeper input is an error, not a
/// stack overflow — request bodies are attacker-controlled.
pub const MAX_PARSE_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number rendered without a fractional part when integral.
    Num(f64),
    /// An unsigned integer, rendered exactly. `Num` goes through `f64` and
    /// loses integers above 2^53 — counters, ids, and seeds use this variant
    /// so a `u64::MAX` seed survives the round trip digit for digit.
    Uint(u64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an integer value (exact: routed through [`Json::Uint`]).
    pub fn int(n: usize) -> Json {
        Json::Uint(n as u64)
    }

    /// Shorthand for an exact unsigned 64-bit value (seeds, counters).
    pub fn uint(n: u64) -> Json {
        Json::Uint(n)
    }

    /// Looks a key up in an object (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer (exact `Uint`,
    /// or an integral `Num` within `u64` range).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(n) => Some(n),
            Json::Num(n) if (0.0..=9e15).contains(&n) && n.fract() == 0.0 => Some(n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Uint(n) => out.push_str(&format!("{n}")),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                Self::write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                })
            }
            Json::Obj(entries) => {
                Self::write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    Json::Str(entries[i].0.clone()).write(out, None, 0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, depth + 1)
                })
            }
        }
    }

    fn write_seq(
        out: &mut String,
        indent: Option<usize>,
        depth: usize,
        open: char,
        close: char,
        len: usize,
        mut item: impl FnMut(&mut String, usize),
    ) {
        out.push(open);
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * (depth + 1)));
            }
            item(out, i);
        }
        if len > 0 {
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * depth));
            }
        }
        out.push(close);
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Why a request body failed to parse as JSON: byte offset and a static
/// message. Rendered into the daemon's structured `400` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What was wrong there.
    pub message: &'static str,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON document. Strict: the whole input must be a single value
/// (plus surrounding whitespace), nesting is capped at [`MAX_PARSE_DEPTH`],
/// and non-negative integers come back as exact [`Json::Uint`] values.
pub fn parse(text: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonParseError {
        JsonParseError {
            at: self.at,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting depth limit exceeded"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.at += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.at += 1; // consume '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.at += 1; // consume '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate escape"));
                                }
                                self.at += 1;
                                self.expect(b'u', "unpaired surrogate escape")?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code).ok_or(self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or(self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            // hex4 advanced past the digits; undo the loop's
                            // unconditional advance below.
                            self.at -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.at += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Input is a &str, so multi-byte sequences are valid UTF-8;
                    // copy the whole scalar value.
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).expect("input slice came from a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid unicode escape digits")),
            };
            v = (v << 4) | d;
            self.at += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let int_start = self.at;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.at == int_start {
            return Err(self.err("invalid number"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.at += 1;
            let frac_start = self.at;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
            if self.at == frac_start {
                return Err(self.err("invalid number"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            let exp_start = self.at;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
            if self.at == exp_start {
                return Err(self.err("invalid number"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.at]).expect("number characters are ASCII");
        // Non-negative integers parse exactly; everything else goes through
        // f64 (the same precision contract as emission).
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonParseError {
                at: start,
                message: "number out of range",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::Obj(vec![
            ("a".into(), Json::int(1)),
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c".into(), Json::str("x\"y\n")),
        ]);
        assert_eq!(v.to_compact(), r#"{"a":1,"b":[true,null],"c":"x\"y\n"}"#);
    }

    #[test]
    fn pretty_rendering_is_valid_and_indented() {
        let v = Json::Obj(vec![("k".into(), Json::Arr(vec![Json::int(7)]))]);
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"k\": [\n    7\n  ]\n"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).to_compact(), "{}");
    }

    #[test]
    fn float_rendering() {
        assert_eq!(Json::Num(1.5).to_compact(), "1.5");
        assert_eq!(Json::Num(3.0).to_compact(), "3");
    }

    #[test]
    fn uints_render_exactly_beyond_the_f64_integer_range() {
        // u64::MAX: the seed-corruption regression. Through Num this would
        // come out as 18446744073709552000 (or float notation); Uint is exact.
        assert_eq!(Json::uint(u64::MAX).to_compact(), "18446744073709551615");
        // First integer f64 cannot represent: 2^53 + 1.
        assert_eq!(Json::uint((1 << 53) + 1).to_compact(), "9007199254740993");
        assert_ne!(
            Json::Num(((1u64 << 53) + 1) as f64).to_compact(),
            "9007199254740993"
        );
        // int() routes through Uint, so large usizes are exact too.
        assert_eq!(Json::int(usize::MAX).to_compact(), u64::MAX.to_string());
        // Small values render identically to the old Num path.
        assert_eq!(Json::int(0).to_compact(), "0");
        assert_eq!(Json::int(42).to_compact(), "42");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Uint(42));
        assert_eq!(parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(parse("2e3").unwrap(), Json::Num(2000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_exact_u64() {
        assert_eq!(parse("18446744073709551615").unwrap(), Json::Uint(u64::MAX));
        assert_eq!(
            parse("9007199254740993").unwrap(),
            Json::Uint((1 << 53) + 1)
        );
    }

    #[test]
    fn parses_containers_and_accessors() {
        let v = parse(
            r#"{"problem": "1:22\n", "nodes": 101, "flags": [true, null], "deep": {"k": 1}}"#,
        )
        .unwrap();
        assert_eq!(v.get("problem").and_then(Json::as_str), Some("1:22\n"));
        assert_eq!(v.get("nodes").and_then(Json::as_u64), Some(101));
        assert_eq!(
            v.get("flags").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("k"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("anything"), None);
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap(),
            Json::Str("a\n\t\"\\Aé".into())
        );
        // Surrogate pair: 😀 U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"λ δ\"").unwrap(), Json::Str("λ δ".into()));
    }

    #[test]
    fn round_trips_through_emission() {
        let texts = [
            r#"{"a":1,"b":[true,null,"x\"y"],"c":{"d":1.5}}"#,
            r#"[1,2,3]"#,
            r#""plain""#,
        ];
        for text in texts {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_compact()).unwrap(), v, "{text}");
            assert_eq!(parse(&v.to_pretty()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn rejects_malformed_input_cleanly() {
        let bad = [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "\"bad escape \\q\"",
            "\"\\u12g4\"",
            "\"\\ud83d\"",        // lone high surrogate
            "\"\\ud83d\\u0041\"", // high surrogate + non-surrogate
            "nul",
            "truex",
            "01x",
            "-",
            "1.",
            "1e",
            "[1]]",
            "{\"a\":1} extra",
            "\u{1}",
        ];
        for text in bad {
            let got = parse(text);
            assert!(
                got.is_err(),
                "`{}` parsed as {:?}",
                text.escape_debug(),
                got
            );
        }
        // `truex`: the literal itself is fine, trailing junk is the error.
        assert!(parse("true x").is_err());
    }

    #[test]
    fn rejects_excessive_nesting() {
        let mut deep = String::new();
        for _ in 0..(MAX_PARSE_DEPTH + 2) {
            deep.push('[');
        }
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.message, "nesting depth limit exceeded");
        // At the limit itself, parsing proceeds (and then fails on truncation,
        // not depth).
        let mut ok_depth = String::new();
        for _ in 0..MAX_PARSE_DEPTH {
            ok_depth.push('[');
        }
        for _ in 0..MAX_PARSE_DEPTH {
            ok_depth.push(']');
        }
        assert!(parse(&ok_depth).is_ok());
    }
}
