//! The daemon chassis: listener, bounded accept queue, worker pool, and the
//! shutdown/flush lifecycle.
//!
//! ```text
//! accept thread ──► bounded queue ──► N workers ──► ServeState::handle
//!      │  (full: shed 503+Retry-After,  │  (read with absolute deadline,
//!      │   one nonblocking write)       │   catch_unwind per request)
//!      └── stop flag ◄───────────────────┴── Server::shutdown()
//! ```
//!
//! The lifecycle contract:
//!
//! * **Boot** loads the configured snapshot if present — quarantining a
//!   damaged file (renamed to `<path>.corrupt`, campaign starts fresh) and
//!   refusing to start only when the file is something else entirely
//!   (wrong magic/version: overwriting it on the next flush would destroy
//!   data the user pointed at by mistake).
//! * **Steady state** memory is bounded by construction: ≤ `queue_capacity`
//!   queued connections, ≤ `workers` in-flight requests, each request capped
//!   in header/body size and read/compute/write time.
//! * **Shutdown** ([`Server::shutdown`] + [`Server::join`], the SIGTERM path)
//!   stops accepting, lets workers drain the queue and their in-flight
//!   requests (each bounded by the timeouts above, so the drain is too), then
//!   flushes the engine memo atomically. A SIGKILL instead loses at most the
//!   memo delta since the last flush — the snapshot file itself can't tear.

use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{read_request, HttpError, ReadLimits, Response};
use crate::state::{ServeConfig, ServeState};
use lcl_core::{load_or_quarantine, ClassificationEngine, LoadOutcome, SnapshotError};

/// Why the daemon refused to start.
#[derive(Debug)]
pub enum StartError {
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// The configured snapshot path holds a file that is not a damaged
    /// snapshot but something else entirely (wrong magic, unsupported
    /// version, malformed fields): flushing over it would destroy data.
    Snapshot(SnapshotError),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::Io(e) => write!(f, "cannot start the server: {e}"),
            StartError::Snapshot(e) => write!(
                f,
                "refusing to start: the snapshot file is not usable and not \
                 quarantinable ({e}); move it aside or point --snapshot elsewhere"
            ),
        }
    }
}

impl std::error::Error for StartError {}

impl From<std::io::Error> for StartError {
    fn from(e: std::io::Error) -> Self {
        StartError::Io(e)
    }
}

/// What boot found at the snapshot path.
#[derive(Debug, Default)]
pub struct BootReport {
    /// Memo entries imported from the snapshot (0 = cold boot).
    pub warm_memo_entries: usize,
    /// Set when a damaged snapshot was renamed aside: (new path, error).
    pub quarantined: Option<(PathBuf, String)>,
}

/// What shutdown left behind.
#[derive(Debug, Default)]
pub struct ShutdownReport {
    /// Memo entries flushed to the snapshot path (None = no path configured).
    pub flushed_entries: Option<usize>,
    /// The flush failure, if the final write failed (the daemon still shut
    /// down cleanly; the previous snapshot file, if any, is intact).
    pub flush_error: Option<String>,
}

/// Shared connection queue: bounded, condvar-signaled.
struct Queue {
    conns: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
}

impl Queue {
    /// Enqueues if there is room; the connection is handed back on overflow.
    fn push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.conns.lock().expect("connection queue poisoned");
        if q.len() >= self.capacity {
            return Err(conn);
        }
        q.push_back(conn);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops a connection, waiting up to `wait`; `None` on timeout.
    fn pop(&self, wait: Duration) -> Option<TcpStream> {
        let mut q = self.conns.lock().expect("connection queue poisoned");
        if let Some(conn) = q.pop_front() {
            return Some(conn);
        }
        let (mut q, _) = self
            .ready
            .wait_timeout(q, wait)
            .expect("connection queue poisoned");
        q.pop_front()
    }
}

/// A running daemon. Dropping the handle without [`Server::join`] detaches
/// the threads (they keep serving until the process exits); the orderly path
/// is `shutdown()` then `join()`.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// What boot found at the snapshot path.
    pub boot: BootReport,
}

impl Server {
    /// Boots the engine (warm, cold, or quarantine — see the module docs),
    /// binds, and starts the accept loop plus worker pool.
    pub fn start(config: ServeConfig) -> Result<Server, StartError> {
        let engine = ClassificationEngine::new();
        let mut boot = BootReport::default();
        if let Some(path) = config.snapshot_path.as_deref() {
            match load_or_quarantine(path) {
                Ok(LoadOutcome::Loaded(snap)) => {
                    boot.warm_memo_entries = snap.memo.len();
                    engine.import_memo(snap.memo);
                }
                Ok(LoadOutcome::Quarantined { to, error }) => {
                    boot.quarantined = Some((to, error.to_string()));
                }
                // No file yet: the first flush will create it.
                Err(SnapshotError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(SnapshotError::Io(e)) => return Err(StartError::Io(e)),
                Err(e) => return Err(StartError::Snapshot(e)),
            }
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let queue = Arc::new(Queue {
            conns: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: config.queue_capacity.max(1),
        });
        let state = Arc::new(ServeState::new(config, engine));
        let stop = Arc::new(AtomicBool::new(false));

        let mut threads = Vec::with_capacity(workers + 1);
        {
            let (queue, state, stop) = (queue.clone(), state.clone(), stop.clone());
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(listener, &queue, &state, &stop))
                    .map_err(StartError::Io)?,
            );
        }
        for i in 0..workers {
            let (queue, state, stop) = (queue.clone(), state.clone(), stop.clone());
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &state, &stop))
                    .map_err(StartError::Io)?,
            );
        }
        Ok(Server {
            addr,
            state,
            stop,
            threads,
            boot,
        })
    }

    /// The bound address (resolves `:0` port requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's resident state (metrics, engine) — shared, read-anytime.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Initiates graceful shutdown: stop accepting, drain queue and
    /// in-flight requests. Idempotent; returns immediately ([`Self::join`]
    /// waits).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(2); a throwaway local connection
        // wakes it so it can observe the stop flag. Failure is fine — the
        // listener may already be gone.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }

    /// Waits for the accept loop and every worker to finish, then flushes
    /// the engine memo to the snapshot path. Implies [`Self::shutdown`].
    pub fn join(mut self) -> ShutdownReport {
        self.shutdown();
        for t in self.threads.drain(..) {
            // A worker that panicked outside catch_unwind (a bug) must not
            // turn shutdown into a second panic; the flush still matters.
            let _ = t.join();
        }
        let mut report = ShutdownReport::default();
        if let Some(path) = self.state.config.snapshot_path.as_deref() {
            match self.state.engine.save_memo(path) {
                Ok(n) => report.flushed_entries = Some(n),
                Err(e) => report.flush_error = Some(e.to_string()),
            }
        }
        report
    }
}

/// How long an idle worker pop (or an accept loop backing off a transient
/// error) waits before re-checking the stop flag: the upper bound on
/// shutdown-notice latency. The hot paths never sleep this — accept blocks
/// in the kernel and is woken by [`Server::shutdown`]'s connection.
const POLL: Duration = Duration::from_millis(25);

fn accept_loop(listener: TcpListener, queue: &Queue, state: &ServeState, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                // Re-check after the blocking accept: this connection may be
                // the wake-up [`Server::shutdown`] sends, and anything
                // arriving at shutdown is not enqueued (a queued connection
                // would stall the drain for its full read timeout).
                if stop.load(Ordering::SeqCst) {
                    drop(conn);
                    return;
                }
                if let Err(conn) = queue.push(conn) {
                    state.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    shed(conn);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // Transient accept errors (peer reset mid-handshake, fd pressure):
            // keep serving, don't tight-loop.
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Sheds one connection: a single best-effort nonblocking write of the `503`
/// so the accept thread can never be stalled by a peer that won't read, then
/// the connection drops. Request bytes that already arrived are drained first
/// and the write side is shut down cleanly — closing a socket with unread
/// data sends RST, which can discard the in-flight 503 from the peer's
/// receive buffer. Memory cost: one scratch buffer, transiently.
fn shed(conn: TcpStream) {
    let response = Response::error(
        503,
        "overloaded",
        "request queue is full; retry after a moment",
    )
    .with_retry_after(1);
    if conn.set_nonblocking(true).is_ok() {
        let mut conn = conn;
        let mut sink = [0u8; 4096];
        while matches!(conn.read(&mut sink), Ok(n) if n > 0) {}
        let _ = conn.write(&response.to_bytes());
        let _ = conn.shutdown(std::net::Shutdown::Write);
    }
}

fn worker_loop(queue: &Queue, state: &ServeState, stop: &AtomicBool) {
    loop {
        let Some(conn) = queue.pop(POLL) else {
            // Drain contract: workers exit only once the queue is empty AND
            // shutdown was requested — queued requests are always served.
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        serve_connection(conn, state);
    }
}

fn serve_connection(mut conn: TcpStream, state: &ServeState) {
    state.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let config = &state.config;
    let limits = ReadLimits {
        max_header_bytes: config.max_header_bytes,
        max_body_bytes: config.max_body_bytes,
        deadline: Instant::now() + config.read_timeout,
    };
    let response = match read_request(&mut conn, &limits) {
        Ok(req) => {
            let deadline = Instant::now() + config.deadline;
            match catch_unwind(AssertUnwindSafe(|| state.handle(&req, deadline))) {
                Ok(response) => response,
                Err(_panic) => {
                    state.metrics.panics.fetch_add(1, Ordering::Relaxed);
                    Response::error(
                        500,
                        "internal",
                        "the request handler panicked; the daemon is still serving",
                    )
                }
            }
        }
        // Nobody is on the other end to answer.
        Err(HttpError::Disconnected) => {
            state.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        Err(e) => Response::error(e.status(), error_kind(&e), e.detail()),
    };
    state.metrics.record_response(response.status);
    let _ = response.write(&mut conn, config.write_timeout);
}

fn error_kind(e: &HttpError) -> &'static str {
    match e {
        HttpError::Timeout => "timeout",
        HttpError::HeadersTooLarge | HttpError::BodyTooLarge => "too_large",
        HttpError::LengthRequired | HttpError::Bad(_) => "bad_request",
        HttpError::Disconnected | HttpError::Io(_) => "bad_request",
    }
}
