//! The daemon's resident state and request dispatch: one warm
//! [`ClassificationEngine`], per-family sweep campaigns, and the metrics the
//! `/stats` endpoint reports.
//!
//! Dispatch ([`ServeState::handle`]) is a pure request → [`Response`]
//! function over that state. Every failure mode is a structured JSON error
//! with the right status code; nothing in here is allowed to take the daemon
//! down — the worker loop additionally wraps `handle` in `catch_unwind`, so
//! even a panic (a bug, or the `/debug/panic` test endpoint) burns only the
//! one request.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::http::{Request, Response};
use crate::json::{self, Json};
use crate::render::{histogram_json, report_to_json};
use lcl_algorithms::{repair_labeling, resolve_full, LabelPerturbation, RepairPlan, RepairScratch};
use lcl_core::{
    ClassificationEngine, EngineKind, Label, LaneWidth, LclProblem, SweepCheckpoint, SweepSnapshot,
};
use lcl_problems::canonical::{CanonicalFamily, MAX_CANONICAL_ENUM_LABELS};
use lcl_problems::catalog;
use lcl_rand::SplitMix64;
use lcl_sim::IdAssignment;
use lcl_trees::{DynamicTree, EditScriptGen, FlatTree};
use lcl_verify::LabelingValidator;

/// Everything the daemon's behavior is parameterized on. The defaults are
/// production-shaped; tests tighten them to provoke the failure paths.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7421`.
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Accepted connections waiting for a worker. Arrivals beyond this are
    /// shed with `503` — the bounded-memory contract.
    pub queue_capacity: usize,
    /// Request line + header size cap (`431` beyond).
    pub max_header_bytes: usize,
    /// Body size cap (`413` beyond).
    pub max_body_bytes: usize,
    /// Budget for reading one full request off the socket (slowloris bound).
    pub read_timeout: Duration,
    /// Budget for writing one response.
    pub write_timeout: Duration,
    /// Compute budget per request, measured from the moment a worker picks it
    /// up. Work that would overrun answers `503` with `Retry-After`.
    pub deadline: Duration,
    /// Maximum problems in one `classify-batch` request.
    pub max_batch: usize,
    /// Maximum tree size one `solve` request may ask for.
    pub max_solve_nodes: usize,
    /// Maximum edits in one `/edit` batch request.
    pub max_edit_batch: usize,
    /// Default orbit budget of one `sweep` leg when the request names none.
    pub default_leg_orbits: u64,
    /// Hard cap on one `sweep` leg's orbit budget.
    pub max_leg_orbits: u64,
    /// Engine-memo snapshot: warm-boot source at startup, flush target on
    /// shutdown and `/flush`. `None` disables persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Enables `/debug/panic` (panic-isolation testing only).
    pub debug_endpoints: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7421".into(),
            workers: 4,
            queue_capacity: 64,
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            deadline: Duration::from_secs(10),
            max_batch: 4096,
            max_solve_nodes: 1_000_000,
            max_edit_batch: 4096,
            default_leg_orbits: 65_536,
            max_leg_orbits: 1 << 20,
            snapshot_path: None,
            debug_endpoints: false,
        }
    }
}

/// Monotonic counters behind `/stats`. Plain relaxed atomics: the numbers are
/// operational telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests a worker started processing.
    pub requests: AtomicU64,
    /// `2xx` responses.
    pub ok: AtomicU64,
    /// `4xx` responses (malformed input, unknown routes, oversized requests).
    pub client_errors: AtomicU64,
    /// `5xx` responses other than shed/deadline (panics, snapshot failures).
    pub server_errors: AtomicU64,
    /// Connections shed at the accept queue (`503 Retry-After`).
    pub shed: AtomicU64,
    /// Requests whose compute deadline expired (`503`).
    pub deadline_exceeded: AtomicU64,
    /// Requests that timed out while being read (`408`, slowloris defense).
    pub read_timeouts: AtomicU64,
    /// Worker panics caught and converted to `500`.
    pub panics: AtomicU64,
}

impl Metrics {
    /// Classifies a finished response into the status-class counters.
    pub fn record_response(&self, status: u16) {
        match status {
            200..=299 => self.ok.fetch_add(1, Ordering::Relaxed),
            408 => {
                self.read_timeouts.fetch_add(1, Ordering::Relaxed);
                self.client_errors.fetch_add(1, Ordering::Relaxed)
            }
            400..=499 => self.client_errors.fetch_add(1, Ordering::Relaxed),
            _ => self.server_errors.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// The resident dynamic-tree session behind `/edit`: one solved tree whose
/// labeling is repaired incrementally as edit batches arrive. Initializing a
/// new session replaces the old one.
struct EditSession {
    problem: LclProblem,
    report: lcl_core::ClassificationReport,
    plan: RepairPlan,
    tree: DynamicTree,
    labels: Vec<Label>,
    /// The solve's identifier assignment, maintained across batches via
    /// [`IdAssignment::apply_journal`] so survivors keep their identifiers.
    ids: IdAssignment,
    scratch: RepairScratch,
    validator: LabelingValidator,
    /// Growth target the edit generator steers the tree size toward.
    target_nodes: usize,
    batches: u64,
    edits_applied: u64,
}

/// One family's sweep campaign, keyed by `(δ, |Σ|)` in [`ServeState::sweeps`].
enum SweepSlot {
    /// Campaign state between legs.
    Idle(Box<SweepSnapshot>),
    /// A leg is running right now; concurrent requests get `409`.
    Running,
}

/// The daemon's resident state: configuration, the warm engine, per-family
/// sweep campaigns, and metrics.
pub struct ServeState {
    /// The daemon's configuration (immutable once started).
    pub config: ServeConfig,
    /// The one warm engine every request shares.
    pub engine: ClassificationEngine,
    /// `/stats` counters.
    pub metrics: Metrics,
    started: Instant,
    sweeps: Mutex<HashMap<(u16, u16), SweepSlot>>,
    edit_session: Mutex<Option<Box<EditSession>>>,
}

impl ServeState {
    /// Fresh state around a (possibly warm-booted) engine.
    pub fn new(config: ServeConfig, engine: ClassificationEngine) -> Self {
        ServeState {
            config,
            engine,
            metrics: Metrics::default(),
            started: Instant::now(),
            sweeps: Mutex::new(HashMap::new()),
            edit_session: Mutex::new(None),
        }
    }

    /// Dispatches one request. `deadline` is the request's compute budget
    /// (already running — the worker set it when it picked the request up).
    ///
    /// # Panics
    ///
    /// `POST /debug/panic` (when [`ServeConfig::debug_endpoints`] is on)
    /// panics on purpose; the worker loop's `catch_unwind` is the boundary
    /// that turns it — and any genuine bug — into a `500`.
    pub fn handle(&self, req: &Request, deadline: Instant) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/stats") => self.stats(),
            ("POST", "/classify") => self.classify(req),
            ("POST", "/classify-batch") => self.classify_batch(req, deadline),
            ("POST", "/solve") => self.solve(req),
            ("POST", "/edit") => self.edit(req, deadline),
            ("POST", "/sweep") => self.sweep(req),
            ("POST", "/flush") => self.flush(),
            ("POST", "/debug/panic") if self.config.debug_endpoints => {
                panic!("deliberate panic requested via /debug/panic")
            }
            (_, "/healthz" | "/stats") => method_not_allowed("GET"),
            (
                _,
                "/classify" | "/classify-batch" | "/solve" | "/edit" | "/sweep" | "/flush"
                | "/debug/panic",
            ) => method_not_allowed("POST"),
            _ => Response::error(404, "not_found", format!("no route for `{}`", req.path)),
        }
    }

    fn healthz(&self) -> Response {
        Response::ok(Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            (
                "uptime_ms".into(),
                Json::uint(self.started.elapsed().as_millis() as u64),
            ),
        ]))
    }

    fn stats(&self) -> Response {
        let stats = self.engine.stats();
        let m = &self.metrics;
        let sweeps = self.sweeps.lock().expect("sweep slots poisoned");
        let campaigns: Vec<Json> = {
            let mut keys: Vec<&(u16, u16)> = sweeps.keys().collect();
            keys.sort();
            keys.iter()
                .map(|&&(delta, labels)| {
                    let (state, remaining) = match &sweeps[&(delta, labels)] {
                        SweepSlot::Running => ("running", None),
                        SweepSlot::Idle(snap) => ("idle", Some(snap.cursor.remaining_masks())),
                    };
                    let mut obj = vec![
                        ("delta".into(), Json::int(delta as usize)),
                        ("labels".into(), Json::int(labels as usize)),
                        ("state".into(), Json::str(state)),
                    ];
                    if let Some(r) = remaining {
                        obj.push(("masks_remaining".into(), Json::uint(r)));
                    }
                    Json::Obj(obj)
                })
                .collect()
        };
        let counter = |a: &AtomicU64| Json::uint(a.load(Ordering::Relaxed));
        Response::ok(Json::Obj(vec![
            (
                "uptime_ms".into(),
                Json::uint(self.started.elapsed().as_millis() as u64),
            ),
            ("cache_hits".into(), Json::int(stats.cache_hits)),
            ("cache_misses".into(), Json::int(stats.cache_misses)),
            ("memo_entries".into(), Json::int(self.engine.memo_len())),
            ("requests".into(), counter(&m.requests)),
            ("responses_ok".into(), counter(&m.ok)),
            ("responses_client_error".into(), counter(&m.client_errors)),
            ("responses_server_error".into(), counter(&m.server_errors)),
            ("shed".into(), counter(&m.shed)),
            ("deadline_exceeded".into(), counter(&m.deadline_exceeded)),
            ("read_timeouts".into(), counter(&m.read_timeouts)),
            ("panics".into(), counter(&m.panics)),
            ("sweep_campaigns".into(), Json::Arr(campaigns)),
        ]))
    }

    fn classify(&self, req: &Request) -> Response {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let problem = match required_problem(&body, "problem") {
            Ok(p) => p,
            Err(r) => return r,
        };
        let full = body.get("report").and_then(Json::as_bool).unwrap_or(false);
        if full {
            let report = self.engine.classify_full(&problem);
            Response::ok(report_to_json(&report))
        } else {
            let complexity = self.engine.classify(&problem);
            Response::ok(Json::Obj(vec![
                ("problem".into(), Json::str(problem.to_text())),
                ("complexity".into(), Json::str(complexity.to_string())),
                (
                    "complexity_short".into(),
                    Json::str(complexity.short_name()),
                ),
            ]))
        }
    }

    fn classify_batch(&self, req: &Request, deadline: Instant) -> Response {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let Some(items) = body.get("problems").and_then(Json::as_array) else {
            return Response::error(400, "bad_request", "missing `problems` array");
        };
        if items.len() > self.config.max_batch {
            return Response::error(
                400,
                "bad_request",
                format!(
                    "{} problems exceed the batch limit of {}",
                    items.len(),
                    self.config.max_batch
                ),
            );
        }
        let mut problems = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let Some(text) = item.as_str() else {
                return Response::error(
                    400,
                    "bad_request",
                    format!("`problems[{i}]` is not a string"),
                );
            };
            match load_problem(text) {
                Ok(p) => problems.push(p),
                Err(e) => {
                    return Response::error(400, "bad_request", format!("`problems[{i}]`: {e}"))
                }
            }
        }
        // Classify one at a time so the compute deadline is enforced between
        // items — a batch that would overrun sheds instead of monopolizing a
        // worker (the engine memo makes the retry cheap: finished items hit).
        let mut results = Vec::with_capacity(problems.len());
        for (i, problem) in problems.iter().enumerate() {
            if Instant::now() >= deadline {
                self.metrics
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                return Response::error(
                    503,
                    "deadline_exceeded",
                    format!(
                        "compute deadline expired after {i} of {} problems; \
                         retry — classified prefixes are memoized",
                        problems.len()
                    ),
                )
                .with_retry_after(1);
            }
            let complexity = self.engine.classify(problem);
            results.push(Json::Obj(vec![
                ("problem".into(), Json::str(problem.to_text())),
                ("complexity".into(), Json::str(complexity.short_name())),
            ]));
        }
        let mut histogram: Vec<(String, usize)> = Vec::new();
        for r in &results {
            let name = r.get("complexity").and_then(Json::as_str).unwrap_or("?");
            match histogram.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1 += 1,
                None => histogram.push((name.to_string(), 1)),
            }
        }
        let stats = self.engine.stats();
        Response::ok(Json::Obj(vec![
            ("count".into(), Json::int(results.len())),
            ("cache_hits".into(), Json::int(stats.cache_hits)),
            ("cache_misses".into(), Json::int(stats.cache_misses)),
            (
                "histogram".into(),
                Json::Obj(
                    histogram
                        .into_iter()
                        .map(|(name, n)| (name, Json::int(n)))
                        .collect(),
                ),
            ),
            ("results".into(), Json::Arr(results)),
        ]))
    }

    fn solve(&self, req: &Request) -> Response {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let problem = match required_problem(&body, "problem") {
            Ok(p) => p,
            Err(r) => return r,
        };
        let nodes = body.get("nodes").and_then(Json::as_u64).unwrap_or(101) as usize;
        if nodes == 0 || nodes > self.config.max_solve_nodes {
            return Response::error(
                400,
                "bad_request",
                format!(
                    "`nodes` must be in 1..={}, got {nodes}",
                    self.config.max_solve_nodes
                ),
            );
        }
        let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(1);
        let include_labels = body
            .get("include_labels")
            .and_then(Json::as_bool)
            .unwrap_or(false);

        let report = self.engine.classify_full(&problem);
        if !report.complexity.is_solvable() {
            return Response::ok(Json::Obj(vec![
                ("problem".into(), Json::str(problem.to_text())),
                (
                    "complexity".into(),
                    Json::str(report.complexity.to_string()),
                ),
                ("solvable".into(), Json::Bool(false)),
            ]));
        }
        let tree = FlatTree::random_full(problem.delta(), nodes, seed);
        let idx = tree.level_index();
        let ids = IdAssignment::random_permutation_len(tree.len(), seed);
        let mut scratch = lcl_algorithms::SolveScratch::new();
        let outcome =
            match lcl_algorithms::solve_flat(&problem, &report, &tree, &idx, &ids, &mut scratch) {
                Ok(o) => o,
                Err(e) => {
                    return Response::error(500, "internal", format!("solver error: {e}"));
                }
            };
        if let Err(e) = LabelingValidator::new(&problem).validate_parallel(&tree, &outcome.labels) {
            return Response::error(
                500,
                "internal",
                format!("solver produced an invalid labeling: {e}"),
            );
        }
        let mut obj = vec![
            ("problem".into(), Json::str(problem.to_text())),
            (
                "complexity".into(),
                Json::str(report.complexity.to_string()),
            ),
            ("solvable".into(), Json::Bool(true)),
            ("nodes".into(), Json::int(tree.len())),
            ("seed".into(), Json::uint(seed)),
            ("algorithm".into(), Json::str(outcome.algorithm)),
            ("rounds".into(), Json::str(outcome.rounds.summary())),
            ("verified".into(), Json::Bool(true)),
        ];
        if include_labels {
            obj.push((
                "labels".into(),
                Json::Arr(
                    outcome
                        .labels
                        .iter()
                        .map(|&l| Json::str(problem.label_name(l)))
                        .collect(),
                ),
            ));
        }
        Response::ok(Json::Obj(obj))
    }

    /// `/edit`: the dynamic-tree session. A body with `problem` initializes
    /// (solve a fresh tree, build the repair plan, replace any old session); a
    /// body with `edits` applies one seeded batch to the current session and
    /// repairs the labeling incrementally, validating the dirty ranges. A
    /// concurrent `/edit` gets `409`; an expired compute deadline `503`.
    fn edit(&self, req: &Request, deadline: Instant) -> Response {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        };
        // One session, one request at a time: try_lock so a long repair never
        // queues a second worker behind the mutex past its own deadline.
        let Ok(mut slot) = self.edit_session.try_lock() else {
            return Response::error(409, "conflict", "another /edit request is running")
                .with_retry_after(1);
        };
        if body.get("problem").is_some() {
            return self.edit_init(&body, &mut slot);
        }
        if body.get("edits").is_some() {
            return self.edit_batch(&body, &mut slot, deadline);
        }
        Response::error(
            400,
            "bad_request",
            "an /edit body carries either `problem` (initialize a session) or `edits` (apply a batch)",
        )
    }

    fn edit_init(&self, body: &Json, slot: &mut Option<Box<EditSession>>) -> Response {
        let problem = match required_problem(body, "problem") {
            Ok(p) => p,
            Err(r) => return r,
        };
        let nodes = body.get("nodes").and_then(Json::as_u64).unwrap_or(4001) as usize;
        if nodes == 0 || nodes > self.config.max_solve_nodes {
            return Response::error(
                400,
                "bad_request",
                format!(
                    "`nodes` must be in 1..={}, got {nodes}",
                    self.config.max_solve_nodes
                ),
            );
        }
        let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(1);
        let report = self.engine.classify_full(&problem);
        if !report.complexity.is_solvable() {
            return Response::error(
                400,
                "bad_request",
                "the problem is unsolvable; there is no labeling to maintain",
            );
        }
        let plan = match RepairPlan::new(&problem, &report) {
            Ok(p) => p,
            Err(e) => {
                return Response::error(
                    400,
                    "bad_request",
                    format!("cannot build a repair plan: {e}"),
                )
            }
        };
        let mut tree = DynamicTree::new(
            FlatTree::random_full(problem.delta(), nodes, seed),
            problem.delta(),
        );
        let mut labels = Vec::new();
        let mut scratch = RepairScratch::new();
        if let Err(e) = resolve_full(&problem, &report, &mut tree, &mut labels, &mut scratch) {
            return Response::error(500, "internal", format!("initial solve failed: {e}"));
        }
        let response = Json::Obj(vec![
            ("problem".into(), Json::str(problem.to_text())),
            (
                "complexity".into(),
                Json::str(report.complexity.to_string()),
            ),
            ("nodes".into(), Json::int(tree.len())),
            ("seed".into(), Json::uint(seed)),
            ("session".into(), Json::str("initialized")),
        ]);
        let validator = LabelingValidator::new(&problem);
        let ids = IdAssignment::random_permutation_len(tree.len(), seed);
        *slot = Some(Box::new(EditSession {
            problem,
            report,
            plan,
            tree,
            labels,
            ids,
            scratch,
            validator,
            target_nodes: nodes,
            batches: 0,
            edits_applied: 0,
        }));
        Response::ok(response)
    }

    fn edit_batch(
        &self,
        body: &Json,
        slot: &mut Option<Box<EditSession>>,
        deadline: Instant,
    ) -> Response {
        let Some(session) = slot.as_deref_mut() else {
            return Response::error(
                409,
                "conflict",
                "no edit session; POST /edit with a `problem` first",
            );
        };
        let edits = body.get("edits").and_then(Json::as_u64).unwrap_or(0) as usize;
        if edits == 0 || edits > self.config.max_edit_batch {
            return Response::error(
                400,
                "bad_request",
                format!(
                    "`edits` must be in 1..={}, got {edits}",
                    self.config.max_edit_batch
                ),
            );
        }
        let seed = body
            .get("seed")
            .and_then(Json::as_u64)
            .unwrap_or(session.batches + 1);
        if Instant::now() >= deadline {
            self.metrics
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            return Response::error(503, "deadline_exceeded", "compute deadline expired")
                .with_retry_after(1);
        }

        let mut gen = EditScriptGen::new(seed, session.target_nodes);
        let mut buf = Vec::new();
        gen.apply_batch(&mut session.tree, edits, &mut buf);
        // Identifier maintenance must run before repair clears the journal.
        session.ids.apply_journal(session.tree.journal());
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let active: Vec<Label> = session.problem.labels().iter().collect();
        let perturbations: Vec<LabelPerturbation> = session
            .tree
            .relabel_sites()
            .iter()
            .map(|&node| LabelPerturbation {
                node,
                label: active[rng.gen_index(active.len())],
            })
            .collect();
        let outcome = match repair_labeling(
            &session.problem,
            &session.report,
            &session.plan,
            &mut session.tree,
            &mut session.labels,
            &perturbations,
            &mut session.scratch,
        ) {
            Ok(o) => o,
            Err(e) => {
                // The labeling may be stale now; drop the session rather than
                // serve unrepaired state.
                *slot = None;
                return Response::error(500, "internal", format!("repair failed: {e}"));
            }
        };
        let mut ranges_validated = 0usize;
        for range in session.scratch.dirty_ranges().collect::<Vec<_>>() {
            if let Err(e) =
                session
                    .validator
                    .validate_range(session.tree.tree(), &session.labels, range)
            {
                *slot = None;
                return Response::error(
                    500,
                    "internal",
                    format!("repair produced an invalid labeling: {e}"),
                );
            }
            ranges_validated += 1;
        }
        session.batches += 1;
        session.edits_applied += edits as u64;
        Response::ok(Json::Obj(vec![
            ("nodes".into(), Json::int(session.tree.len())),
            ("edits".into(), Json::int(edits)),
            ("seed".into(), Json::uint(seed)),
            ("sites".into(), Json::int(outcome.sites)),
            ("relabeled".into(), Json::int(outcome.relabeled)),
            ("climbs".into(), Json::int(outcome.climbs)),
            ("escalated".into(), Json::Bool(outcome.escalated)),
            ("ranges_validated".into(), Json::int(ranges_validated)),
            ("id_bits".into(), Json::int(session.ids.id_bits())),
            ("batches".into(), Json::uint(session.batches)),
            ("edits_applied".into(), Json::uint(session.edits_applied)),
        ]))
    }

    fn sweep(&self, req: &Request) -> Response {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let Some(delta) = body.get("delta").and_then(Json::as_u64) else {
            return Response::error(400, "bad_request", "missing `delta`");
        };
        let Some(labels) = body.get("labels").and_then(Json::as_u64) else {
            return Response::error(400, "bad_request", "missing `labels`");
        };
        if let Err(e) = validate_sweep_family(delta, labels) {
            return Response::error(400, "bad_request", e);
        }
        let (delta, labels) = (delta as u16, labels as u16);
        let max_orbits = body
            .get("max_orbits")
            .and_then(Json::as_u64)
            .unwrap_or(self.config.default_leg_orbits)
            .clamp(1, self.config.max_leg_orbits);

        // Claim the family's campaign slot; a concurrent leg is a conflict.
        let snapshot = {
            let mut slots = self.sweeps.lock().expect("sweep slots poisoned");
            let taken = match slots.remove(&(delta, labels)) {
                Some(SweepSlot::Running) => {
                    slots.insert((delta, labels), SweepSlot::Running);
                    return Response::error(
                        409,
                        "conflict",
                        format!("a sweep leg for (δ={delta}, {labels} labels) is already running"),
                    )
                    .with_retry_after(1);
                }
                Some(SweepSlot::Idle(snap)) => *snap,
                None => {
                    let family = CanonicalFamily::new(delta as usize, labels as usize);
                    let shards = std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1);
                    let mut snap = SweepSnapshot::fresh(
                        delta,
                        labels,
                        EngineKind::Bitsliced,
                        family.ranges(shards),
                    );
                    // Seed the campaign from the engine's memo: orbits the
                    // daemon already classified (warm boot, earlier requests)
                    // are answered as cache hits, not recomputed. Foreign-family
                    // keys never match, so the full memo is safe to carry.
                    snap.memo = self.engine.export_memo();
                    snap
                }
            };
            slots.insert((delta, labels), SweepSlot::Running);
            taken
        };
        // From here the slot reads Running: put *something* back on every
        // path. A panic in the engine unwinds past us into the worker's
        // catch_unwind; this guard downgrades that to losing the campaign's
        // in-memory state (slot removed) rather than wedging it at 409
        // forever. The engine memo keeps the classified verdicts either way.
        let guard = SlotGuard {
            slots: &self.sweeps,
            key: (delta, labels),
            put_back: None,
        };

        let family = CanonicalFamily::new(delta as usize, labels as usize);
        let universe = family.sliced_universe();
        let ckpt = SweepCheckpoint {
            path: None,
            every_orbits: u64::MAX,
            orbit_limit: Some(max_orbits),
        };
        let width = LaneWidth::default();
        let result = self.engine.sweep_resumable_bitsliced(
            &universe,
            width,
            snapshot,
            |r| family.blocks_in(r, width.lanes()),
            |mask| family.problem_at(mask),
            |mask| family.canonical_key_of(mask),
            &ckpt,
        );
        let (snap, completed) = match result {
            Ok(r) => r,
            // Unreachable with `path: None` (the only error source is the
            // checkpoint write), but never panic on a corner.
            Err(e) => {
                return Response::error(500, "internal", format!("sweep leg failed: {e}"));
            }
        };
        let masks_remaining = snap.cursor.remaining_masks();
        let response = Json::Obj(vec![
            ("delta".into(), Json::int(delta as usize)),
            ("labels".into(), Json::int(labels as usize)),
            ("engine".into(), Json::str(snap.cursor.engine.name())),
            ("max_orbits".into(), Json::uint(max_orbits)),
            ("completed".into(), Json::Bool(completed)),
            ("masks_remaining".into(), Json::uint(masks_remaining)),
            (
                "orbits_classified".into(),
                Json::uint(snap.outcome.orbits.total()),
            ),
            (
                "problems_accounted".into(),
                Json::uint(snap.outcome.problems.total()),
            ),
            ("memo_entries".into(), Json::int(snap.memo.len())),
            ("orbits".into(), histogram_json(&snap.outcome.orbits)),
            ("problems".into(), histogram_json(&snap.outcome.problems)),
        ]);
        let mut guard = guard;
        guard.put_back = Some(Box::new(snap));
        drop(guard);
        Response::ok(response)
    }

    fn flush(&self) -> Response {
        let Some(path) = self.config.snapshot_path.as_deref() else {
            return Response::error(
                400,
                "bad_request",
                "no snapshot path configured (start the daemon with --snapshot)",
            );
        };
        match self.engine.save_memo(path) {
            Ok(entries) => Response::ok(Json::Obj(vec![
                ("flushed".into(), Json::Bool(true)),
                ("memo_entries".into(), Json::int(entries)),
                ("path".into(), Json::str(path.display().to_string())),
            ])),
            Err(e) => Response::error(500, "internal", format!("snapshot flush failed: {e}")),
        }
    }
}

/// Restores a claimed sweep slot on every exit path (including unwinding).
struct SlotGuard<'a> {
    slots: &'a Mutex<HashMap<(u16, u16), SweepSlot>>,
    key: (u16, u16),
    put_back: Option<Box<SweepSnapshot>>,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut slots = self.slots.lock().expect("sweep slots poisoned");
        match self.put_back.take() {
            Some(snap) => slots.insert(self.key, SweepSlot::Idle(snap)),
            None => slots.remove(&self.key),
        };
    }
}

fn method_not_allowed(expected: &str) -> Response {
    Response::error(
        405,
        "method_not_allowed",
        format!("this endpoint only accepts {expected}"),
    )
}

/// Parses a request body as a JSON object (non-UTF-8 and parse failures are
/// structured `400`s).
fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "bad_request", "body is not valid UTF-8"))?;
    let value =
        json::parse(text).map_err(|e| Response::error(400, "bad_request", e.to_string()))?;
    if matches!(value, Json::Obj(_)) {
        Ok(value)
    } else {
        Err(Response::error(
            400,
            "bad_request",
            "body must be a JSON object",
        ))
    }
}

/// Extracts and loads the problem named by `field`: a catalog name (`mis`) or
/// a problem text in the paper's notation.
fn required_problem(body: &Json, field: &str) -> Result<LclProblem, Response> {
    let Some(spec) = body.get(field).and_then(Json::as_str) else {
        return Err(Response::error(
            400,
            "bad_request",
            format!("missing string field `{field}`"),
        ));
    };
    load_problem(spec).map_err(|e| Response::error(400, "bad_request", e))
}

/// Catalog name or problem text — the daemon's equivalent of the CLI's
/// name-or-file loader, minus the filesystem (requests carry their problems).
fn load_problem(spec: &str) -> Result<LclProblem, String> {
    if let Some(entry) = catalog::by_name(spec) {
        return Ok(entry.problem);
    }
    spec.parse::<LclProblem>()
        .map_err(|e| format!("not a catalog problem, and not parseable as a problem: {e}"))
}

/// (δ, labels) bounds for an exhaustive sweep: canonical enumeration limit
/// and the 63-configuration universe cap, checked arithmetically so a huge
/// `delta` fails fast instead of materializing anything.
fn validate_sweep_family(delta: u64, labels: u64) -> Result<(), String> {
    if delta == 0 || labels == 0 {
        return Err("`delta` and `labels` must be positive".into());
    }
    if labels > MAX_CANONICAL_ENUM_LABELS as u64 {
        return Err(format!(
            "{labels} labels exceeds the canonical enumeration limit of {MAX_CANONICAL_ENUM_LABELS}"
        ));
    }
    // Multisets of size δ over `labels` symbols, times `labels` parents.
    let mut multisets: u128 = 1;
    for i in 1..labels as u128 {
        multisets = multisets.saturating_mul(delta as u128 + i) / i;
        if multisets > u64::MAX as u128 {
            multisets = u128::MAX;
            break;
        }
    }
    let universe = multisets.saturating_mul(labels as u128);
    if universe > 63 {
        return Err(format!(
            "the (δ={delta}, {labels} labels) universe has {universe} possible configurations; \
             at most 63 fit an exhaustive sweep"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServeState {
        ServeState::new(ServeConfig::default(), ClassificationEngine::new())
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(30)
    }

    #[test]
    fn classify_answers_catalog_and_text_problems() {
        let s = state();
        let r = s.handle(
            &post("/classify", r#"{"problem": "1:22\n2:11\n"}"#),
            far_deadline(),
        );
        assert_eq!(r.status, 200);
        assert_eq!(
            r.body.get("complexity_short").and_then(Json::as_str),
            Some("poly")
        );
        let r = s.handle(&post("/classify", r#"{"problem": "mis"}"#), far_deadline());
        assert_eq!(r.status, 200, "{:?}", r.body);
        // Full report on demand.
        let r = s.handle(
            &post(
                "/classify",
                r#"{"problem": "1:22\n2:11\n", "report": true}"#,
            ),
            far_deadline(),
        );
        assert_eq!(r.status, 200);
        assert!(r.body.get("solvable_labels").is_some());
    }

    #[test]
    fn malformed_bodies_are_structured_400s() {
        let s = state();
        for body in [
            "",
            "{",
            "[1,2]",
            "null",
            r#"{"problem": 7}"#,
            r#"{"problem": "::"}"#,
        ] {
            let r = s.handle(&post("/classify", body), far_deadline());
            assert_eq!(r.status, 400, "body {body:?} -> {:?}", r.body);
            assert_eq!(
                r.body.get("error").and_then(Json::as_str),
                Some("bad_request")
            );
        }
    }

    #[test]
    fn unknown_routes_and_methods() {
        let s = state();
        let r = s.handle(&post("/nope", "{}"), far_deadline());
        assert_eq!(r.status, 404);
        let r = s.handle(
            &Request {
                method: "GET".into(),
                path: "/classify".into(),
                body: vec![],
            },
            far_deadline(),
        );
        assert_eq!(r.status, 405);
        let r = s.handle(&post("/healthz", "{}"), far_deadline());
        assert_eq!(r.status, 405);
        // Debug endpoints are 404 unless enabled.
        let r = s.handle(&post("/debug/panic", "{}"), far_deadline());
        assert_eq!(r.status, 405);
    }

    #[test]
    fn batch_enforces_the_deadline_between_items() {
        let s = state();
        let body = r#"{"problems": ["1:22\n2:11\n", "1:11\n", "1:12\n2:11\n"]}"#;
        // Generous deadline: everything classifies.
        let r = s.handle(&post("/classify-batch", body), far_deadline());
        assert_eq!(r.status, 200);
        assert_eq!(r.body.get("count").and_then(Json::as_u64), Some(3));
        // Expired deadline: shed with Retry-After before the first item.
        let r = s.handle(
            &post("/classify-batch", body),
            Instant::now() - Duration::from_millis(1),
        );
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(1));
        assert_eq!(
            r.body.get("error").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        assert_eq!(s.metrics.deadline_exceeded.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn batch_rejects_oversized_requests() {
        let config = ServeConfig {
            max_batch: 2,
            ..ServeConfig::default()
        };
        let s = ServeState::new(config, ClassificationEngine::new());
        let r = s.handle(
            &post(
                "/classify-batch",
                r#"{"problems": ["1:11\n", "1:11\n", "1:11\n"]}"#,
            ),
            far_deadline(),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn solve_solves_and_verifies() {
        let s = state();
        let r = s.handle(
            &post(
                "/solve",
                r#"{"problem": "1:22\n2:11\n", "nodes": 101, "include_labels": true}"#,
            ),
            far_deadline(),
        );
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body.get("solvable").and_then(Json::as_bool), Some(true));
        assert_eq!(r.body.get("verified").and_then(Json::as_bool), Some(true));
        let labels = r.body.get("labels").and_then(Json::as_array).unwrap();
        assert_eq!(
            Some(labels.len() as u64),
            r.body.get("nodes").and_then(Json::as_u64)
        );
        // Unsolvable problems answer solvable: false, not an error.
        let r = s.handle(&post("/solve", r#"{"problem": "1:22\n"}"#), far_deadline());
        assert_eq!(r.status, 200);
        assert_eq!(r.body.get("solvable").and_then(Json::as_bool), Some(false));
        // Node cap.
        let r = s.handle(
            &post(
                "/solve",
                r#"{"problem": "1:22\n2:11\n", "nodes": 99000000}"#,
            ),
            far_deadline(),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn edit_session_repairs_batches_incrementally() {
        let s = state();
        // A batch with no session is a conflict, not a panic.
        let r = s.handle(&post("/edit", r#"{"edits": 32}"#), far_deadline());
        assert_eq!(r.status, 409);
        // Initialize a session on a catalog problem.
        let r = s.handle(
            &post("/edit", r#"{"problem": "mis", "nodes": 2001, "seed": 7}"#),
            far_deadline(),
        );
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body.get("nodes").and_then(Json::as_u64), Some(2001));
        // Seeded batches repair incrementally; every dirty range validates.
        let mut nodes = 0;
        for _ in 0..5 {
            let r = s.handle(&post("/edit", r#"{"edits": 64}"#), far_deadline());
            assert_eq!(r.status, 200, "{:?}", r.body);
            assert!(
                r.body
                    .get("ranges_validated")
                    .and_then(Json::as_u64)
                    .unwrap()
                    >= 1
            );
            // Identifier maintenance tracks the edited tree: enough bits for
            // one distinct id per live node, even after growth.
            nodes = r.body.get("nodes").and_then(Json::as_u64).unwrap();
            let id_bits = r.body.get("id_bits").and_then(Json::as_u64).unwrap();
            assert!(1u64 << id_bits >= nodes, "{id_bits} bits for {nodes} nodes");
        }
        assert!(nodes > 0);
        assert_eq!(
            s.handle(&post("/edit", r#"{"edits": 8}"#), far_deadline())
                .body
                .get("batches")
                .and_then(Json::as_u64),
            Some(6)
        );
        // An expired compute deadline sheds the batch with Retry-After.
        let r = s.handle(
            &post("/edit", r#"{"edits": 8}"#),
            Instant::now() - Duration::from_millis(1),
        );
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(1));
        // Unsolvable problems cannot start a session.
        let r = s.handle(
            &post("/edit", r#"{"problem": "unsolvable"}"#),
            far_deadline(),
        );
        assert_eq!(r.status, 400);
        // A body with neither `problem` nor `edits` is malformed.
        let r = s.handle(&post("/edit", "{}"), far_deadline());
        assert_eq!(r.status, 400);
        // Batch size cap.
        let r = s.handle(&post("/edit", r#"{"edits": 99999}"#), far_deadline());
        assert_eq!(r.status, 400);
    }

    #[test]
    fn sweep_runs_budgeted_legs_to_completion() {
        let s = state();
        // (δ=2, 3 labels): 2^18 problems in ~44k orbits — far more than one
        // leg's budget, so the first bounded leg must stop mid-campaign.
        // (Workers stop at the next block-commit boundary, so a tiny family
        // like (2,2) can finish inside a single "bounded" leg; this one can't.)
        let r = s.handle(
            &post("/sweep", r#"{"delta": 2, "labels": 3, "max_orbits": 64}"#),
            far_deadline(),
        );
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body.get("completed").and_then(Json::as_bool), Some(false));
        assert!(
            r.body
                .get("masks_remaining")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        let first_leg_orbits = r
            .body
            .get("orbits_classified")
            .and_then(Json::as_u64)
            .unwrap();
        assert!(first_leg_orbits > 0);

        // Subsequent legs with a generous budget drive it to completion; the
        // accumulated histograms cover the whole 2^18-problem universe.
        let mut legs = 1;
        loop {
            let r = s.handle(
                &post(
                    "/sweep",
                    r#"{"delta": 2, "labels": 3, "max_orbits": 1048576}"#,
                ),
                far_deadline(),
            );
            assert_eq!(r.status, 200, "{:?}", r.body);
            legs += 1;
            assert!(legs < 20, "sweep never completed");
            if r.body.get("completed").and_then(Json::as_bool) == Some(true) {
                assert_eq!(
                    r.body.get("masks_remaining").and_then(Json::as_u64),
                    Some(0)
                );
                assert_eq!(
                    r.body.get("problems_accounted").and_then(Json::as_u64),
                    Some(1 << 18)
                );
                break;
            }
        }
        // The engine memo is warm for the family now.
        assert!(s.engine.memo_len() > 0);
        // A fresh leg request on the finished campaign completes immediately.
        let r = s.handle(
            &post("/sweep", r#"{"delta": 2, "labels": 3}"#),
            far_deadline(),
        );
        assert_eq!(r.body.get("completed").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn sweep_rejects_invalid_families() {
        let s = state();
        for body in [
            r#"{"delta": 0, "labels": 2}"#,
            r#"{"delta": 2, "labels": 0}"#,
            r#"{"delta": 2, "labels": 9}"#,
            r#"{"delta": 2, "labels": 5}"#,
            r#"{"delta": 999999, "labels": 2}"#,
            r#"{"labels": 2}"#,
        ] {
            let r = s.handle(&post("/sweep", body), far_deadline());
            assert_eq!(r.status, 400, "{body}");
        }
    }

    #[test]
    fn flush_without_a_path_is_a_client_error() {
        let s = state();
        let r = s.handle(&post("/flush", "{}"), far_deadline());
        assert_eq!(r.status, 400);
    }

    #[test]
    fn flush_writes_a_loadable_snapshot() {
        let dir = std::env::temp_dir().join(format!("rtlcl-serve-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("daemon.rtlcl");
        let config = ServeConfig {
            snapshot_path: Some(path.clone()),
            ..ServeConfig::default()
        };
        let s = ServeState::new(config, ClassificationEngine::new());
        s.handle(
            &post("/classify", r#"{"problem": "1:22\n2:11\n"}"#),
            far_deadline(),
        );
        let r = s.handle(&post("/flush", "{}"), far_deadline());
        assert_eq!(r.status, 200, "{:?}", r.body);
        assert_eq!(r.body.get("memo_entries").and_then(Json::as_u64), Some(1));
        let snap = SweepSnapshot::load(&path).unwrap();
        assert_eq!(snap.memo.len(), 1);
        assert!(snap.cursor.is_complete());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_reports_counters_and_campaigns() {
        let s = state();
        s.handle(
            &post("/classify", r#"{"problem": "1:11\n"}"#),
            far_deadline(),
        );
        s.handle(
            &post("/sweep", r#"{"delta": 1, "labels": 2, "max_orbits": 2}"#),
            far_deadline(),
        );
        let r = s.handle(
            &Request {
                method: "GET".into(),
                path: "/stats".into(),
                body: vec![],
            },
            far_deadline(),
        );
        assert_eq!(r.status, 200);
        assert!(r.body.get("memo_entries").and_then(Json::as_u64).unwrap() >= 1);
        let campaigns = r
            .body
            .get("sweep_campaigns")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(campaigns.len(), 1);
        assert_eq!(
            campaigns[0].get("state").and_then(Json::as_str),
            Some("idle")
        );
    }
}
