//! Shared JSON rendering of classifier results — used verbatim by the CLI's
//! `classify --json` / `sweep --json` output and the daemon's response bodies,
//! so a problem queried over HTTP answers with the same document the CLI
//! prints.

use crate::json::Json;
use lcl_core::{ClassificationReport, Complexity, ComplexityHistogram, LabelSet};

/// Renders a classification report as JSON (labels by name, ascending order).
pub fn report_to_json(report: &ClassificationReport) -> Json {
    let problem = &report.problem;
    let alphabet = problem.alphabet();
    let names =
        |set: LabelSet| Json::Arr(set.iter().map(|l| Json::str(alphabet.name(l))).collect());
    let mut obj = vec![
        (
            "complexity".into(),
            Json::str(report.complexity.to_string()),
        ),
        (
            "complexity_short".into(),
            Json::str(report.complexity.short_name()),
        ),
        ("delta".into(), Json::int(problem.delta())),
        ("num_labels".into(), Json::int(problem.num_labels())),
        (
            "num_configurations".into(),
            Json::int(problem.num_configurations()),
        ),
        ("problem".into(), Json::str(problem.to_text())),
        ("solvable_labels".into(), names(report.solvable_labels)),
        (
            "pruned_sets".into(),
            Json::Arr(
                report
                    .log_analysis
                    .pruned_sets
                    .iter()
                    .map(|&s| names(s))
                    .collect(),
            ),
        ),
    ];
    if let Complexity::Polynomial { exponent } = report.complexity {
        obj.push(("exponent".into(), Json::int(exponent)));
        obj.push((
            "pruning_iterations".into(),
            Json::int(report.log_analysis.iterations().max(1)),
        ));
        if let Some(cert) = report.poly_certificate() {
            obj.push((
                "poly_certificate".into(),
                Json::Arr(
                    cert.levels
                        .iter()
                        .map(|level| {
                            let mut entry = vec![
                                ("labels".into(), names(level.labels)),
                                ("scc".into(), names(level.scc)),
                            ];
                            if !level.scc.is_empty() {
                                entry.push(("flexibility".into(), Json::int(level.flexibility)));
                                entry.push((
                                    "chain_threshold".into(),
                                    Json::int(level.chain_threshold),
                                ));
                            }
                            Json::Obj(entry)
                        })
                        .collect(),
                ),
            ));
        }
    }
    if let Some(cert) = report.log_certificate() {
        obj.push((
            "log_certificate_labels".into(),
            names(cert.problem_pf.labels()),
        ));
        obj.push(("max_flexibility".into(), Json::int(cert.max_flexibility)));
    }
    if let Some(r) = &report.log_star {
        obj.push((
            "log_star_certificate_labels".into(),
            names(r.certificate_labels),
        ));
    }
    if let Some(r) = &report.constant {
        obj.push((
            "special_configuration".into(),
            Json::str(r.special.display(alphabet)),
        ));
    }
    Json::Obj(obj)
}

/// The histogram as JSON: the five pooled classes plus one `poly_k` bucket
/// per non-empty exact exponent (pooled `poly` stays for compatibility and
/// equals the sum of the `poly_k` buckets).
pub fn histogram_json(histogram: &ComplexityHistogram) -> Json {
    let mut entries: Vec<(String, Json)> = histogram
        .entries()
        .iter()
        .map(|&(name, n)| (name.to_string(), Json::int(n as usize)))
        .collect();
    for &(name, n) in histogram.poly_exponent_entries().iter() {
        if n > 0 {
            entries.push((name.to_string(), Json::int(n as usize)));
        }
    }
    Json::Obj(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::classify;

    #[test]
    fn report_json_has_the_contract_fields() {
        let problem = "1:22\n2:11\n".parse().unwrap();
        let report = classify(&problem);
        let json = report_to_json(&report);
        assert_eq!(
            json.get("complexity_short").and_then(Json::as_str),
            Some("poly")
        );
        assert_eq!(json.get("delta").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("exponent").and_then(Json::as_u64), Some(1));
        assert!(json.get("problem").is_some());
    }

    #[test]
    fn histogram_json_includes_poly_buckets() {
        let mut h = ComplexityHistogram::default();
        h.add(Complexity::Constant, 2);
        h.add(Complexity::Polynomial { exponent: 2 }, 3);
        let json = histogram_json(&h);
        assert_eq!(json.get("O(1)").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("poly").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("poly_2").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("poly_1"), None);
    }
}
