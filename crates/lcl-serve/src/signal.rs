//! SIGTERM/SIGINT → one `AtomicBool`, dependency-free.
//!
//! The workspace links no `libc` crate, but `std` already links the platform
//! libc on Unix, so `signal(2)` is one `extern "C"` declaration away. The
//! handler does the only async-signal-safe thing worth doing: a relaxed
//! atomic store. The daemon's main loop polls the flag and runs the graceful
//! shutdown path (drain, flush, exit 0) from normal code.
//!
//! This is the crate's only unsafe code (`#![deny(unsafe_code)]` holds
//! everywhere else): two FFI calls installing a handler that touches nothing
//! but a static atomic.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a shutdown signal (SIGTERM or SIGINT) arrives.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs the SIGTERM/SIGINT handler (idempotent) and returns the flag it
/// sets. Poll it from the main loop; when it flips, shut the server down.
#[allow(unsafe_code)]
pub fn install_shutdown_handler() -> &'static AtomicBool {
    // SAFETY: `signal` is async-signal-safe to install, and `on_signal` is a
    // valid `extern "C"` handler that only stores to a static atomic.
    unsafe {
        ffi::signal(SIGINT, on_signal as *const () as usize);
        ffi::signal(SIGTERM, on_signal as *const () as usize);
    }
    &SHUTDOWN
}
