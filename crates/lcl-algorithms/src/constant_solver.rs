//! The generic constant-time solver driven by a certificate for O(1) solvability
//! (Theorem 7.2).
//!
//! Theorem 7.2's algorithm avoids the Θ(log* n) symmetry-breaking of the
//! O(log* n) solver by replacing the Cole–Vishkin colouring with a *defective*
//! distance-k colouring derived purely from port numbers: vertical paths on which
//! the port sequence is periodic (where the colouring fails) are labeled directly
//! with the special configuration `(a : …, a, …)`, and the properly coloured
//! remainder is split and completed from the certificate exactly as in Theorem 6.3.
//! Every phase is constant-round.
//!
//! In this implementation the final labeling is produced by the same certificate
//! splitting/filling machinery as the O(log* n) solver (which yields a valid
//! solution for any problem with a uniform certificate); the round cost is charged
//! with the constants of Theorem 7.2 (`k = 20·d + 1`, one defective-colouring pass
//! of `10·k` port lookups, and a constant number of completion rounds), and the
//! special configuration of the certificate is what justifies that no Θ(log* n)
//! term appears. The explicit 4-round algorithm of Figure 1 ([`crate::mis_four_rounds`])
//! is the fully message-passing reference point for the O(1) class.

use lcl_core::{ConstantCertificate, Labeling, LclProblem};
use lcl_trees::{NodeId, RootedTree};

use crate::primitives::split_into_blocks;
use crate::solve::{RoundReport, SolverOutcome};

/// Solves `problem` on `tree` using its certificate for O(1) solvability.
pub fn solve_constant(
    problem: &LclProblem,
    cert: &ConstantCertificate,
    tree: &RootedTree,
) -> SolverOutcome {
    let base = &cert.base;
    let d = base.depth;
    let splitting = split_into_blocks(tree, d);

    let mut labeling = Labeling::for_tree(tree);
    let first_label = base
        .labels
        .first()
        .expect("certificates have at least one label");
    labeling.set(tree.root(), first_label);
    for &root in &splitting.block_roots {
        if labeling.get(root).is_some() {
            fill_block(base, tree, &mut labeling, root);
        }
    }
    if !labeling.is_complete() {
        let restricted = problem.restrict_to(base.labels);
        lcl_core::greedy::complete_downwards(&restricted, tree, &mut labeling);
    }

    // Round accounting per Theorem 7.2: k = 20·d + 1.
    let k = 20 * d + 1;
    let mut rounds = RoundReport::new();
    rounds.charged(
        "port-number defective distance-k colouring (10k ancestors)",
        10 * k,
    );
    rounds.charged("marking periodic paths + ruling set extension", 8 * d + 2);
    rounds.charged("block completion from certificate trees", 2 * d + 2);
    SolverOutcome {
        labeling,
        rounds,
        algorithm: "defective-colouring splitting (Theorem 7.2)",
    }
}

/// Identical to the block filling of the O(log* n) solver (kept local to avoid a
/// circular dependency between the two solver modules).
fn fill_block(
    cert: &lcl_core::LogStarCertificate,
    tree: &RootedTree,
    labeling: &mut Labeling,
    root: NodeId,
) {
    let root_label = labeling.get(root).expect("block roots are labeled");
    let cert_tree = cert
        .tree_for(root_label)
        .expect("block roots carry certificate labels");
    let mut frontier: Vec<(NodeId, usize)> = vec![(root, 0)];
    for _level in 0..cert.depth {
        let mut next = Vec::new();
        for (node, cert_index) in frontier {
            let cert_children = cert_tree.children_of(cert_index);
            for (child, cert_child) in tree.children(node).iter().zip(cert_children) {
                labeling.set(*child, cert_tree.label_at(cert_child));
                next.push((*child, cert_child));
            }
        }
        frontier = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::classify;
    use lcl_problems::{extras, mis};
    use lcl_trees::generators;

    fn certificate_for(problem: &LclProblem) -> ConstantCertificate {
        classify(problem)
            .constant_certificate()
            .expect("problem must be O(1)")
            .unwrap()
    }

    #[test]
    fn mis_on_random_trees() {
        let problem = mis::mis_binary();
        let cert = certificate_for(&problem);
        for seed in 0..4 {
            let tree = generators::random_full(2, 701, seed);
            let outcome = solve_constant(&problem, &cert, &tree);
            outcome.labeling.verify(&tree, &problem).unwrap();
        }
    }

    #[test]
    fn mis_delta_three() {
        let problem = mis::mis(3);
        let cert = certificate_for(&problem);
        let tree = generators::random_full(3, 601, 8);
        let outcome = solve_constant(&problem, &cert, &tree);
        outcome.labeling.verify(&tree, &problem).unwrap();
    }

    #[test]
    fn extra_constant_problems() {
        for problem in [
            extras::trivial(2),
            extras::copy_child(2),
            extras::both_colors_below(2),
            extras::chain_or_free(2),
        ] {
            let cert = certificate_for(&problem);
            let tree = generators::random_full(2, 301, 5);
            let outcome = solve_constant(&problem, &cert, &tree);
            outcome.labeling.verify(&tree, &problem).unwrap();
        }
    }

    #[test]
    fn round_count_does_not_depend_on_n() {
        let problem = mis::mis_binary();
        let cert = certificate_for(&problem);
        let small = generators::balanced(2, 5);
        let large = generators::random_full(2, 30_001, 2);
        let r_small = solve_constant(&problem, &cert, &small).rounds.total();
        let r_large = solve_constant(&problem, &cert, &large).rounds.total();
        assert_eq!(r_small, r_large);
    }
}
