//! The explicit constant-time MIS algorithm of Section 1.3 and Figure 1.
//!
//! Every node learns the 4-bit string of port directions leading to it from its
//! ancestor at distance 4 (padding with 0s near the root, i.e. imagining the tree
//! embedded below a chain of virtual port-0 ancestors), interprets the string as a
//! number between 0 and 15, and outputs the corresponding symbol of the magic
//! string (4) of the paper:
//!
//! ```text
//! b 1 a b b b 1 b b 1 1 b b b 1 b
//! ```
//!
//! The resulting labeling is a valid solution of the MIS problem (3) on every full
//! binary tree; the communication takes exactly 4 rounds (plus one round in which
//! the nodes announce their outputs to nobody — the simulator counts the round in
//! which the last output is produced).

use lcl_core::{Label, Labeling, LclProblem};
use lcl_sim::{IdAssignment, Metrics, NodeInfo, NodeProgram, RoundAction, Simulator};
use lcl_trees::RootedTree;

use crate::solve::{RoundReport, SolverOutcome};

/// The 16-symbol output table (4) of the paper, indexed by the 4-bit code.
pub const MIS_TABLE: [char; 16] = [
    'b', '1', 'a', 'b', 'b', 'b', '1', 'b', 'b', '1', '1', 'b', 'b', 'b', '1', 'b',
];

/// The node program: 4 rounds of passing port-direction strings downwards.
pub struct MisFourRounds;

/// Per-node state: the current code and its length in bits.
#[derive(Debug, Clone, Default)]
pub struct MisState {
    code: u8,
    len: usize,
}

impl NodeProgram for MisFourRounds {
    type State = MisState;
    type Message = u8;
    type Output = char;

    fn init(&self, _info: &NodeInfo) -> Self::State {
        MisState::default()
    }

    fn round(
        &self,
        round: usize,
        _info: &NodeInfo,
        state: &mut Self::State,
        from_parent: Option<&Self::Message>,
        _from_children: &[Option<Self::Message>],
        to_children: &mut [Option<Self::Message>],
    ) -> RoundAction<Self::Message, Self::Output> {
        // Adopt the code received from the parent (rounds 2..=5); the root extends
        // its own code with a virtual port-0 ancestor instead.
        if round >= 2 && state.len < 4 {
            state.code = match from_parent {
                Some(&c) => c,
                None => state.code, // virtual ancestors contribute leading 0 bits
            };
            state.len += 1;
        }
        if state.len == 4 {
            return RoundAction::output(MIS_TABLE[state.code as usize]);
        }
        // Send each child the code extended by its port direction (0 = left),
        // written into the simulator's reusable per-node buffer.
        for (port, slot) in to_children.iter_mut().enumerate() {
            *slot = Some(((state.code << 1) | (port as u8 & 1)) & 0b1111);
        }
        RoundAction::idle()
    }

    fn message_bits(&self, _message: &Self::Message) -> usize {
        4
    }
}

/// Runs the 4-round MIS algorithm on a full binary tree and returns the labeling
/// (over the alphabet of [`lcl_problems`-style] MIS: labels named `1`, `a`, `b`).
///
/// # Panics
///
/// Panics if `problem` does not contain labels named `1`, `a`, and `b` or if the
/// tree is not binary (δ = 2).
pub fn solve_mis_four_rounds(problem: &LclProblem, tree: &RootedTree) -> SolverOutcome {
    assert_eq!(
        problem.delta(),
        2,
        "the Figure 1 algorithm is for binary trees"
    );
    let to_label = |c: char| -> Label {
        problem
            .label_by_name(&c.to_string())
            .unwrap_or_else(|| panic!("problem is missing the MIS label {c:?}"))
    };
    let sim = Simulator::new(tree, IdAssignment::sequential(tree));
    let (outputs, metrics) = sim.run(&MisFourRounds);
    let mut labeling = Labeling::for_tree(tree);
    for v in tree.nodes() {
        labeling.set(v, to_label(outputs[v.index()]));
    }
    let mut rounds = RoundReport::new();
    rounds.measured("port-string propagation + table lookup", metrics.rounds);
    SolverOutcome {
        labeling,
        rounds,
        algorithm: "4-round MIS (Section 1.3, Figure 1)",
    }
}

/// The simulator metrics of one run (exposed separately for the experiments).
pub fn run_metrics(tree: &RootedTree) -> Metrics {
    let sim = Simulator::new(tree, IdAssignment::sequential(tree));
    sim.run(&MisFourRounds).1
}

/// Exhaustively checks the correctness argument of Section 1.3: for every 4-bit
/// code `x y z w`, the node's output together with the outputs of its two children
/// (codes `y z w 0` and `y z w 1`) forms an allowed configuration of the MIS
/// problem. Returns the list of violated codes (empty = the table is correct).
pub fn verify_table_against(problem: &LclProblem) -> Vec<u8> {
    let label_of = |c: char| problem.label_by_name(&c.to_string()).expect("MIS labels");
    let mut violations = Vec::new();
    for code in 0u8..16 {
        let parent = MIS_TABLE[code as usize];
        let left = MIS_TABLE[((code << 1) & 0b1111) as usize];
        let right = MIS_TABLE[(((code << 1) & 0b1111) | 1) as usize];
        let ok = problem.allows_parts(label_of(parent), &[label_of(left), label_of(right)]);
        if !ok {
            violations.push(code);
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problems::mis::mis_binary;
    use lcl_trees::generators;

    #[test]
    fn table_is_consistent_with_the_mis_configurations() {
        // The "23 possible cases" check of Section 1.3, done exhaustively.
        let problem = mis_binary();
        assert!(verify_table_against(&problem).is_empty());
    }

    #[test]
    fn solves_mis_on_balanced_trees() {
        let problem = mis_binary();
        for depth in [1, 2, 3, 6, 9] {
            let tree = generators::balanced(2, depth);
            let outcome = solve_mis_four_rounds(&problem, &tree);
            outcome.labeling.verify(&tree, &problem).unwrap();
        }
    }

    #[test]
    fn solves_mis_on_random_trees() {
        let problem = mis_binary();
        for seed in 0..5 {
            let tree = generators::random_full(2, 1001, seed);
            let outcome = solve_mis_four_rounds(&problem, &tree);
            outcome.labeling.verify(&tree, &problem).unwrap();
        }
    }

    #[test]
    fn round_count_is_constant() {
        // The communication takes 4 rounds; the simulator reports 5 because the
        // final outputs are produced in the round after the last message arrives.
        let small = generators::balanced(2, 4);
        let large = generators::random_full(2, 50_001, 1);
        let m_small = run_metrics(&small);
        let m_large = run_metrics(&large);
        assert_eq!(m_small.rounds, m_large.rounds);
        assert!(m_large.rounds <= 5);
        assert!(m_large.is_congest_compliant(large.len(), 1));
    }

    #[test]
    fn output_is_independent_of_identifiers() {
        // The algorithm only uses port numbers, never identifiers.
        let problem = mis_binary();
        let tree = generators::random_full(2, 301, 2);
        let a = solve_mis_four_rounds(&problem, &tree).labeling;
        let b = solve_mis_four_rounds(&problem, &tree).labeling;
        assert_eq!(a, b);
    }
}
