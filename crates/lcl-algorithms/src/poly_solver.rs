//! The polynomial region: the generalized B/X-partition solver driven by the
//! exact-exponent certificate (Section 5), the O(n^{1/k}) CONGEST algorithm
//! for Π_k (Lemma 8.1), and the Θ(n) depth-parity baseline for 2-coloring.

use lcl_core::automaton::Automaton;
use lcl_core::{Label, Labeling, LclProblem, PolyCertificate};
use lcl_trees::{NodeId, RootedTree};

use crate::primitives::ceil_nth_root;
use crate::solve::{RoundReport, SolverOutcome};

/// The partition computed by the algorithm of Lemma 8.1:
/// `V = B₁ ∪ X₁ ∪ B₂ ∪ X₂ ∪ … ∪ X_{k−1} ∪ B_k`.
#[derive(Debug, Clone)]
pub struct PiKPartition {
    /// For every node, the part it belongs to: `Part::B(i)` or `Part::X(i)`
    /// (1-based `i`).
    pub part: Vec<Part>,
    /// The measured per-iteration exploration depths (the O(n^{1/k}) terms whose sum
    /// is the algorithm's round complexity).
    pub iteration_depths: Vec<usize>,
}

/// Membership in the Lemma 8.1 partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Part {
    /// `B_i`: components that are properly 2-coloured with `{a_i, b_i}`.
    B(usize),
    /// `X_i`: separator nodes labeled `x_i`.
    X(usize),
}

/// Computes the partition of Lemma 8.1 for the given `k` and threshold
/// `t = n^{1/k}`: iteration `i` keeps the nodes whose remaining subtree has more
/// than `t` nodes, puts small-subtree nodes into `B_i`, and into `X_i` the large
/// nodes that have a small (or already removed) child.
pub fn pi_k_partition(tree: &RootedTree, k: usize) -> PiKPartition {
    assert!(k >= 1);
    let n = tree.len();
    let threshold = ceil_nth_root(n, k);
    let mut part: Vec<Option<Part>> = vec![None; n];
    let mut iteration_depths = Vec::new();
    let subtree_heights = tree.subtree_heights();
    let post_order = tree.post_order();

    // One membership bitvec, one frontier, and one size array, allocated once
    // and reused across the k iterations: the frontier is compacted in place
    // (ascending id order is preserved) instead of being rebuilt from a fresh
    // O(n) scan, and only frontier entries of `size` are ever reset.
    let mut in_u = vec![true; n];
    let mut frontier: Vec<NodeId> = tree.nodes().collect();
    let mut size = vec![0usize; n];

    for i in 1..=k {
        if frontier.is_empty() {
            break;
        }
        // N_v: subtree sizes within the forest induced by U_i, accumulated
        // upwards (children precede parents in post-order).
        for &v in &frontier {
            size[v.index()] = 1;
        }
        for &v in post_order.iter().filter(|v| in_u[v.index()]) {
            if let Some(p) = tree.parent(v) {
                if in_u[p.index()] {
                    size[p.index()] += size[v.index()];
                }
            }
        }
        // The number of levels a node explores to decide whether N_v exceeds the
        // threshold — the measured O(n^{1/k}) quantity of this iteration.
        iteration_depths.push(
            threshold.min(
                frontier
                    .iter()
                    .map(|v| subtree_heights[v.index()] + 1)
                    .max()
                    .unwrap_or(0),
            ),
        );

        if i == k {
            for &v in &frontier {
                part[v.index()] = Some(Part::B(i));
            }
            break;
        }
        // B_i: small subtrees.
        for &v in &frontier {
            if size[v.index()] <= threshold {
                part[v.index()] = Some(Part::B(i));
            }
        }
        // X_i: large nodes with a small child, or with a child already removed in
        // an earlier iteration (the paper's "exactly one child in T_i" condition
        // for binary trees, stated degree-independently here).
        for &v in &frontier {
            if size[v.index()] <= threshold {
                continue;
            }
            let has_small_child = tree
                .children(v)
                .iter()
                .any(|c| in_u[c.index()] && size[c.index()] <= threshold);
            let has_earlier_child = tree.children(v).iter().any(|c| !in_u[c.index()]);
            if has_small_child || has_earlier_child {
                part[v.index()] = Some(Part::X(i));
            }
        }
        // Compact the frontier to U_{i+1}.
        for &v in &frontier {
            in_u[v.index()] = part[v.index()].is_none();
        }
        frontier.retain(|&v| in_u[v.index()]);
    }

    // Any node still unassigned (possible only when the loop exits early) joins B_k.
    let part = part.into_iter().map(|p| p.unwrap_or(Part::B(k))).collect();
    PiKPartition {
        part,
        iteration_depths,
    }
}

/// Solves Π_k (the problem built by `lcl_problems::pi_k::pi_k(k)`) on `tree` using
/// the partition algorithm of Lemma 8.1: nodes in `X_i` output `x_i`, and every
/// connected component of `B_i` is properly 2-coloured with `{a_i, b_i}` by the
/// parity of its depth within the component.
pub fn solve_pi_k(problem: &LclProblem, k: usize, tree: &RootedTree) -> SolverOutcome {
    let partition = pi_k_partition(tree, k);
    let (x_labels, ab_labels) = pi_k_part_labels(problem, k);
    let mut labeling = Labeling::for_tree(tree);
    // Depth of each node within its B_i component (0 at component roots).
    let mut comp_depth = vec![0usize; tree.len()];
    for v in tree.bfs_order() {
        let my_part = partition.part[v.index()];
        if let Some(p) = tree.parent(v) {
            if partition.part[p.index()] == my_part {
                comp_depth[v.index()] = comp_depth[p.index()] + 1;
            }
        }
        match my_part {
            Part::X(i) => labeling.set(v, x_labels[i - 1]),
            Part::B(i) => {
                let (a, b) = ab_labels[i - 1];
                let even = comp_depth[v.index()].is_multiple_of(2);
                labeling.set(v, if even { a } else { b });
            }
        }
    }
    let mut rounds = RoundReport::new();
    for (i, depth) in partition.iteration_depths.iter().enumerate() {
        rounds.measured(
            format!("iteration {} subtree-size exploration", i + 1),
            *depth,
        );
    }
    rounds.charged("component 2-colouring (within-component depth)", {
        // Components have at most n^{1/k} nodes, hence at most that depth.
        ceil_nth_root(tree.len(), k)
    });
    SolverOutcome {
        labeling,
        rounds,
        algorithm: "Π_k partition (Lemma 8.1)",
    }
}

/// Resolves the Π_k part labels once per solve: `x_1 … x_{k−1}` (separators
/// exist only below level k) and `(a_i, b_i)` for `i = 1 … k` — so the
/// per-node labeling loop never formats a label name.
///
/// # Panics
///
/// Panics if `problem` is missing one of the Π_k labels.
pub(crate) fn pi_k_part_labels(
    problem: &LclProblem,
    k: usize,
) -> (
    Vec<lcl_core::Label>,
    Vec<(lcl_core::Label, lcl_core::Label)>,
) {
    let label = |name: &str| {
        problem
            .label_by_name(name)
            .unwrap_or_else(|| panic!("Π_k problem is missing label {name}"))
    };
    let x_labels = (1..k).map(|i| label(&format!("x{i}"))).collect();
    let ab_labels = (1..=k)
        .map(|i| (label(&format!("a{i}")), label(&format!("b{i}"))))
        .collect();
    (x_labels, ab_labels)
}

/// Membership in the generalized certificate-driven partition: `Rake(i)` holds
/// the ≤ n^{1/k}-node subtrees peeled off at iteration `i` (labeled within the
/// certificate's level-`i` set `S_i`), `Chain(i)` the long one-child runs
/// completed by flexibility walks inside the level's flexible SCC `C_i`, and
/// `Core` the remainder after `k − 1` iterations (labeled within `S_k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolyPart {
    /// A small-subtree node removed at iteration `i` (1-based).
    Rake(usize),
    /// A long-run node removed at iteration `i` (1-based).
    Chain(usize),
    /// A survivor of all `k − 1` iterations.
    Core,
}

/// The generalized B/X partition: per-node parts, the chain runs of each
/// iteration (top-down within each run), and the measured per-iteration
/// exploration depths.
#[derive(Debug, Clone)]
pub struct PolyPartition {
    /// The exponent `k` the partition was computed for.
    pub k: usize,
    /// The subtree-size threshold `⌈n^{1/k}⌉`.
    pub threshold: usize,
    /// For every node, the part it belongs to.
    pub part: Vec<PolyPart>,
    /// The compressed runs of iteration `i` are `runs_by_iteration[i − 1]`,
    /// each a vertical path listed top-down.
    pub runs_by_iteration: Vec<Vec<Vec<NodeId>>>,
    /// The measured per-iteration exploration depths (the O(n^{1/k}) terms).
    pub iteration_depths: Vec<usize>,
}

/// Computes the generalized partition for the certificate's exponent `k`:
/// iteration `i < k` removes every node whose remaining subtree has at most
/// `⌈n^{1/k}⌉` nodes (`Rake(i)`, downward closed), then every maximal run of
/// remaining nodes with exactly one remaining child whose length reaches the
/// level's `chain_threshold` (`Chain(i)`); survivors of all iterations form
/// the `Core`. Compare Lemma 8.1's B/X partition, which this generalizes: the
/// rakes play the role of the `B_i` blocks and the chains the role of the
/// `x_i` separators, with the chain threshold guaranteeing the flexibility
/// walks of the labeling pass always exist.
pub fn poly_partition(tree: &RootedTree, cert: &PolyCertificate) -> PolyPartition {
    let k = cert.exponent();
    assert!(k >= 1);
    let n = tree.len();
    let threshold = ceil_nth_root(n, k);
    let mut part: Vec<PolyPart> = vec![PolyPart::Core; n];
    let mut runs_by_iteration: Vec<Vec<Vec<NodeId>>> = Vec::new();
    let mut iteration_depths = Vec::new();
    let subtree_heights = tree.subtree_heights();
    let post_order = tree.post_order();

    let mut in_u = vec![true; n];
    let mut frontier: Vec<NodeId> = tree.nodes().collect();
    let mut size = vec![0usize; n];
    // Number of children still in U (after rake removal: in U').
    let mut live_children = vec![0usize; n];

    for i in 1..k {
        let mut runs: Vec<Vec<NodeId>> = Vec::new();
        if frontier.is_empty() {
            runs_by_iteration.push(runs);
            iteration_depths.push(0);
            continue;
        }
        // N_v: subtree sizes within the forest induced by U_i (children precede
        // parents in post-order).
        for &v in &frontier {
            size[v.index()] = 1;
        }
        for &v in post_order.iter().filter(|v| in_u[v.index()]) {
            if let Some(p) = tree.parent(v) {
                if in_u[p.index()] {
                    size[p.index()] += size[v.index()];
                }
            }
        }
        iteration_depths.push(
            threshold.min(
                frontier
                    .iter()
                    .map(|v| subtree_heights[v.index()] + 1)
                    .max()
                    .unwrap_or(0),
            ),
        );
        // Rake: small subtrees (downward closed within U_i).
        for &v in &frontier {
            if size[v.index()] <= threshold {
                part[v.index()] = PolyPart::Rake(i);
                in_u[v.index()] = false;
            }
        }
        frontier.retain(|&v| in_u[v.index()]);
        // Chain candidates: U'-nodes with exactly one U'-child.
        for &v in &frontier {
            live_children[v.index()] = tree.children(v).iter().filter(|c| in_u[c.index()]).count();
        }
        let is_candidate = |v: NodeId, in_u: &[bool], live: &[usize]| -> bool {
            in_u[v.index()] && live[v.index()] == 1
        };
        let min_run = cert.levels[i - 1].chain_threshold.max(1);
        for &v in &frontier {
            if !is_candidate(v, &in_u, &live_children) {
                continue;
            }
            // Only start at run tops: the parent is not a candidate.
            let parent_is_candidate = tree
                .parent(v)
                .is_some_and(|p| is_candidate(p, &in_u, &live_children));
            if parent_is_candidate {
                continue;
            }
            let mut run = vec![v];
            let mut cur = v;
            loop {
                let next = tree
                    .children(cur)
                    .iter()
                    .copied()
                    .find(|c| in_u[c.index()])
                    .expect("candidates have exactly one remaining child");
                if !is_candidate(next, &in_u, &live_children) {
                    break;
                }
                run.push(next);
                cur = next;
            }
            if run.len() >= min_run {
                runs.push(run);
            }
        }
        for run in &runs {
            for &v in run {
                part[v.index()] = PolyPart::Chain(i);
                in_u[v.index()] = false;
            }
        }
        frontier.retain(|&v| in_u[v.index()]);
        runs_by_iteration.push(runs);
    }

    PolyPartition {
        k,
        threshold,
        part,
        runs_by_iteration,
        iteration_depths,
    }
}

/// Assigns `node`'s children per a configuration of the restriction `within`
/// that places `required` (if any) on the required child — the poly twin of
/// the rake-and-compress solver's `assign_children`. Children whose label is
/// already fixed from an earlier layer are left untouched *only* when they are
/// the required child; the partition guarantees a node never has more than one
/// pre-labeled child (the single below-chain attachment).
fn assign_children_within(
    within: &LclProblem,
    labeling: &mut Labeling,
    tree: &RootedTree,
    node: NodeId,
    required: Option<(NodeId, Label)>,
) -> Result<(), String> {
    if tree.is_leaf(node) {
        return Ok(());
    }
    let parent_label = labeling
        .get(node)
        .expect("node labeled before its children");
    if tree.num_children(node) != within.delta() {
        // Unconstrained node (only possible on irregular trees).
        let fallback = within.labels().first().expect("non-empty level");
        for &c in tree.children(node) {
            if !labeling.is_set(c) {
                labeling.set(c, fallback);
            }
        }
        return Ok(());
    }
    let config = match required {
        Some((_, label)) => within
            .configurations_with_parent(parent_label)
            .find(|c| c.children().contains(&label)),
        None => within.configurations_with_parent(parent_label).next(),
    }
    .ok_or_else(|| {
        format!(
            "no level configuration for {} with the required child",
            within.label_name(parent_label)
        )
    })?;
    let mut remaining: Vec<Label> = config.children().to_vec();
    if let Some((child, label)) = required {
        let pos = remaining
            .iter()
            .position(|&l| l == label)
            .expect("configuration was chosen to contain the required label");
        remaining.remove(pos);
        labeling.set(child, label);
    }
    let mut rest = remaining.into_iter();
    for &c in tree.children(node) {
        if required.map(|(r, _)| r) == Some(c) {
            continue;
        }
        let label = rest.next().expect("configuration has δ children");
        labeling.set(c, label);
    }
    Ok(())
}

/// Solves any polynomial-region problem on `tree` with the generalized
/// B/X-partition algorithm driven by its exact-exponent certificate.
///
/// Layers are processed from the core (level `k`) down to level 1. Every
/// piece root whose parent lives in a *lower* layer picks its own starting
/// label (within the level set for rakes and the core, within the flexible
/// SCC for chain tops); every other node is prescribed by its parent's
/// configuration choice. Chain runs are filled with an exact-length walk in
/// the automaton of `Π|S_i` from the prescribed top label to the label the
/// below-run attachment already chose — the walk exists because runs reach
/// the certificate's `chain_threshold = |C_i| + flexibility` and `C_i` is a
/// strongly connected flexible component containing both endpoints
/// (`S_{i+1} = trim(C_i) ⊆ C_i`). Rake pieces and the core are completed
/// downward inside their (trimmed) level sets.
///
/// Round accounting: `k − 1` measured subtree-size explorations of ≤ n^{1/k}
/// levels each, measured maximal rake-piece and core-component depths
/// (≤ n^{1/k} and O(n^{1/k}) respectively), and a charged constant per
/// iteration for the ruling-set chain completion — in total O(n^{1/k}).
pub fn solve_poly(
    problem: &LclProblem,
    cert: &PolyCertificate,
    tree: &RootedTree,
) -> Result<SolverOutcome, String> {
    let k = cert.exponent();
    let partition = poly_partition(tree, cert);
    let restrictions: Vec<LclProblem> = cert
        .levels
        .iter()
        .map(|level| problem.restrict_to(level.labels))
        .collect();
    let automata: Vec<Automaton> = restrictions.iter().map(Automaton::of).collect();
    let mut labeling = Labeling::for_tree(tree);
    let bfs = tree.bfs_order();

    for layer in (1..=k).rev() {
        // Chain runs of this layer first: they prescribe the rake roots
        // hanging off them, and both their endpoints (the prescribed top, the
        // already-labeled below-run attachment) are final.
        if layer < k {
            let restricted = &restrictions[layer - 1];
            let automaton = &automata[layer - 1];
            let scc = cert.levels[layer - 1].scc;
            for run in &partition.runs_by_iteration[layer - 1] {
                let top = run[0];
                if !labeling.is_set(top) {
                    // The top's parent lives in a *lower* layer (it is the
                    // global root, or the below-run attachment of a chain from
                    // an earlier iteration, processed after this layer): free
                    // choice anywhere in C_i — the lower chain later walks to
                    // whatever label we pick here (C_i ⊆ trim-closure of every
                    // earlier level's SCC).
                    labeling.set(top, scc.first().expect("flexible SCCs are non-empty"));
                }
                let start = labeling.get(top).expect("just set");
                let bottom = *run.last().expect("runs are non-empty");
                let below = tree
                    .children(bottom)
                    .iter()
                    .copied()
                    .find(|&c| labeling.is_set(c));
                let walk = match below {
                    Some(c) => {
                        let target = labeling.get(c).expect("checked");
                        automaton.find_walk(start, target, run.len())
                    }
                    None => scc
                        .iter()
                        .find_map(|t| automaton.find_walk(start, t, run.len())),
                }
                .ok_or_else(|| {
                    format!(
                        "no walk of length {} from {} in the level-{layer} automaton \
                         (run shorter than the chain threshold?)",
                        run.len(),
                        restricted.label_name(start)
                    )
                })?;
                for (j, &node) in run.iter().enumerate() {
                    labeling.set(node, walk[j]);
                    let required = if j + 1 < run.len() {
                        Some((run[j + 1], walk[j + 1]))
                    } else {
                        below.map(|c| (c, labeling.get(c).expect("checked")))
                    };
                    assign_children_within(restricted, &mut labeling, tree, node, required)?;
                }
            }
        }
        // Rake pieces of this layer (for layer == k: the core components),
        // completed downward inside the level set.
        let restricted = &restrictions[layer - 1];
        let wanted = |p: PolyPart| match p {
            PolyPart::Rake(i) => i == layer,
            PolyPart::Core => layer == k,
            PolyPart::Chain(_) => false,
        };
        for &v in &bfs {
            if !wanted(partition.part[v.index()]) {
                continue;
            }
            if !labeling.is_set(v) {
                // A piece root below a chain of a lower layer (or the global
                // root): free choice within the level set.
                labeling.set(v, restricted.labels().first().expect("non-empty level"));
            }
            assign_children_within(restricted, &mut labeling, tree, v, None)?;
        }
    }

    if !labeling.is_complete() {
        return Err("generalized partition completion left unlabeled nodes".into());
    }

    let rounds = poly_rounds(&partition.iteration_depths, cert, |p| {
        piece_depths(tree, &bfs, &partition.part, p)
    });
    Ok(SolverOutcome {
        labeling,
        rounds,
        algorithm: POLY_ALGORITHM,
    })
}

/// The algorithm tag shared by the arena and flat generalized solvers.
pub(crate) const POLY_ALGORITHM: &str = "generalized B/X partition (exact exponent certificate)";

/// The maximal within-piece depth (in nodes) over all pieces of kind `kind` —
/// the measured completion cost of that phase.
fn piece_depths(
    tree: &RootedTree,
    bfs: &[NodeId],
    part: &[PolyPart],
    kind: fn(PolyPart) -> bool,
) -> usize {
    let mut depth = vec![0usize; tree.len()];
    let mut max_depth = 0usize;
    for &v in bfs {
        if !kind(part[v.index()]) {
            continue;
        }
        let d = match tree.parent(v) {
            Some(p) if part[p.index()] == part[v.index()] => depth[p.index()] + 1,
            _ => 1,
        };
        depth[v.index()] = d;
        max_depth = max_depth.max(d);
    }
    max_depth
}

/// Builds the shared round report of the generalized solver; `depths(kind)`
/// must return the maximal piece depth of the selected parts. Kept in one
/// place so the flat port reports byte-identical phases.
pub(crate) fn poly_rounds(
    iteration_depths: &[usize],
    cert: &PolyCertificate,
    depths: impl Fn(fn(PolyPart) -> bool) -> usize,
) -> RoundReport {
    let mut rounds = RoundReport::new();
    for (i, depth) in iteration_depths.iter().enumerate() {
        rounds.measured(
            format!("iteration {} subtree-size exploration", i + 1),
            *depth,
        );
    }
    if cert.exponent() > 1 {
        let ruling: usize = cert.levels[..cert.exponent() - 1]
            .iter()
            .map(|level| 2 * level.chain_threshold + 2)
            .sum();
        rounds.charged("chain completion via ruling sets", ruling);
        rounds.measured(
            "rake completion (max rake piece depth)",
            depths(|p| matches!(p, PolyPart::Rake(_))),
        );
    }
    rounds.measured(
        "core completion (max core component depth)",
        depths(|p| matches!(p, PolyPart::Core)),
    );
    rounds
}

/// The Θ(n)-round baseline for the global 2-coloring problem (2): every node learns
/// its depth (a full top-down sweep) and outputs the colour of its depth parity.
pub fn solve_by_depth_parity(problem: &LclProblem, tree: &RootedTree) -> SolverOutcome {
    let one = problem
        .label_by_name("1")
        .expect("2-coloring problem uses labels 1 and 2");
    let two = problem.label_by_name("2").expect("label 2");
    let depths = tree.depths();
    let mut labeling = Labeling::for_tree(tree);
    for v in tree.nodes() {
        labeling.set(
            v,
            if depths[v.index()].is_multiple_of(2) {
                one
            } else {
                two
            },
        );
    }
    let mut rounds = RoundReport::new();
    rounds.measured("top-down depth propagation", tree.height() + 1);
    SolverOutcome {
        labeling,
        rounds,
        algorithm: "depth parity (Θ(n) baseline)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problems::{coloring, pi_k};
    use lcl_trees::generators;

    #[test]
    fn pi_1_is_solved_by_parity() {
        let problem = pi_k::pi_k(1);
        let tree = generators::balanced(2, 8);
        let outcome = solve_pi_k(&problem, 1, &tree);
        outcome.labeling.verify(&tree, &problem).unwrap();
    }

    #[test]
    fn pi_2_on_balanced_and_random_trees() {
        let problem = pi_k::pi_k(2);
        for tree in [
            generators::balanced(2, 9),
            generators::random_full(2, 2001, 3),
            generators::random_skewed(2, 1501, 0.8, 4),
        ] {
            let outcome = solve_pi_k(&problem, 2, &tree);
            outcome.labeling.verify(&tree, &problem).unwrap();
        }
    }

    #[test]
    fn pi_3_on_random_trees() {
        let problem = pi_k::pi_k(3);
        for seed in 0..3 {
            let tree = generators::random_full(2, 3001, seed);
            let outcome = solve_pi_k(&problem, 3, &tree);
            outcome.labeling.verify(&tree, &problem).unwrap();
        }
    }

    #[test]
    fn measured_rounds_scale_sublinearly() {
        let problem = pi_k::pi_k(2);
        let small = generators::balanced(2, 8); // 511 nodes
        let large = generators::balanced(2, 14); // 32767 nodes
        let r_small = solve_pi_k(&problem, 2, &small).rounds.total();
        let r_large = solve_pi_k(&problem, 2, &large).rounds.total();
        // 64× more nodes: an O(√n) algorithm grows by ≈ 8×, far below 64×.
        assert!(r_large < 16 * r_small, "small {r_small}, large {r_large}");
    }

    fn poly_certificate_for(problem: &LclProblem) -> lcl_core::PolyCertificate {
        lcl_core::find_poly_certificate(problem).expect("polynomial-region problem")
    }

    #[test]
    fn generalized_solver_handles_pi_k_via_its_certificate() {
        for k in 1..=3 {
            let problem = pi_k::pi_k(k);
            let cert = poly_certificate_for(&problem);
            assert_eq!(cert.exponent(), k);
            for tree in [
                generators::balanced(2, 8),
                generators::random_full(2, 2001, k as u64),
                generators::hairy_path(2, 300),
            ] {
                let outcome = solve_poly(&problem, &cert, &tree).unwrap();
                outcome
                    .labeling
                    .verify(&tree, &problem)
                    .unwrap_or_else(|e| panic!("Π_{k}: {e}"));
                assert_eq!(outcome.algorithm, POLY_ALGORITHM);
            }
        }
    }

    #[test]
    fn generalized_solver_handles_two_coloring_and_paths() {
        // Exponent 1 (Θ(n)): the whole tree is the core, completed downward.
        let problem = coloring::two_coloring_binary();
        let cert = poly_certificate_for(&problem);
        assert_eq!(cert.exponent(), 1);
        let tree = generators::random_full(2, 801, 3);
        let outcome = solve_poly(&problem, &cert, &tree).unwrap();
        outcome.labeling.verify(&tree, &problem).unwrap();

        // δ = 1: 2-coloring of directed paths.
        let path_problem: LclProblem = "1:2\n2:1\n".parse().unwrap();
        let cert = poly_certificate_for(&path_problem);
        let tree = generators::path(257);
        let outcome = solve_poly(&path_problem, &cert, &tree).unwrap();
        outcome.labeling.verify(&tree, &path_problem).unwrap();
    }

    #[test]
    fn generalized_solver_rounds_scale_sublinearly() {
        let problem = pi_k::pi_k(2);
        let cert = poly_certificate_for(&problem);
        let small = generators::balanced(2, 8); // 511 nodes
        let large = generators::balanced(2, 14); // 32767 nodes
        let r_small = solve_poly(&problem, &cert, &small).unwrap().rounds.total();
        let r_large = solve_poly(&problem, &cert, &large).unwrap().rounds.total();
        // 64× more nodes: an O(√n) algorithm grows by ≈ 8×, far below 64×.
        assert!(r_large < 16 * r_small, "small {r_small}, large {r_large}");
    }

    #[test]
    fn generalized_partition_respects_the_chain_threshold() {
        let problem = pi_k::pi_k(2);
        let cert = poly_certificate_for(&problem);
        let tree = generators::hairy_path(2, 400);
        let partition = poly_partition(&tree, &cert);
        for (i, runs) in partition.runs_by_iteration.iter().enumerate() {
            let min_run = cert.levels[i].chain_threshold.max(1);
            for run in runs {
                assert!(run.len() >= min_run, "run shorter than the threshold");
                for w in run.windows(2) {
                    assert_eq!(tree.parent(w[1]), Some(w[0]), "runs must be vertical");
                }
            }
        }
        // Every rake piece fits the subtree-size threshold.
        let mut rake_sizes = vec![0usize; tree.len()];
        for v in tree.post_order() {
            if let PolyPart::Rake(i) = partition.part[v.index()] {
                rake_sizes[v.index()] += 1;
                if let Some(p) = tree.parent(v) {
                    if partition.part[p.index()] == PolyPart::Rake(i) {
                        let s = rake_sizes[v.index()];
                        rake_sizes[p.index()] += s;
                    }
                }
            }
        }
        assert!(rake_sizes.iter().all(|&s| s <= partition.threshold));
    }

    #[test]
    fn depth_parity_solves_two_coloring() {
        let problem = coloring::two_coloring_binary();
        let tree = generators::random_full(2, 801, 7);
        let outcome = solve_by_depth_parity(&problem, &tree);
        outcome.labeling.verify(&tree, &problem).unwrap();
        assert_eq!(outcome.rounds.total(), tree.height() + 1);
    }
}
