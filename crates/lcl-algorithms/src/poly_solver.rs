//! The polynomial region (Section 8): the O(n^{1/k}) CONGEST algorithm for Π_k
//! (Lemma 8.1) and the Θ(n) depth-parity baseline for 2-coloring.

use lcl_core::{Labeling, LclProblem};
use lcl_trees::{NodeId, RootedTree};

use crate::solve::{RoundReport, SolverOutcome};

/// The partition computed by the algorithm of Lemma 8.1:
/// `V = B₁ ∪ X₁ ∪ B₂ ∪ X₂ ∪ … ∪ X_{k−1} ∪ B_k`.
#[derive(Debug, Clone)]
pub struct PiKPartition {
    /// For every node, the part it belongs to: `Part::B(i)` or `Part::X(i)`
    /// (1-based `i`).
    pub part: Vec<Part>,
    /// The measured per-iteration exploration depths (the O(n^{1/k}) terms whose sum
    /// is the algorithm's round complexity).
    pub iteration_depths: Vec<usize>,
}

/// Membership in the Lemma 8.1 partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Part {
    /// `B_i`: components that are properly 2-coloured with `{a_i, b_i}`.
    B(usize),
    /// `X_i`: separator nodes labeled `x_i`.
    X(usize),
}

/// Computes the partition of Lemma 8.1 for the given `k` and threshold
/// `t = n^{1/k}`: iteration `i` keeps the nodes whose remaining subtree has more
/// than `t` nodes, puts small-subtree nodes into `B_i`, and into `X_i` the large
/// nodes that have a small (or already removed) child.
pub fn pi_k_partition(tree: &RootedTree, k: usize) -> PiKPartition {
    assert!(k >= 1);
    let n = tree.len();
    let threshold = (n as f64).powf(1.0 / k as f64).ceil() as usize;
    let mut part: Vec<Option<Part>> = vec![None; n];
    let mut iteration_depths = Vec::new();
    let subtree_heights = tree.subtree_heights();
    let post_order = tree.post_order();

    // One membership bitvec, one frontier, and one size array, allocated once
    // and reused across the k iterations: the frontier is compacted in place
    // (ascending id order is preserved) instead of being rebuilt from a fresh
    // O(n) scan, and only frontier entries of `size` are ever reset.
    let mut in_u = vec![true; n];
    let mut frontier: Vec<NodeId> = tree.nodes().collect();
    let mut size = vec![0usize; n];

    for i in 1..=k {
        if frontier.is_empty() {
            break;
        }
        // N_v: subtree sizes within the forest induced by U_i, accumulated
        // upwards (children precede parents in post-order).
        for &v in &frontier {
            size[v.index()] = 1;
        }
        for &v in post_order.iter().filter(|v| in_u[v.index()]) {
            if let Some(p) = tree.parent(v) {
                if in_u[p.index()] {
                    size[p.index()] += size[v.index()];
                }
            }
        }
        // The number of levels a node explores to decide whether N_v exceeds the
        // threshold — the measured O(n^{1/k}) quantity of this iteration.
        iteration_depths.push(
            threshold.min(
                frontier
                    .iter()
                    .map(|v| subtree_heights[v.index()] + 1)
                    .max()
                    .unwrap_or(0),
            ),
        );

        if i == k {
            for &v in &frontier {
                part[v.index()] = Some(Part::B(i));
            }
            break;
        }
        // B_i: small subtrees.
        for &v in &frontier {
            if size[v.index()] <= threshold {
                part[v.index()] = Some(Part::B(i));
            }
        }
        // X_i: large nodes with a small child, or with a child already removed in
        // an earlier iteration (the paper's "exactly one child in T_i" condition
        // for binary trees, stated degree-independently here).
        for &v in &frontier {
            if size[v.index()] <= threshold {
                continue;
            }
            let has_small_child = tree
                .children(v)
                .iter()
                .any(|c| in_u[c.index()] && size[c.index()] <= threshold);
            let has_earlier_child = tree.children(v).iter().any(|c| !in_u[c.index()]);
            if has_small_child || has_earlier_child {
                part[v.index()] = Some(Part::X(i));
            }
        }
        // Compact the frontier to U_{i+1}.
        for &v in &frontier {
            in_u[v.index()] = part[v.index()].is_none();
        }
        frontier.retain(|&v| in_u[v.index()]);
    }

    // Any node still unassigned (possible only when the loop exits early) joins B_k.
    let part = part.into_iter().map(|p| p.unwrap_or(Part::B(k))).collect();
    PiKPartition {
        part,
        iteration_depths,
    }
}

/// Solves Π_k (the problem built by `lcl_problems::pi_k::pi_k(k)`) on `tree` using
/// the partition algorithm of Lemma 8.1: nodes in `X_i` output `x_i`, and every
/// connected component of `B_i` is properly 2-coloured with `{a_i, b_i}` by the
/// parity of its depth within the component.
pub fn solve_pi_k(problem: &LclProblem, k: usize, tree: &RootedTree) -> SolverOutcome {
    let partition = pi_k_partition(tree, k);
    let (x_labels, ab_labels) = pi_k_part_labels(problem, k);
    let mut labeling = Labeling::for_tree(tree);
    // Depth of each node within its B_i component (0 at component roots).
    let mut comp_depth = vec![0usize; tree.len()];
    for v in tree.bfs_order() {
        let my_part = partition.part[v.index()];
        if let Some(p) = tree.parent(v) {
            if partition.part[p.index()] == my_part {
                comp_depth[v.index()] = comp_depth[p.index()] + 1;
            }
        }
        match my_part {
            Part::X(i) => labeling.set(v, x_labels[i - 1]),
            Part::B(i) => {
                let (a, b) = ab_labels[i - 1];
                let even = comp_depth[v.index()].is_multiple_of(2);
                labeling.set(v, if even { a } else { b });
            }
        }
    }
    let mut rounds = RoundReport::new();
    for (i, depth) in partition.iteration_depths.iter().enumerate() {
        rounds.measured(
            format!("iteration {} subtree-size exploration", i + 1),
            *depth,
        );
    }
    rounds.charged("component 2-colouring (within-component depth)", {
        // Components have at most n^{1/k} nodes, hence at most that depth.
        (tree.len() as f64).powf(1.0 / k as f64).ceil() as usize
    });
    SolverOutcome {
        labeling,
        rounds,
        algorithm: "Π_k partition (Lemma 8.1)",
    }
}

/// Resolves the Π_k part labels once per solve: `x_1 … x_{k−1}` (separators
/// exist only below level k) and `(a_i, b_i)` for `i = 1 … k` — so the
/// per-node labeling loop never formats a label name.
///
/// # Panics
///
/// Panics if `problem` is missing one of the Π_k labels.
pub(crate) fn pi_k_part_labels(
    problem: &LclProblem,
    k: usize,
) -> (
    Vec<lcl_core::Label>,
    Vec<(lcl_core::Label, lcl_core::Label)>,
) {
    let label = |name: &str| {
        problem
            .label_by_name(name)
            .unwrap_or_else(|| panic!("Π_k problem is missing label {name}"))
    };
    let x_labels = (1..k).map(|i| label(&format!("x{i}"))).collect();
    let ab_labels = (1..=k)
        .map(|i| (label(&format!("a{i}")), label(&format!("b{i}"))))
        .collect();
    (x_labels, ab_labels)
}

/// The Θ(n)-round baseline for the global 2-coloring problem (2): every node learns
/// its depth (a full top-down sweep) and outputs the colour of its depth parity.
pub fn solve_by_depth_parity(problem: &LclProblem, tree: &RootedTree) -> SolverOutcome {
    let one = problem
        .label_by_name("1")
        .expect("2-coloring problem uses labels 1 and 2");
    let two = problem.label_by_name("2").expect("label 2");
    let depths = tree.depths();
    let mut labeling = Labeling::for_tree(tree);
    for v in tree.nodes() {
        labeling.set(
            v,
            if depths[v.index()].is_multiple_of(2) {
                one
            } else {
                two
            },
        );
    }
    let mut rounds = RoundReport::new();
    rounds.measured("top-down depth propagation", tree.height() + 1);
    SolverOutcome {
        labeling,
        rounds,
        algorithm: "depth parity (Θ(n) baseline)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problems::{coloring, pi_k};
    use lcl_trees::generators;

    #[test]
    fn pi_1_is_solved_by_parity() {
        let problem = pi_k::pi_k(1);
        let tree = generators::balanced(2, 8);
        let outcome = solve_pi_k(&problem, 1, &tree);
        outcome.labeling.verify(&tree, &problem).unwrap();
    }

    #[test]
    fn pi_2_on_balanced_and_random_trees() {
        let problem = pi_k::pi_k(2);
        for tree in [
            generators::balanced(2, 9),
            generators::random_full(2, 2001, 3),
            generators::random_skewed(2, 1501, 0.8, 4),
        ] {
            let outcome = solve_pi_k(&problem, 2, &tree);
            outcome.labeling.verify(&tree, &problem).unwrap();
        }
    }

    #[test]
    fn pi_3_on_random_trees() {
        let problem = pi_k::pi_k(3);
        for seed in 0..3 {
            let tree = generators::random_full(2, 3001, seed);
            let outcome = solve_pi_k(&problem, 3, &tree);
            outcome.labeling.verify(&tree, &problem).unwrap();
        }
    }

    #[test]
    fn measured_rounds_scale_sublinearly() {
        let problem = pi_k::pi_k(2);
        let small = generators::balanced(2, 8); // 511 nodes
        let large = generators::balanced(2, 14); // 32767 nodes
        let r_small = solve_pi_k(&problem, 2, &small).rounds.total();
        let r_large = solve_pi_k(&problem, 2, &large).rounds.total();
        // 64× more nodes: an O(√n) algorithm grows by ≈ 8×, far below 64×.
        assert!(r_large < 16 * r_small, "small {r_small}, large {r_large}");
    }

    #[test]
    fn depth_parity_solves_two_coloring() {
        let problem = coloring::two_coloring_binary();
        let tree = generators::random_full(2, 801, 7);
        let outcome = solve_by_depth_parity(&problem, &tree);
        outcome.labeling.verify(&tree, &problem).unwrap();
        assert_eq!(outcome.rounds.total(), tree.height() + 1);
    }
}
